"""Benchmark: the paper's Figures 2-5 as timed end-to-end scenarios.

Each benchmark runs the corresponding blocked-message configuration on the
real simulator and asserts the exact outcome the paper describes.
"""

from repro.analysis.deadlock import find_deadlocked
from repro.figures.scenarios import (
    build_figure2,
    build_figure3,
    build_figure4,
    build_figure5,
)
from repro.network.types import MessageStatus


def test_figure2_no_false_detection(once):
    def run():
        scenario = build_figure2("ndm", threshold=16)
        scenario.run(600)
        return scenario

    scenario = run()  # warm check outside timing for clarity
    assert scenario.detected_names() == []
    once(lambda: build_figure2("ndm", threshold=16).run(600))


def test_figure2_pdm_false_detections(once):
    def run():
        scenario = build_figure2("pdm", threshold=16)
        scenario.run(600)
        return set(scenario.detected_names())

    assert once(run) == {"C", "D"}


def test_figure3_ndm_detects_only_root_adjacent(once):
    def run():
        scenario = build_figure3("ndm", threshold=16)
        scenario.run(400)
        return scenario.detected_names()

    assert once(run) == ["B"]


def test_figure3_ground_truth(once):
    def run():
        scenario = build_figure3("none")
        scenario.run(40)
        deadlocked = find_deadlocked(scenario.sim.active_messages)
        return sorted(scenario.name_of(m.id) for m in deadlocked)

    assert once(run) == ["B", "C", "D", "E"]


def test_figure4_recovery_resolves(once):
    def run():
        scenario = build_figure4(threshold=16)
        scenario.run(1500)
        return (
            all(
                m.status is MessageStatus.DELIVERED
                for m in scenario.messages.values()
            ),
            scenario.sim.stats.recoveries,
        )

    delivered, recoveries = once(run)
    assert delivered
    assert recoveries == 1


def test_figure5_relabeled_root_detected(once):
    def run():
        scenario, _ = build_figure5("ndm", threshold=16)
        scenario.run(400)
        return scenario.detected_names()

    assert once(run) == ["B", "C"]
