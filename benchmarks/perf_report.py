"""Kernel performance harness: scan vs event across traffic regimes.

Runs a small matrix of regimes — the saturated 8x8 acceptance
configuration, a 16x16 version of it, a wedged low-VC network, a
flowing network with recovery, and a drain-dominated run — under both
engines, timing each with a discarded warm-up run followed by three
measured runs (the median is reported, which rejects one-off scheduler
or allocator hiccups; regimes whose pair ratio sits within noise of
1.0x automatically extend to five pairs, and the fastest sample rides
along so the regression check cannot fire on noise alone).  Engine work
counters are recorded alongside the
timings; they are deterministic per configuration, so a counter change
between two harness runs means the kernel's *work* changed, not just
the machine's speed.

Two artifacts are written:

* ``results/BENCH_engines.json`` (or ``<out-dir>/BENCH_engines.json``)
  — the full report for the current invocation;
* ``BENCH_kernel.json`` at the repository root — a *trajectory* file:
  each invocation appends one entry of headline numbers, so the
  committed history records how kernel performance moved over time.
  The newest committed entry doubles as the regression baseline.

Three extra datapoints ride along: the probe-phase overhead (median
plus its min..max noise band — the band's lower edge, not the median,
is what gets compared against the 5 % budget, because the median
routinely dips negative inside noise), the ``batch-campaign`` number —
the batch SoA backend (``repro.network.batch``) advancing a whole
detection-threshold ladder on one shared trajectory versus per-cell
event runs, gated at ``BATCH_TARGET_SPEEDUP`` after an in-bench
bit-identical digest check of every cell — and the
``batch-campaign-mixed`` number: the same backend folding a mixed
mechanism x threshold grid (every shareable detector family at once,
vectorized movement phase) versus per-cell event runs, gated at
``MIXED_BATCH_TARGET_SPEEDUP`` under the same digest check.

Regression check: when a baseline is available (``--baseline`` or the
newest comparable entry already in ``BENCH_kernel.json``), each
regime/engine pair more than 10 % slower than the baseline prints a
warning.  The baseline search prefers the newest entry recorded on the
*same platform and python version*; when only cross-platform entries
exist, comparisons are printed as informational notes and never gate,
even under ``--strict`` — absolute cycles/s across machines is not a
regression signal.  The exit code stays zero for same-host baseline
regressions unless ``--strict`` is given; the structural speedup
targets (event at least ``TARGET_SPEEDUP`` times scan on the saturated
regime, batch at least ``BATCH_TARGET_SPEEDUP`` times event on the
campaign grid) are always enforced.

    PYTHONPATH=src python benchmarks/perf_report.py [options] [out-dir]

Options:
    --quick         reduced cycle counts (CI-sized, minutes -> seconds)
    --baseline P    compare against trajectory file P instead of the
                    repo-root BENCH_kernel.json
    --no-append     do not append to the trajectory file
    --strict        exit non-zero on baseline regressions too
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator

#: The acceptance bar from the event-engine change: at least this factor
#: between engines on the saturated configuration.
TARGET_SPEEDUP = 1.5

#: Acceptance bar for the batch backend on the quick campaign grid:
#: one shared trajectory serving the threshold ladder must beat the
#: per-cell event runs by at least this factor.
BATCH_TARGET_SPEEDUP = 5.0

#: Aspirational full-grid target (see EXPERIMENTS.md): non-gating, a
#: shortfall prints a warning on full (non-quick) runs.
BATCH_TARGET_SPEEDUP_FULL = 10.0

#: Campaign threshold ladder for the batch benchmark (the paper's
#: threshold axis, Tables 2-7 run 2..1024).
BATCH_THRESHOLDS = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
BATCH_THRESHOLDS_QUICK = (2, 4, 8, 16, 32, 64, 128, 256)

#: Acceptance bar for the cross-detector campaign grid: one shared
#: trajectory serving a mixed mechanism x threshold grid must beat the
#: per-cell event runs by at least this factor (quick and full).
MIXED_BATCH_TARGET_SPEEDUP = 8.0

#: The mixed campaign grid: every batch-shareable mechanism family over
#: its natural slice of the threshold axis — the shape of a full
#: detector-comparison campaign (paper Tables 2-7 sweep mechanisms as
#: well as thresholds).  40 cells, one shared trajectory.
MIXED_GRID: Tuple[Tuple[str, int], ...] = tuple(
    [("ndm", t) for t in BATCH_THRESHOLDS]
    + [("pdm", t) for t in BATCH_THRESHOLDS]
    + [("timeout", t) for t in BATCH_THRESHOLDS]
    + [("source-age", t) for t in (256, 512, 1024, 2048)]
    + [("injection-stall", t) for t in (128, 256, 512, 1024)]
    + [("probe", t) for t in (32, 128)]
)

#: Baseline-comparison tolerance: warn when a regime/engine pair runs
#: more than this much slower than the recorded baseline.
REGRESSION_TOLERANCE = 0.10

#: Timed runs per configuration (after one discarded warm-up run).
TIMED_RUNS = 3

#: Regimes whose median pair ratio lands under this are inside noise of
#: 1.0x (flowing traffic: parking wins almost nothing by design); they
#: get extra timed pairs so the median has noise to reject.
NEAR_UNITY_RATIO = 1.1

#: Total pairs for near-unity regimes (median of 5 instead of 3).
NEAR_UNITY_PAIRS = 5

REPO_ROOT = Path(__file__).resolve().parent.parent

CONFIGS: Dict[str, Dict[str, Any]] = {
    # The event engine's reason to exist: an 8x8 torus wedged well past
    # saturation, detection running, nothing recovered.
    "saturated-ndm-8x8": dict(
        radix=8,
        dimensions=2,
        vcs_per_channel=2,
        warmup_cycles=0,
        measure_cycles=4000,
        seed=11,
        recovery="none",
        mechanism="ndm",
        threshold=32,
        injection_rate=0.8,
    ),
    # Same regime at 4x the node count: catches costs that scale with
    # network size rather than with the active-message population.
    "saturated-ndm-16x16": dict(
        radix=16,
        dimensions=2,
        vcs_per_channel=2,
        warmup_cycles=0,
        measure_cycles=1500,
        seed=11,
        recovery="none",
        mechanism="ndm",
        threshold=32,
        injection_rate=0.8,
    ),
    # One lane per physical channel wedges almost immediately: the
    # worst case for per-blocked-message bookkeeping.
    "wedged-lowvc-8x8": dict(
        radix=8,
        dimensions=2,
        vcs_per_channel=1,
        warmup_cycles=0,
        measure_cycles=3000,
        seed=7,
        recovery="none",
        mechanism="ndm",
        threshold=32,
        injection_rate=0.6,
    ),
    # Healthy traffic with progressive recovery: most movement visits
    # are genuine flit work, so the engine speedup is structurally
    # smaller — this is the regime that keeps parking overhead honest.
    "flowing-ndm-8x8": dict(
        radix=8,
        dimensions=2,
        vcs_per_channel=3,
        warmup_cycles=0,
        measure_cycles=3000,
        seed=11,
        recovery="progressive",
        mechanism="ndm",
        threshold=32,
        injection_rate=0.5,
    ),
    # Short injection window followed by a long drain: exercises the
    # shrinking-population path (lists emptying, event heap draining).
    "drain-ndm-8x8": dict(
        radix=8,
        dimensions=2,
        vcs_per_channel=3,
        warmup_cycles=0,
        measure_cycles=1000,
        drain_cycles=3000,
        seed=11,
        recovery="progressive",
        mechanism="ndm",
        threshold=32,
        injection_rate=0.5,
    ),
}

#: measure/drain cycle scale-down for ``--quick`` (CI-sized).
QUICK_FACTOR = 4

#: Non-gating ceiling for the probe-phase overhead datapoint: the extra
#: per-cycle cost of running the probe detector with no probes in
#: flight, relative to a detector with no probe phase at all.
PROBE_OVERHEAD_TOLERANCE = 0.05


def build_config(spec: Dict[str, Any], engine: str, quick: bool) -> SimulationConfig:
    spec = dict(spec)
    mechanism = spec.pop("mechanism")
    threshold = spec.pop("threshold")
    injection_rate = spec.pop("injection_rate")
    if quick:
        spec["measure_cycles"] = max(200, spec["measure_cycles"] // QUICK_FACTOR)
        if spec.get("drain_cycles"):
            spec["drain_cycles"] = max(200, spec["drain_cycles"] // QUICK_FACTOR)
    config = SimulationConfig(engine=engine, ground_truth_interval=0, **spec)
    config.detector.mechanism = mechanism
    config.detector.threshold = threshold
    config.traffic.injection_rate = injection_rate
    return config


def _timed_run(config: SimulationConfig) -> Dict[str, Any]:
    sim = Simulator(config)
    start = time.perf_counter()
    stats = sim.run()
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "cycles": stats.cycles_run,
        "delivered": stats.delivered,
        "detections": stats.detections,
        "engine_counters": dict(stats.engine_counters),
    }


def _summarize(engine: str, samples: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Median-of-N summary of one engine's timed samples.

    Simulation results and engine counters are asserted identical across
    the samples (same config, same seed: anything else is a determinism
    bug worth crashing on), so only the wall time varies.
    """
    first = samples[0]
    for other in samples[1:]:
        for key in ("cycles", "delivered", "detections", "engine_counters"):
            if other[key] != first[key]:
                raise AssertionError(
                    f"non-deterministic repeat run: {key} {other[key]!r} "
                    f"!= {first[key]!r}"
                )
    ordered = sorted(samples, key=lambda s: s["seconds"])
    median = ordered[len(ordered) // 2]
    return {
        "engine": engine,
        "cycles": median["cycles"],
        "seconds": round(median["seconds"], 4),
        "seconds_all": [round(s["seconds"], 4) for s in samples],
        "cycles_per_second": round(median["cycles"] / median["seconds"], 1),
        # The fastest sample: the least-interfered-with measurement.  A
        # real regression slows every sample; noise only slows some, so
        # the baseline check demands both median *and* best be below
        # the band before it calls a regression.
        "cycles_per_second_best": round(
            median["cycles"] / ordered[0]["seconds"], 1
        ),
        "engine_counters": median["engine_counters"],
        "delivered": median["delivered"],
        "detections": median["detections"],
    }


def benchmark_config(spec: Dict[str, Any], quick: bool) -> Dict[str, Any]:
    """Benchmark both engines on one regime, interleaved.

    One discarded warm-up run per engine, then ``TIMED_RUNS``
    scan/event *pairs*: alternating the engines puts slow machine drift
    (thermal throttling, background load) into both timing streams
    equally, so the reported speedup ratio is far more stable than two
    back-to-back blocks would give.
    """
    configs = {
        engine: build_config(spec, engine, quick)
        for engine in ("scan", "event")
    }
    for config in configs.values():
        Simulator(config).run()  # warm-up: caches, allocator; discarded
    samples: Dict[str, List[Dict[str, Any]]] = {"scan": [], "event": []}
    for _ in range(TIMED_RUNS):
        for engine in ("scan", "event"):
            samples[engine].append(_timed_run(configs[engine]))

    def pair_ratios() -> List[float]:
        return sorted(
            s["seconds"] / e["seconds"]
            for s, e in zip(samples["scan"], samples["event"])
        )

    # Speedup from per-pair ratios, not from the two medians: each
    # scan/event pair ran back to back under (nearly) the same machine
    # conditions, so the ratio within a pair is drift-free, and the
    # median across pairs rejects a pair hit by a one-off stall.
    ratios = pair_ratios()
    if ratios[len(ratios) // 2] < NEAR_UNITY_RATIO:
        # Near 1.0x the signal *is* the noise floor (the flowing regime
        # structurally parks almost nothing): take extra pairs so a
        # single scheduler hiccup cannot drag the median under 1.0 and
        # trip the baseline check.
        for _ in range(NEAR_UNITY_PAIRS - TIMED_RUNS):
            for engine in ("scan", "event"):
                samples[engine].append(_timed_run(configs[engine]))
        ratios = pair_ratios()
    runs = {
        engine: _summarize(engine, samples[engine])
        for engine in ("scan", "event")
    }
    speedup = ratios[len(ratios) // 2]
    return {
        "config": spec,
        "runs": runs,
        "speedup": round(speedup, 3),
        "pair_ratios": [round(r, 3) for r in ratios],
    }


def benchmark_probe_overhead(quick: bool) -> Dict[str, Any]:
    """Cost of the probe cycle phase with no probes in flight.

    Two event-engine runs of the flowing 8x8 regime, identical except
    for the detector: ``timeout`` (no probe phase at all) versus
    ``probe`` at an astronomically high threshold (no launch deadline
    ever fires, so the phase runs empty every cycle).  Both detectors
    fire zero detections at these thresholds, so the runs do the same
    flit work and the timing ratio isolates the phase dispatch cost.
    Interleaved pairs and a median-of-pairs ratio, same as
    :func:`benchmark_config`.  The datapoint is recorded under its own
    trajectory key — it is *not* a headline regime, and the baseline
    comparison must not iterate it.
    """
    spec = dict(CONFIGS["flowing-ndm-8x8"])
    configs = {}
    for mechanism in ("timeout", "probe"):
        config = build_config(spec, "event", quick)
        config.detector.mechanism = mechanism
        config.detector.threshold = 1 << 20
        configs[mechanism] = config
    for config in configs.values():
        Simulator(config).run()  # warm-up, discarded
    samples: Dict[str, List[Dict[str, Any]]] = {"timeout": [], "probe": []}
    for _ in range(TIMED_RUNS):
        for mechanism in ("timeout", "probe"):
            samples[mechanism].append(_timed_run(configs[mechanism]))
    for sample_list in samples.values():
        for sample in sample_list:
            if sample["detections"] != 0:
                raise AssertionError(
                    "probe-overhead runs must be detection-free; got "
                    f"{sample['detections']} detections"
                )
    runs = {
        mechanism: _summarize(mechanism, samples[mechanism])
        for mechanism in ("timeout", "probe")
    }
    ratios = sorted(
        p["seconds"] / t["seconds"]
        for t, p in zip(samples["timeout"], samples["probe"])
    )
    slowdown = ratios[len(ratios) // 2]
    # The datapoint sits inside measurement noise (committed entries have
    # gone as low as -2.3%), so a single median would over-claim either
    # way.  Report the median with the min..max pair-ratio band; only the
    # band's *lower* edge exceeding the budget is a real overhead signal.
    return {
        "baseline_mechanism": "timeout",
        "runs": runs,
        "overhead": round(slowdown - 1.0, 4),
        "overhead_low": round(ratios[0] - 1.0, 4),
        "overhead_high": round(ratios[-1] - 1.0, 4),
        "pair_ratios": [round(r, 3) for r in ratios],
        "tolerance": PROBE_OVERHEAD_TOLERANCE,
    }


def benchmark_batch_campaign(quick: bool) -> Optional[Dict[str, Any]]:
    """Batch backend vs per-cell event runs on a campaign threshold grid.

    The grid is the saturated 8x8 regime swept over the paper's
    threshold axis — the shape of every table campaign.  The event
    baseline runs one simulation per cell; the batch backend folds the
    whole ladder onto one shared trajectory
    (:class:`repro.network.batch.BatchSimulator`).  Before any number is
    reported, every batch cell's behavioural stats are asserted
    bit-identical to its event run — the digest gate that lets the
    backend exist — so a reported speedup is by construction a speedup
    on *equal* results.  Returns ``None`` when numpy is unavailable.
    """
    from repro.network.batch import HAVE_NUMPY, run_batch

    if not HAVE_NUMPY:
        return None
    spec = dict(CONFIGS["saturated-ndm-8x8"])
    thresholds = BATCH_THRESHOLDS_QUICK if quick else BATCH_THRESHOLDS
    cell_configs = []
    for threshold in thresholds:
        config = build_config(spec, "event", quick)
        config.detector.threshold = threshold
        cell_configs.append(config)
    # Warm-up (caches, allocator), discarded.
    Simulator(cell_configs[len(cell_configs) // 2]).run()

    start = time.perf_counter()
    event_stats = [Simulator(config).run() for config in cell_configs]
    event_seconds = time.perf_counter() - start

    batch_config = build_config(spec, "batch", quick)
    start = time.perf_counter()
    batch_stats = run_batch(batch_config, list(thresholds))
    batch_seconds = time.perf_counter() - start

    for threshold, event_run, batch_run in zip(
        thresholds, event_stats, batch_stats
    ):
        if event_run.to_dict(include_perf=False) != batch_run.to_dict(
            include_perf=False
        ):
            raise AssertionError(
                f"batch cell th={threshold} diverged from its event run; "
                "the batch backend must be bit-identical (digest gate)"
            )
    return {
        "config": spec,
        "thresholds": list(thresholds),
        "cells": len(thresholds),
        "event_seconds": round(event_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "speedup": round(event_seconds / batch_seconds, 3),
        "digest_match": True,
        "target": BATCH_TARGET_SPEEDUP,
        "target_full_grid": BATCH_TARGET_SPEEDUP_FULL,
    }


def benchmark_mixed_campaign(quick: bool) -> Optional[Dict[str, Any]]:
    """Cross-detector trajectory sharing on the mixed campaign grid.

    The same saturated regime, swept over :data:`MIXED_GRID` — every
    batch-shareable mechanism family times its threshold slice.  The
    event baseline runs one simulation per cell; the batch backend
    folds all 40 cells onto *one* shared trajectory (with the
    vectorized movement phase when numpy is present, which it is here).
    As with the threshold-only benchmark, every folded cell is asserted
    bit-identical to its event run before the ratio is reported.
    Returns ``None`` when numpy is unavailable.
    """
    import dataclasses

    from repro.network.batch import HAVE_NUMPY, run_batch_cells
    from repro.network.config import DetectorConfig

    if not HAVE_NUMPY:
        return None
    spec = dict(CONFIGS["saturated-ndm-8x8"])
    cells = [
        DetectorConfig(mechanism=mechanism, threshold=threshold)
        for mechanism, threshold in MIXED_GRID
    ]
    cell_configs = []
    for cell in cells:
        config = build_config(spec, "event", quick)
        config.detector = dataclasses.replace(cell)
        cell_configs.append(config)
    # Warm-up (caches, allocator), discarded.
    Simulator(cell_configs[len(cell_configs) // 2]).run()

    start = time.perf_counter()
    event_stats = [Simulator(config).run() for config in cell_configs]
    event_seconds = time.perf_counter() - start

    batch_config = build_config(spec, "batch", quick)
    start = time.perf_counter()
    batch_stats = run_batch_cells(batch_config, cells)
    batch_seconds = time.perf_counter() - start

    for cell, event_run, batch_run in zip(cells, event_stats, batch_stats):
        if event_run.to_dict(include_perf=False) != batch_run.to_dict(
            include_perf=False
        ):
            raise AssertionError(
                f"mixed batch cell {cell.mechanism}:{cell.threshold} "
                "diverged from its event run; the batch backend must be "
                "bit-identical (digest gate)"
            )
    return {
        "config": spec,
        "grid": [list(entry) for entry in MIXED_GRID],
        "cells": len(cells),
        "mechanisms": sorted({mechanism for mechanism, _ in MIXED_GRID}),
        "event_seconds": round(event_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "speedup": round(event_seconds / batch_seconds, 3),
        "digest_match": True,
        "target": MIXED_BATCH_TARGET_SPEEDUP,
    }


def headline_numbers(report: Dict[str, Any]) -> Dict[str, Any]:
    """The per-regime numbers recorded in the trajectory file."""
    out: Dict[str, Any] = {}
    for name, result in report["benchmarks"].items():
        out[name] = {
            "scan": result["runs"]["scan"]["cycles_per_second"],
            "event": result["runs"]["event"]["cycles_per_second"],
            "scan_best": result["runs"]["scan"]["cycles_per_second_best"],
            "event_best": result["runs"]["event"]["cycles_per_second_best"],
            "speedup": result["speedup"],
        }
    return out


def load_baseline(path: Path, quick: bool) -> Optional[Dict[str, Any]]:
    """Newest comparable trajectory entry, preferring the same host.

    Only entries measured at the same ``quick`` setting are comparable
    at all (cycles/s depends on run length through population
    dynamics).  Among those, the newest entry whose recorded platform
    string and python version match this host wins — the committed
    trajectory mixes machines, and absolute cycles/s across different
    kernels or CPUs is not a regression signal.  When no same-host
    entry exists, the newest cross-platform one is returned with
    ``same_host=False`` so the caller demotes its comparisons to
    informational (never ``--strict``-gating).
    """
    if not path.exists():
        return None
    payload = json.loads(path.read_text())
    entries = payload.get("entries", [])
    fallback: Optional[Dict[str, Any]] = None
    for entry in reversed(entries):
        if entry.get("quick") != quick:
            continue
        if (
            entry.get("platform") == platform.platform()
            and entry.get("python") == platform.python_version()
        ):
            return {"entry": entry, "same_host": True}
        if fallback is None:
            fallback = entry
    if fallback is not None:
        return {"entry": fallback, "same_host": False}
    return None


def compare_to_baseline(
    headline: Dict[str, Any], baseline: Dict[str, Any]
) -> List[str]:
    """Human-readable warnings for >tolerance slowdowns vs the baseline.

    Only regimes present in both (and measured at the same ``quick``
    setting) are compared — cycles/s depends on run length through
    population dynamics, so cross-mode ratios would be meaningless.
    """
    warnings: List[str] = []
    base_numbers = baseline.get("headline", {})
    for name, numbers in headline.items():
        base = base_numbers.get(name)
        if not base:
            continue
        for engine in ("scan", "event"):
            # .get on both sides: the batch-campaign entries have
            # neither key, and hand-edited trajectory files may drop one.
            now = numbers.get(engine)
            then = base.get(engine)
            if not now or not then:
                continue
            # A real regression slows every sample; noise only slows
            # some.  Demand the *best* sample also miss the band before
            # warning (falls back to the median for pre-best baselines
            # and hand-edited entries).
            best = numbers.get(f"{engine}_best") or now
            if now < then * (1.0 - REGRESSION_TOLERANCE) and best < then * (
                1.0 - REGRESSION_TOLERANCE
            ):
                warnings.append(
                    f"{name}/{engine}: {now:.1f} cycles/s (best "
                    f"{best:.1f}) is {(1 - now / then) * 100:.1f}% below "
                    f"baseline {then:.1f}"
                )
    for key in ("batch-campaign", "batch-campaign-mixed"):
        now_speedup = headline.get(key, {}).get("speedup")
        then_speedup = base_numbers.get(key, {}).get("speedup")
        if now_speedup and then_speedup:
            if now_speedup < then_speedup * (1.0 - REGRESSION_TOLERANCE):
                warnings.append(
                    f"{key}: {now_speedup}x speedup is "
                    f"{(1 - now_speedup / then_speedup) * 100:.1f}% below "
                    f"baseline {then_speedup}x"
                )
    return warnings


def append_trajectory(path: Path, entry: Dict[str, Any]) -> None:
    if path.exists():
        payload = json.loads(path.read_text())
    else:
        payload = {
            "description": (
                "Kernel performance trajectory: one entry appended per "
                "benchmarks/perf_report.py invocation (see "
                "docs/performance.md)."
            ),
            "entries": [],
        }
    payload["entries"].append(entry)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("out_dir", nargs="?", default="results")
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--baseline", type=Path, default=None)
    parser.add_argument("--no-append", action="store_true")
    parser.add_argument("--strict", action="store_true")
    args = parser.parse_args(argv[1:])

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    report: Dict[str, Any] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": args.quick,
        "timed_runs": TIMED_RUNS,
        "target_speedup": TARGET_SPEEDUP,
        "benchmarks": {},
    }
    for name, spec in CONFIGS.items():
        print(f"benchmarking {name} ...", flush=True)
        result = benchmark_config(spec, args.quick)
        report["benchmarks"][name] = result
        for engine in ("scan", "event"):
            run = result["runs"][engine]
            print(
                f"  {engine:>5}: {run['cycles_per_second']:>10.1f} cycles/s "
                f"(median of {run['seconds_all']}s for {run['cycles']} cycles)"
            )
        print(f"  speedup: {result['speedup']}x")

    print("benchmarking probe-phase overhead (no probes in flight) ...")
    probe_overhead = benchmark_probe_overhead(args.quick)
    report["probe_overhead"] = probe_overhead
    print(
        f"  probe phase overhead: {probe_overhead['overhead'] * 100:+.1f}% "
        f"(noise band {probe_overhead['overhead_low'] * 100:+.1f}% .. "
        f"{probe_overhead['overhead_high'] * 100:+.1f}%) "
        f"cycles/s vs timeout detector "
        f"(tolerance {PROBE_OVERHEAD_TOLERANCE * 100:.0f}%, non-gating)"
    )
    # The median alone can swing negative on a quiet machine and above
    # budget on a loaded one; only warn when even the band's *lower*
    # edge exceeds the budget — that cannot be explained by noise.
    if probe_overhead["overhead_low"] > PROBE_OVERHEAD_TOLERANCE:
        print(
            f"WARNING: probe phase overhead is at least "
            f"{probe_overhead['overhead_low'] * 100:.1f}% even at the "
            f"noise band's lower edge, exceeding the "
            f"{PROBE_OVERHEAD_TOLERANCE * 100:.0f}% budget (non-gating)",
            file=sys.stderr,
        )

    print("benchmarking batch campaign backend (threshold grid) ...")
    batch_campaign = benchmark_batch_campaign(args.quick)
    report["batch_campaign"] = batch_campaign
    if batch_campaign is None:
        print("  numpy unavailable; batch campaign benchmark skipped")
    else:
        print(
            f"  {batch_campaign['cells']} cells: event "
            f"{batch_campaign['event_seconds']}s vs batch "
            f"{batch_campaign['batch_seconds']}s -> "
            f"{batch_campaign['speedup']}x (cell digests identical)"
        )

    print("benchmarking mixed campaign grid (cross-detector sharing) ...")
    mixed_campaign = benchmark_mixed_campaign(args.quick)
    report["mixed_campaign"] = mixed_campaign
    if mixed_campaign is None:
        print("  numpy unavailable; mixed campaign benchmark skipped")
    else:
        print(
            f"  {mixed_campaign['cells']} cells over "
            f"{len(mixed_campaign['mechanisms'])} mechanisms: event "
            f"{mixed_campaign['event_seconds']}s vs batch "
            f"{mixed_campaign['batch_seconds']}s -> "
            f"{mixed_campaign['speedup']}x (cell digests identical)"
        )

    path = out_dir / "BENCH_engines.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {path}")

    headline = headline_numbers(report)
    if batch_campaign is not None:
        # Own shape on purpose: no "scan"/"event" keys, so the
        # per-engine baseline loop skips it.
        headline["batch-campaign"] = {
            "cells": batch_campaign["cells"],
            "event_seconds": batch_campaign["event_seconds"],
            "batch_seconds": batch_campaign["batch_seconds"],
            "speedup": batch_campaign["speedup"],
        }
    if mixed_campaign is not None:
        headline["batch-campaign-mixed"] = {
            "cells": mixed_campaign["cells"],
            "mechanisms": len(mixed_campaign["mechanisms"]),
            "event_seconds": mixed_campaign["event_seconds"],
            "batch_seconds": mixed_campaign["batch_seconds"],
            "speedup": mixed_campaign["speedup"],
        }
    trajectory_path = REPO_ROOT / "BENCH_kernel.json"
    baseline_path = args.baseline or trajectory_path
    baseline = load_baseline(baseline_path, args.quick)
    warnings: List[str] = []
    if baseline is not None:
        notes = compare_to_baseline(headline, baseline["entry"])
        if baseline["same_host"]:
            warnings = notes
            for line in warnings:
                print(f"WARNING: {line}", file=sys.stderr)
            if not warnings:
                print(f"no >10% regressions vs baseline in {baseline_path}")
        else:
            # Different machine or python: absolute cycles/s is not a
            # regression signal, so comparisons are informational and
            # never feed the --strict gate.
            entry = baseline["entry"]
            print(
                f"newest quick={args.quick} baseline in {baseline_path} "
                f"is from a different host ({entry.get('platform')}, "
                f"python {entry.get('python')}); comparisons are "
                "informational only"
            )
            for line in notes:
                print(f"note (cross-platform): {line}")
    else:
        print(
            f"no quick={args.quick} baseline entry in {baseline_path}; "
            "skipping comparison"
        )

    if not args.no_append:
        entry = {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
            "python": report["python"],
            "platform": report["platform"],
            "quick": args.quick,
            "headline": headline,
            # Separate key on purpose: compare_to_baseline iterates the
            # headline regimes by engine and must not see this shape.
            "probe_overhead": {
                "overhead": probe_overhead["overhead"],
                "overhead_low": probe_overhead["overhead_low"],
                "overhead_high": probe_overhead["overhead_high"],
                "tolerance": probe_overhead["tolerance"],
            },
        }
        append_trajectory(trajectory_path, entry)
        print(f"appended entry to {trajectory_path}")

    failed = False
    saturated = report["benchmarks"].get("saturated-ndm-8x8")
    if args.quick:
        # Short runs have not fully wedged yet, so the structural
        # speedup target only applies at full scale.
        saturated = None
    if saturated is not None and saturated["speedup"] < TARGET_SPEEDUP:
        print(
            f"WARNING: saturated speedup {saturated['speedup']}x below the "
            f"{TARGET_SPEEDUP}x target",
            file=sys.stderr,
        )
        failed = True
    if batch_campaign is not None:
        if batch_campaign["speedup"] < BATCH_TARGET_SPEEDUP:
            print(
                f"WARNING: batch campaign speedup "
                f"{batch_campaign['speedup']}x below the "
                f"{BATCH_TARGET_SPEEDUP}x gate",
                file=sys.stderr,
            )
            failed = True
        elif (
            not args.quick
            and batch_campaign["speedup"] < BATCH_TARGET_SPEEDUP_FULL
        ):
            print(
                f"WARNING: batch campaign speedup "
                f"{batch_campaign['speedup']}x below the "
                f"{BATCH_TARGET_SPEEDUP_FULL}x full-grid target "
                "(non-gating; see EXPERIMENTS.md)",
                file=sys.stderr,
            )
    if (
        mixed_campaign is not None
        and mixed_campaign["speedup"] < MIXED_BATCH_TARGET_SPEEDUP
    ):
        print(
            f"WARNING: mixed campaign speedup "
            f"{mixed_campaign['speedup']}x below the "
            f"{MIXED_BATCH_TARGET_SPEEDUP}x gate",
            file=sys.stderr,
        )
        failed = True
    if args.strict and warnings:
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
