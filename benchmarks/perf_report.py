"""Engine benchmark report: scan vs event on a saturated network.

Runs the acceptance configuration — an 8x8 torus driven well beyond
saturation with NDM detection (t2=32) and no recovery, the regime the
event engine exists for — under both engines and writes a
``BENCH_engines.json`` report with cycles/second, per-phase wall times
and the engine work counters.  A second, flowing configuration (recovery
enabled) is included for context: most movement visits there are genuine
flit work, so the speedup is structurally smaller.

Standalone on purpose (no pytest-benchmark): CI runs it directly and
uploads the JSON as an artifact.

    PYTHONPATH=src python benchmarks/perf_report.py [output-dir]
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator

#: The acceptance bar from the event-engine change: at least this factor
#: between engines on the saturated configuration.
TARGET_SPEEDUP = 1.5

CONFIGS = {
    "saturated-ndm-8x8": dict(
        radix=8,
        dimensions=2,
        vcs_per_channel=2,
        warmup_cycles=0,
        measure_cycles=4000,
        seed=11,
        recovery="none",
        mechanism="ndm",
        threshold=32,
        injection_rate=0.8,
    ),
    "flowing-ndm-8x8": dict(
        radix=8,
        dimensions=2,
        vcs_per_channel=3,
        warmup_cycles=0,
        measure_cycles=3000,
        seed=11,
        recovery="progressive",
        mechanism="ndm",
        threshold=32,
        injection_rate=0.5,
    ),
}


def build_config(spec: dict, engine: str) -> SimulationConfig:
    spec = dict(spec)
    mechanism = spec.pop("mechanism")
    threshold = spec.pop("threshold")
    injection_rate = spec.pop("injection_rate")
    config = SimulationConfig(engine=engine, ground_truth_interval=0, **spec)
    config.detector.mechanism = mechanism
    config.detector.threshold = threshold
    config.traffic.injection_rate = injection_rate
    return config


def time_run(config: SimulationConfig) -> dict:
    sim = Simulator(config)
    start = time.perf_counter()
    stats = sim.run()
    elapsed = time.perf_counter() - start
    return {
        "engine": config.engine,
        "cycles": stats.cycles_run,
        "seconds": round(elapsed, 4),
        "cycles_per_second": round(stats.cycles_run / elapsed, 1),
        "phase_time": {k: round(v, 4) for k, v in stats.phase_time.items()},
        "engine_counters": dict(stats.engine_counters),
        "delivered": stats.delivered,
        "detections": stats.detections,
    }


def benchmark_config(name: str, spec: dict) -> dict:
    runs = {}
    for engine in ("scan", "event"):
        config = build_config(spec, engine)
        time_run(config)  # warm caches/allocator; discard the first run
        runs[engine] = time_run(config)
    speedup = (
        runs["event"]["cycles_per_second"] / runs["scan"]["cycles_per_second"]
    )
    return {
        "config": spec,
        "runs": runs,
        "speedup": round(speedup, 3),
    }


def main(argv) -> int:
    out_dir = Path(argv[1]) if len(argv) > 1 else Path("results")
    out_dir.mkdir(parents=True, exist_ok=True)
    report = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "target_speedup": TARGET_SPEEDUP,
        "benchmarks": {},
    }
    for name, spec in CONFIGS.items():
        print(f"benchmarking {name} ...", flush=True)
        result = benchmark_config(name, spec)
        report["benchmarks"][name] = result
        for engine in ("scan", "event"):
            run = result["runs"][engine]
            print(
                f"  {engine:>5}: {run['cycles_per_second']:>10.1f} cycles/s "
                f"({run['seconds']}s for {run['cycles']} cycles)"
            )
        print(f"  speedup: {result['speedup']}x")
    path = out_dir / "BENCH_engines.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {path}")
    headline = report["benchmarks"]["saturated-ndm-8x8"]["speedup"]
    if headline < TARGET_SPEEDUP:
        print(
            f"WARNING: saturated speedup {headline}x below the "
            f"{TARGET_SPEEDUP}x target",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
