"""Shared infrastructure for the benchmark suite.

Each paper table is regenerated once per pytest session (cached) and the
rendered table is printed and written under ``results/``.  Benchmarks run
on the quick 64-node grid by default; set ``REPRO_FULL=1`` for the
paper-scale 512-node grid with the full threshold/load matrix (slow).
"""

from __future__ import annotations

import functools
import sys

import pytest

from repro.experiments.report import render_comparison, render_table
from repro.experiments.tables import regenerate_table, save_result


@functools.lru_cache(maxsize=None)
def table_result(table_id: int, seed: int = 7):
    """Regenerate one table (cached for the whole benchmark session)."""
    result = regenerate_table(table_id, seed=seed)
    save_result(result, "results")
    text = render_table(result)
    print(f"\n{text}\n", file=sys.stderr)
    print(render_comparison(result), file=sys.stderr)
    return result


def run_once(benchmark, func):
    """Run an expensive benchmark body exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    return lambda func: run_once(benchmark, func)


# ----------------------------------------------------------------------
# Shared shape assertions (the reproduction criteria from DESIGN.md)
# ----------------------------------------------------------------------
def assert_detection_decays_with_threshold(result, slack: float = 1.0):
    """Within each column, detection percentage must trend down as the
    threshold grows (small jitter allowed: these are stochastic runs).

    Columns in which an actual deadlock occurred are skipped: a real
    deadlock freezes a growing region until the (large) threshold fires,
    which legitimately inflates high-threshold cells — the paper's own
    ``(*)`` columns show the same effect.
    """
    spec = result.spec
    thresholds = sorted(result.cells)
    for load_index in range(len(result.rates)):
        for size in spec.sizes:
            cells = [result.cell(t, load_index, size) for t in thresholds]
            if any(cell.had_true_deadlock for cell in cells):
                continue
            values = [cell.percentage for cell in cells]
            assert values[-1] <= values[0] + slack, (
                f"detection did not decay: load={load_index} size={size} "
                f"values={values}"
            )


def assert_saturation_detects_most(result, slack: float = 0.6):
    """The saturated load column dominates the below-saturation one at the
    lowest threshold."""
    spec = result.spec
    lowest = min(result.cells)
    for size in spec.sizes:
        low = result.cell(lowest, 0, size).percentage
        sat = result.cell(lowest, len(result.rates) - 1, size).percentage
        assert sat >= low - slack, (
            f"saturated load did not dominate: size={size} "
            f"low={low} sat={sat}"
        )


def assert_percentages_sane(result):
    for row in result.cells.values():
        for cell in row.values():
            assert 0.0 <= cell.percentage <= 100.0
            assert cell.injected > 0
            assert cell.throughput > 0.0
