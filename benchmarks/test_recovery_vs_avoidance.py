"""Benchmark: deadlock recovery vs deadlock avoidance (paper Sec. 1).

The paper's motivating argument: "Deadlock recovery strategies allow the
use of unrestricted fully adaptive routing, potentially outperforming
deadlock avoidance techniques."  This benchmark sweeps load under

* true fully adaptive routing + NDM detection + progressive recovery
  (the paper's proposal), and
* Duato-style adaptive routing with escape channels (avoidance baseline,
  no detection needed),

and compares the latency/throughput profiles.
"""

import sys

from repro.experiments.latency import sweep_load
from repro.experiments.spec import base_config


def configured(routing: str):
    config = base_config()
    config.seed = 11
    config.routing = routing
    config.traffic.pattern = "uniform"
    config.traffic.lengths = "s"
    if routing == "duato-adaptive":
        config.detector.mechanism = "none"
        config.recovery = "none"
    else:
        config.detector.mechanism = "ndm"
        config.detector.threshold = 32
    return config


RATES = (0.2, 0.4, 0.55, 0.65)


def test_recovery_beats_avoidance_at_high_load(once):
    def run_sweeps():
        return {
            routing: sweep_load(configured(routing), RATES)
            for routing in ("fully-adaptive", "duato-adaptive")
        }

    sweeps = once(run_sweeps)
    for routing, sweep in sweeps.items():
        print(f"\n--- {routing} ---", file=sys.stderr)
        for row in sweep.rows():
            print(row, file=sys.stderr)

    adaptive = sweeps["fully-adaptive"].points
    duato = sweeps["duato-adaptive"].points
    # At the highest common load the unrestricted router must not lose on
    # latency nor throughput (the paper's claim, reproduced).
    assert adaptive[-1].throughput >= duato[-1].throughput - 0.02
    if adaptive[-1].avg_latency and duato[-1].avg_latency:
        assert adaptive[-1].avg_latency <= duato[-1].avg_latency * 1.1


def test_avoidance_never_needs_recovery(once):
    def run_one():
        config = configured("duato-adaptive")
        config.traffic.injection_rate = RATES[-1]
        config.ground_truth_interval = 100
        from repro.network.simulator import Simulator

        return Simulator(config).run()

    stats = once(run_one)
    assert stats.truth_sweeps_with_deadlock == 0
    assert stats.detections == 0
