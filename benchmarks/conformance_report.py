"""Fault-conformance harness entry point for CI artifacts.

Thin wrapper around ``repro faults conformance``: runs the quick
profile (every detector on seeded fault schedules, both engines),
prints the FP/FN/latency table, and writes the full JSON report to
``results/CONFORMANCE.json`` (or ``<out-dir>/CONFORMANCE.json``) for
upload as a CI artifact.  Exits non-zero if the scan and event engines
produced different behaviour on any schedule — the fault subsystem's
equivalence gate.

    PYTHONPATH=src python benchmarks/conformance_report.py [options] [out-dir]

Options:
    --schedules N   number of fault schedules (default 3)
    --seed N        base seed for schedule generation (default 0)
    --full          longer measurement/drain window (local runs)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from repro.faults.cli import run as run_faults


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("out_dir", nargs="?", default="results")
    parser.add_argument("--schedules", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--full", action="store_true")
    args = parser.parse_args(argv[1:])

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    return run_faults(
        argparse.Namespace(
            quick=not args.full,
            schedules=args.schedules,
            seed=args.seed,
            detectors="ndm,pdm,timeout,probe",
            out=str(out_dir / "CONFORMANCE.json"),
            cache_dir=None,
            manifest=str(out_dir / "conformance_manifest.jsonl"),
        )
    )


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
