"""Benchmark: raw simulator performance (cycles/second).

These are conventional timing benchmarks (multiple rounds) rather than
table regenerations: they track the cost of the simulation kernel and the
overhead each detection mechanism adds to it.
"""

import pytest

from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator


def make_sim(mechanism="ndm", radix=8, dimensions=2, rate=0.5):
    config = SimulationConfig(
        radix=radix,
        dimensions=dimensions,
        warmup_cycles=0,
        measure_cycles=10,
        seed=3,
        ground_truth_interval=0,
    )
    config.traffic.injection_rate = rate
    config.detector.mechanism = mechanism
    sim = Simulator(config)
    for _ in range(300):  # reach steady state before timing
        sim.step()
    return sim


def step_n(sim, n=100):
    for _ in range(n):
        sim.step()


@pytest.mark.parametrize("mechanism", ["none", "ndm", "pdm", "timeout"])
def test_steady_state_cycles(benchmark, mechanism):
    """Cost of 100 steady-state cycles on the 64-node torus at load 0.5."""
    sim = make_sim(mechanism=mechanism)
    benchmark(step_n, sim, 100)


def test_build_network_64(benchmark):
    config = SimulationConfig(radix=8, dimensions=2)
    benchmark(lambda: Simulator(config))


def test_build_network_512(benchmark):
    config = SimulationConfig(radix=8, dimensions=3)
    benchmark(lambda: Simulator(config))


def test_ground_truth_sweep_cost(benchmark):
    """Cost of one ground-truth deadlock sweep at saturation."""
    from repro.analysis.deadlock import find_deadlocked

    sim = make_sim(rate=0.7)
    benchmark(find_deadlocked, sim.active_messages)


def test_low_load_cycles(benchmark):
    """Idle-ish network: the per-cycle cost should scale with activity."""
    sim = make_sim(rate=0.05)
    benchmark(step_n, sim, 100)


# ----------------------------------------------------------------------
# Engine comparison: the event engine's reason to exist is saturation
# ----------------------------------------------------------------------
def make_saturated_sim(engine, rate=0.8, vcs=2, recovery="none"):
    """8x8 torus beyond saturation: most worms blocked most of the time."""
    config = SimulationConfig(
        radix=8,
        dimensions=2,
        vcs_per_channel=vcs,
        warmup_cycles=0,
        measure_cycles=10,
        seed=11,
        recovery=recovery,
        engine=engine,
        ground_truth_interval=0,
    )
    config.traffic.injection_rate = rate
    config.detector.mechanism = "ndm"
    config.detector.threshold = 32
    sim = Simulator(config)
    for _ in range(400):  # let the congestion build before timing
        sim.step()
    return sim


@pytest.mark.parametrize("engine", ["scan", "event"])
def test_saturated_cycles_by_engine(benchmark, engine):
    """100 saturated cycles; the event engine should win decisively here."""
    sim = make_saturated_sim(engine)
    benchmark(step_n, sim, 100)


@pytest.mark.parametrize("engine", ["scan", "event"])
def test_flowing_cycles_by_engine(benchmark, engine):
    """100 flowing congested cycles; parking buys little when most visits
    move real flits — this pins the event engine's overhead bound."""
    sim = make_saturated_sim(engine, rate=0.5, vcs=3, recovery="progressive")
    benchmark(step_n, sim, 100)
