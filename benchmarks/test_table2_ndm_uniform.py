"""Benchmark: regenerate paper Table 2 (NDM, uniform traffic).

The paper's contribution measured on the same grid as Table 1.
"""

from conftest import (
    assert_detection_decays_with_threshold,
    assert_percentages_sane,
    assert_saturation_detects_most,
    table_result,
)


def test_table2_ndm_uniform(once):
    result = once(lambda: table_result(2))
    assert_percentages_sane(result)
    assert_detection_decays_with_threshold(result, slack=3.0)
    assert_saturation_detects_most(result)


def test_table2_vs_table1_ndm_not_worse(once):
    """NDM must not detect (meaningfully) more than PDM on any shared
    cell; the paper reports a ~10x average reduction on its testbed (see
    EXPERIMENTS.md for our measured ratio and the substrate caveat)."""

    def ratios():
        t1 = table_result(1)
        t2 = table_result(2)
        shared = []
        for threshold in t2.cells:
            for key, cell in t2.cells[threshold].items():
                pdm = t1.cells[threshold][key].percentage
                shared.append((pdm, cell.percentage))
        return shared

    shared = once(ratios)
    pdm_total = sum(p for p, _ in shared)
    ndm_total = sum(n for _, n in shared)
    assert ndm_total <= pdm_total * 1.25
