"""Benchmark: regenerate paper Table 5 (NDM, perfect-shuffle traffic)."""

from conftest import (
    assert_detection_decays_with_threshold,
    assert_percentages_sane,
    assert_saturation_detects_most,
    table_result,
)


def test_table5_ndm_perfect_shuffle(once):
    result = once(lambda: table_result(5))
    assert_percentages_sane(result)
    assert_detection_decays_with_threshold(result, slack=2.0)
    assert_saturation_detects_most(result)
