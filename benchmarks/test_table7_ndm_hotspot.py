"""Benchmark: regenerate paper Table 7 (NDM, hot-spot traffic).

The paper's hardest pattern: detection percentages decay more slowly with
the threshold because the hot-spot region is genuinely saturated.
"""

from conftest import (
    assert_detection_decays_with_threshold,
    assert_percentages_sane,
    table_result,
)


def test_table7_ndm_hotspot(once):
    result = once(lambda: table_result(7))
    assert_percentages_sane(result)
    assert_detection_decays_with_threshold(result, slack=2.0)


def test_table7_saturation_rate_far_below_uniform(once):
    """The hot node bounds the saturation rate well below uniform's."""

    def rates():
        return table_result(7).rates, table_result(2).rates

    hotspot_rates, uniform_rates = once(rates)
    assert hotspot_rates[-1] < 0.5 * uniform_rates[-1]
