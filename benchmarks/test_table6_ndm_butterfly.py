"""Benchmark: regenerate paper Table 6 (NDM, butterfly traffic)."""

from conftest import (
    assert_detection_decays_with_threshold,
    assert_percentages_sane,
    assert_saturation_detects_most,
    table_result,
)


def test_table6_ndm_butterfly(once):
    result = once(lambda: table_result(6))
    assert_percentages_sane(result)
    assert_detection_decays_with_threshold(result, slack=2.0)
    assert_saturation_detects_most(result)


def test_table6_fixed_points_silent(once):
    """Butterfly has 50% fixed points; the offered (and therefore
    accepted) load is half the nominal rate."""

    def throughputs():
        result = table_result(6)
        lowest = min(result.cells)
        cell = result.cell(lowest, 0, "s")
        return cell.throughput, cell.injection_rate

    thr, rate = once(throughputs)
    assert thr <= 0.75 * rate
