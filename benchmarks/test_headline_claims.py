"""Benchmark: the paper's cross-table headline claims.

* NDM reduces detected messages vs PDM at equal thresholds (the paper
  reports ~10x on its testbed; our substrate's measured ratio is recorded
  in EXPERIMENTS.md together with the microstructure caveat).
* A single constant threshold (the paper picks 32) keeps NDM's false
  detection percentage small across message lengths and patterns.
* Crude timeouts detect far more than both channel-monitoring mechanisms.
"""

import sys

from conftest import table_result

from repro.experiments.runner import build_cell_config
from repro.experiments.spec import TABLE_SPECS, base_config, quick_spec
from repro.network.simulator import Simulator


def test_ndm_not_worse_than_pdm_aggregate(once):
    def aggregate():
        t1 = table_result(1)
        t2 = table_result(2)
        pdm = ndm = 0.0
        for threshold in t2.cells:
            for key in t2.cells[threshold]:
                pdm += t1.cells[threshold][key].percentage
                ndm += t2.cells[threshold][key].percentage
        return pdm, ndm

    pdm, ndm = once(aggregate)
    print(f"\naggregate detected%: PDM={pdm:.3f} NDM={ndm:.3f} "
          f"ratio={pdm / max(ndm, 1e-9):.2f}", file=sys.stderr)
    assert ndm <= pdm * 1.25


def test_th32_keeps_false_detection_low(once):
    """NDM at the paper's recommended threshold, one saturated run per
    pattern: the worst-case detected percentage stays small."""

    def worst_case():
        worst = 0.0
        for table_id in (2, 3, 4, 5, 6):
            spec = quick_spec(TABLE_SPECS[table_id])
            base = base_config()
            base.seed = 7
            from repro.experiments.runner import run_cell, saturation_rate

            rate = saturation_rate(base, spec) * spec.load_fractions[-1]
            cell = run_cell(base, spec, 32, "s", rate)
            worst = max(worst, cell.percentage)
        return worst

    worst = once(worst_case)
    print(f"\nworst-case NDM Th32 detected% at saturation: {worst:.3f}",
          file=sys.stderr)
    # The paper's bound on its testbed is 0.16%; our noisier small-network
    # substrate stays within a few percent (see EXPERIMENTS.md).
    assert worst <= 6.0


def test_crude_timeout_detects_most(once):
    """Header-blocked timeout >= PDM >= NDM on the same saturated load."""

    def run_mechanisms():
        spec = quick_spec(TABLE_SPECS[2])
        base = base_config()
        base.seed = 7
        from repro.experiments.runner import saturation_rate

        rate = saturation_rate(base, spec)
        out = {}
        for mechanism in ("timeout", "pdm", "ndm"):
            config = build_cell_config(base, spec, 16, "l", rate)
            config.detector.mechanism = mechanism
            stats = Simulator(config).run()
            out[mechanism] = stats.detection_percentage()
        return out

    result = once(run_mechanisms)
    print(f"\nsaturated l-traffic detected% at Th16: {result}", file=sys.stderr)
    assert result["timeout"] >= result["pdm"] * 0.9
    assert result["timeout"] >= result["ndm"] * 0.9
    assert result["timeout"] > 1.0  # crude timeouts mark heavily


def test_ndm_threshold_stability_across_lengths(once):
    """Paper Sec. 4.2: unlike PDM, the NDM threshold does not need to be
    re-tuned per message length — at Th 32 below saturation the detection
    percentage is small for every size."""

    def per_size():
        spec = quick_spec(TABLE_SPECS[2])
        base = base_config()
        base.seed = 7
        from repro.experiments.runner import run_cell, saturation_rate

        rate = saturation_rate(base, spec) * spec.load_fractions[0]
        return {
            size: run_cell(base, spec, 32, size, rate).percentage
            for size in ("s", "l", "sl")
        }

    result = once(per_size)
    print(f"\nNDM Th32 below saturation by size: {result}", file=sys.stderr)
    assert max(result.values()) <= 2.0
