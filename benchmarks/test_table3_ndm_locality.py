"""Benchmark: regenerate paper Table 3 (NDM, uniform traffic with locality).

Locality traffic sustains ~3x the uniform injection rate; detection
percentages stay tiny even at saturation (the paper's smallest numbers).
"""

from conftest import (
    assert_detection_decays_with_threshold,
    assert_percentages_sane,
    table_result,
)


def test_table3_ndm_locality(once):
    result = once(lambda: table_result(3))
    assert_percentages_sane(result)
    assert_detection_decays_with_threshold(result, slack=2.0)


def test_table3_rates_triple_uniform(once):
    """The locality grid runs at ~3x the uniform grid's absolute rates."""

    def rates():
        return table_result(3).rates, table_result(2).rates

    locality_rates, uniform_rates = once(rates)
    assert locality_rates[-1] > 2.0 * uniform_rates[-1]
