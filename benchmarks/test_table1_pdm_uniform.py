"""Benchmark: regenerate paper Table 1 (PDM, uniform traffic).

The previous detection mechanism's detected-message percentages across
thresholds, loads and message sizes.  Key published shapes verified here:
detection decays with threshold, grows toward saturation, and the PDM
needs larger thresholds for longer messages.
"""

from conftest import (
    assert_detection_decays_with_threshold,
    assert_percentages_sane,
    assert_saturation_detects_most,
    table_result,
)


def test_table1_pdm_uniform(once):
    result = once(lambda: table_result(1))
    assert_percentages_sane(result)
    assert_detection_decays_with_threshold(result, slack=3.0)
    assert_saturation_detects_most(result)


def test_table1_pdm_length_sensitivity(once):
    """Paper Sec. 4.2: the PDM threshold requirement grows with message
    length — at a mid threshold, long messages are detected (relatively)
    more often than short ones below saturation."""

    def shape():
        result = table_result(1)
        mid = sorted(result.cells)[1]
        low_load = 0
        short = result.cell(mid, low_load, "s").percentage
        longer = result.cell(mid, low_load, "l").percentage
        return short, longer

    short, longer = once(shape)
    assert longer >= short - 0.2
