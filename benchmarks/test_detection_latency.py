"""Benchmark: detection latency of each mechanism on a real deadlock.

The paper's predictability argument: with the NDM, a low constant t2
detects real deadlocks quickly; crude mechanisms need large (length-
dependent) thresholds, so deadlocked packets wait long before recovery.
"""

import sys

from repro.experiments.detection_latency import (
    latency_sweep,
    render_latency_table,
)


def test_detection_latency_sweep(once):
    def run():
        return latency_sweep(
            mechanisms=("ndm", "pdm", "timeout"),
            thresholds=(8, 32, 128),
        )

    points = once(run)
    print("\n" + render_latency_table(points), file=sys.stderr)

    by_key = {(p.mechanism, p.threshold): p for p in points}
    # Everyone detects the canonical deadlock eventually.
    assert all(p.detected for p in points)
    # Latency scales with the threshold for every mechanism.
    for mechanism in ("ndm", "pdm", "timeout"):
        assert (
            by_key[(mechanism, 128)].latency
            > by_key[(mechanism, 8)].latency
        )
    # The NDM marks one message per deadlock; the PDM marks several.
    assert by_key[("ndm", 32)].messages_marked == 1
    assert by_key[("pdm", 32)].messages_marked >= 3
