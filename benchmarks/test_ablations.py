"""Benchmark: ablations over the design choices DESIGN.md calls out.

* simple vs. selective G/P promotion (the paper's open question);
* injection limitation on/off (paper Sec. 4.1 motivates it);
* number of virtual channels (routing freedom vs. deadlock frequency);
* recovery scheme (progressive vs. regressive).
"""

import sys

from repro.experiments.spec import base_config
from repro.network.simulator import Simulator


def saturated_config(seed=7):
    config = base_config()
    config.seed = seed
    config.traffic.pattern = "uniform"
    config.traffic.lengths = "sl"
    config.traffic.injection_rate = 0.74  # ~saturation of the 64-node torus
    config.detector.mechanism = "ndm"
    config.detector.threshold = 32
    return config


def run(config):
    return Simulator(config).run()


def test_promotion_variant_ablation(once):
    """Selective promotion must not detect more than the simple variant
    (it only removes spurious G promotions)."""

    def ablate():
        out = {}
        for selective in (False, True):
            config = saturated_config()
            config.detector.selective_promotion = selective
            stats = run(config)
            key = "selective" if selective else "simple"
            out[key] = stats.detection_percentage()
        return out

    result = once(ablate)
    print(f"\npromotion ablation detected%: {result}", file=sys.stderr)
    assert result["selective"] <= result["simple"] + 1.0


def test_injection_limitation_ablation(once):
    """Without the limitation, the oversaturated network degrades; with
    it, throughput holds near the saturation plateau (paper [11, 12])."""

    def ablate():
        out = {}
        for fraction in (0.65, None):
            config = saturated_config()
            config.traffic.injection_rate = 1.0  # beyond saturation
            config.traffic.lengths = "s"
            config.injection_limit_fraction = fraction
            # Pure network: with detection+recovery active the recovery
            # lane masks the degradation the limitation prevents.
            config.detector.mechanism = "none"
            config.recovery = "none"
            stats = run(config)
            out[str(fraction)] = stats.throughput()
        return out

    result = once(ablate)
    print(f"\ninjection limitation throughput: {result}", file=sys.stderr)
    assert result["0.65"] >= result["None"] - 0.05


def test_virtual_channel_ablation(once):
    """Fewer virtual channels -> less routing freedom -> more detections
    (and with 1 VC, often true deadlocks)."""

    def ablate():
        out = {}
        for vcs in (1, 2, 3):
            config = saturated_config()
            config.vcs_per_channel = vcs
            config.traffic.injection_rate = 0.55
            stats = run(config)
            out[vcs] = (
                stats.detection_percentage(),
                stats.had_true_deadlock(),
                stats.throughput(),
            )
        return out

    result = once(ablate)
    print(f"\nVC ablation (detected%, deadlock?, thr): {result}", file=sys.stderr)
    assert result[1][0] >= result[3][0]  # 1 VC detects at least as much


def test_recovery_scheme_ablation(once):
    """All schemes keep the saturated network delivering; regressive
    retries inflate the worst-case latency."""

    def ablate():
        out = {}
        for scheme in ("progressive", "progressive-reinject", "regressive"):
            config = saturated_config()
            config.detector.threshold = 16
            config.recovery = scheme
            stats = run(config)
            out[scheme] = (stats.throughput(), stats.max_latency)
        return out

    result = once(ablate)
    print(f"\nrecovery ablation (thr, max lat): {result}", file=sys.stderr)
    for throughput, _ in result.values():
        assert throughput > 0.4


def test_t1_sensitivity(once):
    """The paper sets t1 = 1 cycle; nearby values barely change the
    detection percentage (it is t2 that must be tuned)."""

    def ablate():
        out = {}
        for t1 in (1, 2, 4):
            config = saturated_config()
            config.detector.t1 = t1
            stats = run(config)
            out[t1] = stats.detection_percentage()
        return out

    result = once(ablate)
    print(f"\nt1 sensitivity detected%: {result}", file=sys.stderr)
    spread = max(result.values()) - min(result.values())
    assert spread <= max(2.0, max(result.values()))


def test_i_flag_approximation_ablation(once):
    """ndm (one-bit I-flag hardware) vs ndm-precise (exact per-message
    root-adjacency): quantifies what the paper's hardware approximation
    costs on this substrate."""

    def ablate():
        out = {}
        for mechanism in ("ndm", "ndm-precise", "pdm"):
            config = saturated_config()
            config.detector.mechanism = mechanism
            stats = run(config)
            out[mechanism] = stats.detection_percentage()
        return out

    result = once(ablate)
    print(f"\nI-flag approximation ablation detected%: {result}", file=sys.stderr)
    # The exact variant never detects tree-interior messages, so it cannot
    # exceed PDM by more than noise.
    assert result["ndm-precise"] <= result["pdm"] * 1.4 + 0.5
