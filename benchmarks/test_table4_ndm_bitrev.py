"""Benchmark: regenerate paper Table 4 (NDM, bit-reversal traffic)."""

from conftest import (
    assert_detection_decays_with_threshold,
    assert_percentages_sane,
    assert_saturation_detects_most,
    table_result,
)


def test_table4_ndm_bit_reversal(once):
    result = once(lambda: table_result(4))
    assert_percentages_sane(result)
    assert_detection_decays_with_threshold(result, slack=2.0)
    assert_saturation_detects_most(result)


def test_table4_high_threshold_clean(once):
    """Paper Table 4 reaches all-zero rows by Th 256; our largest quick
    threshold must be (near) clean below saturation."""

    def worst():
        result = table_result(4)
        top = max(result.cells)
        return max(
            result.cell(top, 0, size).percentage
            for size in result.spec.sizes
        )

    assert once(worst) <= 0.5
