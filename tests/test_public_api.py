"""The public API surface: imports, __all__ hygiene, version."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quick_tour_runs(self):
        """The __init__ docstring's quick tour, executed."""
        config = repro.SimulationConfig(radix=4, dimensions=2)
        config.traffic.injection_rate = 0.2
        config.detector.mechanism = "ndm"
        config.detector.threshold = 32
        config.warmup_cycles = 50
        config.measure_cycles = 200
        stats = repro.Simulator(config).run()
        assert "throughput" in stats.summary()


SUBPACKAGES = [
    "repro.core",
    "repro.network",
    "repro.traffic",
    "repro.analysis",
    "repro.metrics",
    "repro.experiments",
    "repro.figures",
]


class TestSubpackages:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_importable(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a docstring"

    @pytest.mark.parametrize(
        "name",
        ["repro.core", "repro.network", "repro.traffic", "repro.analysis",
         "repro.metrics", "repro.experiments"],
    )
    def test_all_exports_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol}"


class TestEveryModuleDocumented:
    @pytest.mark.parametrize(
        "name",
        [
            "repro.core.ndm", "repro.core.pdm", "repro.core.precise",
            "repro.core.hybrid", "repro.core.timeout", "repro.core.recovery",
            "repro.core.flags", "repro.core.detector", "repro.core.registry",
            "repro.network.topology", "repro.network.routing",
            "repro.network.channel", "repro.network.message",
            "repro.network.router", "repro.network.simulator",
            "repro.network.config", "repro.network.tracing",
            "repro.traffic.patterns", "repro.traffic.lengths",
            "repro.traffic.workload",
            "repro.analysis.deadlock", "repro.analysis.waitgraph",
            "repro.analysis.saturation", "repro.analysis.channels",
            "repro.metrics.stats", "repro.metrics.timeseries",
            "repro.experiments.spec", "repro.experiments.runner",
            "repro.experiments.tables", "repro.experiments.report",
            "repro.experiments.paper_data", "repro.experiments.cli",
            "repro.experiments.latency",
            "repro.experiments.detection_latency",
            "repro.figures.scenarios",
        ],
    )
    def test_module_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and len(module.__doc__) > 40, name

    def test_public_classes_documented(self):
        from repro.core.ndm import NewDetectionMechanism
        from repro.network.simulator import Simulator
        from repro.network.channel import PhysicalChannel

        for cls in (NewDetectionMechanism, Simulator, PhysicalChannel):
            assert cls.__doc__
            for attr_name in dir(cls):
                attr = getattr(cls, attr_name)
                if attr_name.startswith("_") or not callable(attr):
                    continue
                if getattr(attr, "__module__", "").startswith("repro"):
                    assert attr.__doc__, f"{cls.__name__}.{attr_name}"
