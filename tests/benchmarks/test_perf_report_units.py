"""Unit tests for the perf-harness plumbing (no timed simulation runs).

Covers the baseline-selection rules (same-host preference, quick/full
separation), the regression-comparison guards, and the probe-overhead
noise-band contract — the logic bugs that made committed ``BENCH_kernel``
entries compare a v19-kernel host against a v20 one and flag a -2.3%
"overhead" as meaningful.
"""

from __future__ import annotations

import importlib.util
import json
import platform
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def perf_report():
    spec = importlib.util.spec_from_file_location(
        "perf_report", REPO_ROOT / "benchmarks" / "perf_report.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("perf_report", module)
    spec.loader.exec_module(module)
    return module


def _entry(quick=True, host=True, stamp="2026-01-01", headline=None):
    return {
        "timestamp": stamp,
        "quick": quick,
        "python": platform.python_version() if host else "3.0.0",
        "platform": platform.platform() if host else "Linux-other-host",
        "headline": headline or {},
    }


def _write(tmp_path, entries):
    path = tmp_path / "BENCH_kernel.json"
    path.write_text(json.dumps({"entries": entries}))
    return path


class TestLoadBaseline:
    def test_missing_file_is_none(self, perf_report, tmp_path):
        assert perf_report.load_baseline(tmp_path / "nope.json", True) is None

    def test_prefers_newest_same_host_entry(self, perf_report, tmp_path):
        path = _write(
            tmp_path,
            [
                _entry(host=True, stamp="old"),
                _entry(host=False, stamp="foreign"),
                _entry(host=True, stamp="new"),
            ],
        )
        baseline = perf_report.load_baseline(path, True)
        assert baseline["same_host"] is True
        assert baseline["entry"]["timestamp"] == "new"

    def test_same_host_beats_newer_foreign_entry(self, perf_report, tmp_path):
        """The committed trajectory mixes machines; a same-host entry is
        the regression baseline even when a foreign one is newer."""
        path = _write(
            tmp_path,
            [_entry(host=True, stamp="mine"), _entry(host=False, stamp="new")],
        )
        baseline = perf_report.load_baseline(path, True)
        assert baseline["same_host"] is True
        assert baseline["entry"]["timestamp"] == "mine"

    def test_cross_platform_fallback_flagged(self, perf_report, tmp_path):
        path = _write(tmp_path, [_entry(host=False)])
        baseline = perf_report.load_baseline(path, True)
        assert baseline["same_host"] is False

    def test_quick_and_full_never_mix(self, perf_report, tmp_path):
        path = _write(tmp_path, [_entry(quick=False, host=True)])
        assert perf_report.load_baseline(path, True) is None
        assert perf_report.load_baseline(path, False)["same_host"] is True


class TestCompareToBaseline:
    def test_regression_flagged(self, perf_report):
        headline = {"r": {"scan": 80.0, "event": 100.0, "speedup": 1.2}}
        base = _entry(headline={"r": {"scan": 100.0, "event": 100.0}})
        warnings = perf_report.compare_to_baseline(headline, base)
        assert len(warnings) == 1
        assert "r/scan" in warnings[0]

    def test_missing_engine_keys_ignored(self, perf_report):
        """A hand-edited or differently-shaped entry must not crash the
        comparison — batch-campaign has no scan/event keys at all."""
        headline = {
            "r": {"event": 100.0},
            "batch-campaign": {"speedup": 6.0, "cells": 8},
        }
        base = _entry(
            headline={
                "r": {"scan": 100.0},
                "batch-campaign": {"speedup": 6.1},
            }
        )
        assert perf_report.compare_to_baseline(headline, base) == []

    def test_batch_speedup_regression_flagged(self, perf_report):
        headline = {"batch-campaign": {"speedup": 5.0}}
        base = _entry(headline={"batch-campaign": {"speedup": 8.0}})
        warnings = perf_report.compare_to_baseline(headline, base)
        assert len(warnings) == 1
        assert "batch-campaign" in warnings[0]


class TestProbeOverheadBand:
    def test_band_constants_and_shape(self, perf_report):
        """The recorded datapoint carries the noise band; the budget
        check uses the band's lower edge (a negative median — seen in
        committed entries at -2.3% — is noise, not a speedup claim)."""
        assert perf_report.PROBE_OVERHEAD_TOLERANCE == 0.05
        # Contract sanity on a synthetic result shaped like the bench.
        ratios = sorted([0.977, 1.01, 1.099])
        overhead = ratios[len(ratios) // 2] - 1.0
        low, high = ratios[0] - 1.0, ratios[-1] - 1.0
        assert low <= overhead <= high
        assert low < 0 < high  # the noisy regime: band straddles zero
        assert not low > perf_report.PROBE_OVERHEAD_TOLERANCE
