"""Smoke tests: the fast example scripts run and print their story.

Slow examples (full detector comparisons, saturation searches, the
512-node paper-scale run) are exercised by the benchmark suite instead.
"""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestFastExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "quickstart" in out
        assert "deadlock" in out
        assert "throughput" in out

    def test_figure_walkthrough(self):
        out = run_example("figure_walkthrough.py")
        assert "Figure 2" in out
        assert "NDM detections: ['B']" in out
        assert "PDM detections: ['B', 'C', 'D', 'E']" in out
        assert "['C', 'D', 'E', 'F']" in out

    def test_deadlock_anatomy(self):
        out = run_example("deadlock_anatomy.py")
        assert "waits on" in out
        assert "knot" in out
        assert "Detections: ['B']" in out

    def test_examples_all_have_docstrings_and_main(self):
        for script in EXAMPLES.glob("*.py"):
            text = script.read_text()
            assert text.lstrip().startswith(('"""', "#!")), script.name
            assert '__name__ == "__main__"' in text, script.name
