"""Tests for campaign job enumeration, hashing and seed derivation."""

import pytest

from repro.campaign.jobs import (
    CellJob,
    cell_from_dict,
    cell_to_dict,
    config_hash,
    derive_cell_seed,
    enumerate_table_jobs,
    job_key,
)
from repro.experiments.runner import CellResult, build_cell_config
from tests.campaign.conftest import tiny_base, tiny_spec


class TestConfigHash:
    def test_stable_across_instances(self):
        a = build_cell_config(tiny_base(), tiny_spec(), 8, "s", 0.3)
        b = build_cell_config(tiny_base(), tiny_spec(), 8, "s", 0.3)
        assert a is not b
        assert config_hash(a) == config_hash(b)

    def test_sensitive_to_every_knob(self):
        base = build_cell_config(tiny_base(), tiny_spec(), 8, "s", 0.3)
        reference = config_hash(base)
        for change in (
            {"seed": 99},
            {"radix": 8},
            {"warmup_cycles": 50},
        ):
            assert config_hash(base.replace(**change)) != reference
        threshold = build_cell_config(tiny_base(), tiny_spec(), 32, "s", 0.3)
        assert config_hash(threshold) != reference
        rate = build_cell_config(tiny_base(), tiny_spec(), 8, "s", 0.4)
        assert config_hash(rate) != reference

    def test_hex_sha256(self):
        digest = config_hash(tiny_base())
        assert len(digest) == 64
        int(digest, 16)  # must be valid hex


class TestDeriveCellSeed:
    def test_deterministic(self):
        assert derive_cell_seed(7, 2, 8, 0, "s") == derive_cell_seed(
            7, 2, 8, 0, "s"
        )

    def test_decorrelated_across_cells(self):
        seeds = {
            derive_cell_seed(7, 2, th, li, size)
            for th in (2, 8, 32)
            for li in (0, 1)
            for size in ("s", "l")
        }
        assert len(seeds) == 12  # no collisions on a small grid

    def test_depends_on_base_seed(self):
        assert derive_cell_seed(1, 2, 8, 0, "s") != derive_cell_seed(
            2, 2, 8, 0, "s"
        )


class TestEnumerateTableJobs:
    def test_canonical_order_and_count(self, spec, base):
        rates, jobs = enumerate_table_jobs(spec, base, saturation=1.0)
        assert rates == (0.5, 0.7)
        assert len(jobs) == spec.cell_count()
        coords = [(j.threshold, j.load_index, j.size) for j in jobs]
        assert coords == list(spec.cell_coords())

    def test_jobs_self_describing(self, spec, base):
        _, jobs = enumerate_table_jobs(spec, base, saturation=1.0)
        job = jobs[0]
        assert isinstance(job, CellJob)
        assert job.key == job_key(spec.table_id, 8, 0, "s")
        assert job.rate == 0.5
        assert job.config.traffic.injection_rate == 0.5
        assert job.config.detector.threshold == 8
        assert job.config_hash == config_hash(job.config)

    def test_shared_seed_policy_keeps_base_seed(self, spec, base):
        _, jobs = enumerate_table_jobs(spec, base, 1.0, seed_policy="shared")
        assert {j.config.seed for j in jobs} == {base.seed}

    def test_per_cell_seed_policy_decorrelates(self, spec, base):
        _, jobs = enumerate_table_jobs(spec, base, 1.0, seed_policy="per-cell")
        seeds = {j.config.seed for j in jobs}
        assert len(seeds) == len(jobs)
        # and deterministically so
        _, again = enumerate_table_jobs(spec, base, 1.0, seed_policy="per-cell")
        assert [j.config.seed for j in jobs] == [j.config.seed for j in again]

    def test_unknown_seed_policy_rejected(self, spec, base):
        with pytest.raises(ValueError, match="seed policy"):
            enumerate_table_jobs(spec, base, 1.0, seed_policy="chaos")

    def test_payload_round_trips_config(self, spec, base):
        from repro.network.config import SimulationConfig

        _, jobs = enumerate_table_jobs(spec, base, 1.0)
        payload = jobs[0].payload()
        rebuilt = SimulationConfig.from_dict(payload["config"])
        assert config_hash(rebuilt) == jobs[0].config_hash


class TestCellSerialization:
    def test_round_trip_exact(self):
        cell = CellResult(
            percentage=1.2345678901234567,
            detections=5,
            messages_detected=4,
            true_detections=1,
            false_detections=3,
            injected=1000,
            throughput=0.123456789,
            injection_rate=0.4321,
            had_true_deadlock=True,
        )
        assert cell_from_dict(cell_to_dict(cell)) == cell

    def test_json_round_trip_exact(self):
        import json

        cell = CellResult(
            percentage=100.0 * 7 / 1234,
            detections=7,
            messages_detected=7,
            true_detections=0,
            false_detections=7,
            injected=1234,
            throughput=5678 / (400 * 16),
            injection_rate=0.3,
            had_true_deadlock=False,
        )
        wire = json.loads(json.dumps(cell_to_dict(cell)))
        assert cell_from_dict(wire) == cell
