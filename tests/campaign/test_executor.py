"""Tests for the campaign executor: serial/pool determinism, cache, resume."""

import pytest

from repro.campaign.cache import ResultCache
from repro.campaign.checkpoint import CampaignCheckpoint
from repro.campaign.executor import execute_jobs
from repro.campaign.jobs import cell_to_dict, enumerate_table_jobs
from repro.experiments.runner import run_cell
from repro.network.batch import HAVE_NUMPY
from tests.campaign.conftest import tiny_base, tiny_spec


def tiny_jobs(spec=None, base=None):
    _, jobs = enumerate_table_jobs(
        spec or tiny_spec(), base or tiny_base(), saturation=1.0
    )
    return jobs


def batch_base():
    """Tiny-grid base that makes every cell batch-shareable."""
    base = tiny_base()
    base.engine = "batch"
    base.recovery = "none"
    return base


class TestDeterminism:
    def test_serial_matches_direct_run_cell(self):
        """The executor path (stats round-trip included) is bit-identical
        to calling ``run_cell`` directly."""
        spec, base = tiny_spec(), tiny_base()
        jobs = tiny_jobs(spec, base)
        outcomes = execute_jobs(jobs, num_workers=1)
        for job in jobs:
            direct = run_cell(base, spec, job.threshold, job.size, job.rate)
            assert outcomes[job.key].cell == direct, job.key

    def test_serial_and_pool_paths_identical(self):
        """Regression guard for the parallel refactor: identical config +
        seed must yield identical ``CellResult`` on both paths."""
        jobs = tiny_jobs()
        serial = execute_jobs(jobs, num_workers=1)
        pooled = execute_jobs(jobs, num_workers=2)
        assert set(serial) == set(pooled)
        for key in serial:
            assert serial[key].cell == pooled[key].cell, key

    def test_repeated_serial_runs_identical(self):
        jobs = tiny_jobs()
        first = execute_jobs(jobs, num_workers=1)
        second = execute_jobs(jobs, num_workers=1)
        for key in first:
            assert first[key].cell == second[key].cell


class TestProgressAndTelemetry:
    def test_progress_counts_every_job(self):
        jobs = tiny_jobs()
        seen = []
        execute_jobs(jobs, num_workers=1,
                     progress=lambda done, total: seen.append((done, total)))
        assert seen == [(i + 1, len(jobs)) for i in range(len(jobs))]

    def test_outcome_telemetry(self):
        outcomes = execute_jobs(tiny_jobs(), num_workers=1)
        for outcome in outcomes.values():
            assert outcome.source == "run"
            assert outcome.worker == "serial"
            assert outcome.wall_time > 0

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError, match="num_workers"):
            execute_jobs(tiny_jobs(), num_workers=0)


class TestCacheIntegration:
    def test_second_run_all_hits(self, tmp_path):
        jobs = tiny_jobs()
        warm = ResultCache(tmp_path)
        first = execute_jobs(jobs, num_workers=1, cache=warm)
        assert warm.size() == len(jobs)

        cold = ResultCache(tmp_path)
        second = execute_jobs(jobs, num_workers=1, cache=cold)
        assert cold.hits == len(jobs)
        assert cold.misses == 0
        for key in first:
            assert second[key].cell == first[key].cell
            assert second[key].source == "cache"

    def test_overlapping_sweeps_share_cells(self, tmp_path):
        """A different table with the same resolved configs hits the cache
        (the hash keys content, not grid position)."""
        cache = ResultCache(tmp_path)
        execute_jobs(tiny_jobs(tiny_spec(table_id=2)), num_workers=1,
                     cache=cache)
        cache.hits = cache.misses = 0
        outcomes = execute_jobs(tiny_jobs(tiny_spec(table_id=3)),
                                num_workers=1, cache=cache)
        assert cache.hits == len(outcomes)

    def test_cache_hits_recorded_in_checkpoint(self, tmp_path):
        jobs = tiny_jobs()
        cache = ResultCache(tmp_path / "cache")
        execute_jobs(jobs, num_workers=1, cache=cache)
        ck = CampaignCheckpoint(tmp_path / "m.jsonl")
        execute_jobs(jobs, num_workers=1, cache=cache, checkpoint=ck)
        sources = [r["source"] for r in ck.records() if r["kind"] == "cell"]
        assert sources == ["cache"] * len(jobs)


class TestResume:
    def test_finished_cells_not_rerun(self, tmp_path):
        jobs = tiny_jobs()
        ck = CampaignCheckpoint(tmp_path / "m.jsonl")
        # Simulate an interrupted campaign: only the first cell finished.
        first = execute_jobs(jobs[:1], num_workers=1, checkpoint=ck)

        executed = []
        import repro.campaign.executor as executor_module
        original = executor_module._execute_payload

        def spy(payload):
            executed.append(payload["key"])
            return original(payload)

        executor_module._execute_payload = spy
        try:
            resumed = execute_jobs(jobs, num_workers=1, checkpoint=ck,
                                   resume=True)
        finally:
            executor_module._execute_payload = original

        assert executed == [j.key for j in jobs[1:]]
        assert resumed[jobs[0].key].source == "resume"
        assert resumed[jobs[0].key].cell == first[jobs[0].key].cell

    def test_stale_manifest_entries_rerun(self, tmp_path):
        """A manifest record whose config hash no longer matches (e.g.
        different seed) must not be reused."""
        jobs = tiny_jobs()
        ck = CampaignCheckpoint(tmp_path / "m.jsonl")
        ck.record_cell(
            key=jobs[0].key,
            config_hash="f" * 64,  # some other configuration
            cell=cell_to_dict(
                execute_jobs(jobs[:1], num_workers=1)[jobs[0].key].cell
            ),
            wall_time=0.1,
            worker="serial",
            source="run",
        )
        outcomes = execute_jobs(jobs, num_workers=1, checkpoint=ck,
                                resume=True)
        assert all(o.source == "run" for o in outcomes.values())

    def test_resume_without_flag_ignores_manifest(self, tmp_path):
        jobs = tiny_jobs()
        ck = CampaignCheckpoint(tmp_path / "m.jsonl")
        execute_jobs(jobs, num_workers=1, checkpoint=ck)
        outcomes = execute_jobs(jobs, num_workers=1, checkpoint=ck)
        assert all(o.source == "run" for o in outcomes.values())


class TestStoredEntryValidation:
    """Torn or hand-edited stored entries downgrade to a re-run."""

    def test_malformed_manifest_entry_reruns(self, tmp_path):
        jobs = tiny_jobs()
        ck = CampaignCheckpoint(tmp_path / "m.jsonl")
        ck.record_cell(
            key=jobs[0].key,
            config_hash=jobs[0].config_hash,
            cell={"percentage": "not-a-number"},  # wrong shape
            wall_time=0.1,
            worker="serial",
            source="run",
        )
        with pytest.warns(RuntimeWarning, match="malformed resume entry"):
            outcomes = execute_jobs(
                jobs[:1], num_workers=1, checkpoint=ck, resume=True
            )
        assert outcomes[jobs[0].key].source == "run"

    def test_malformed_cache_entry_reruns(self, tmp_path):
        jobs = tiny_jobs()
        cache = ResultCache(tmp_path)
        # Valid JSON object, but not a result payload (e.g. a partially
        # migrated entry): must warn, miss, and be healed by the re-run.
        cache.put(jobs[0].config_hash, {"something": "else"})
        with pytest.warns(RuntimeWarning, match="malformed cache entry"):
            outcomes = execute_jobs(jobs[:1], num_workers=1, cache=cache)
        assert outcomes[jobs[0].key].source == "run"
        healed = execute_jobs(jobs[:1], num_workers=1, cache=cache)
        assert healed[jobs[0].key].source == "cache"
        assert healed[jobs[0].key].cell == outcomes[jobs[0].key].cell


class TestBatchGrouping:
    """engine="batch" cells equal modulo threshold share one trajectory."""

    def test_batch_cells_equal_event_cells(self):
        import repro.campaign.executor as executor_module

        batch_jobs = tiny_jobs(base=batch_base())
        event_base = batch_base()
        event_base.engine = "event"
        event_jobs = tiny_jobs(base=event_base)

        grouped = []
        original = executor_module._execute_batch_payload

        def spy(payload):
            grouped.append(sorted(payload["keys"]))
            return original(payload)

        executor_module._execute_batch_payload = spy
        try:
            batched = execute_jobs(batch_jobs, num_workers=1)
        finally:
            executor_module._execute_batch_payload = original
        plain = execute_jobs(event_jobs, num_workers=1)

        if HAVE_NUMPY:
            # One shared run per load level (the two thresholds fold).
            assert len(grouped) == 2
            assert all(len(keys) == 2 for keys in grouped)
        else:
            # Numpy-less hosts fall back to per-cell runs; the results
            # below must still be event-identical.
            assert grouped == []
        for b_job, e_job in zip(batch_jobs, event_jobs):
            assert batched[b_job.key].cell == plain[e_job.key].cell

    def test_batch_pool_matches_serial(self):
        jobs = tiny_jobs(base=batch_base())
        serial = execute_jobs(jobs, num_workers=1)
        pooled = execute_jobs(jobs, num_workers=2)
        for key in serial:
            assert serial[key].cell == pooled[key].cell

    def test_batch_results_cached_per_cell(self, tmp_path):
        jobs = tiny_jobs(base=batch_base())
        cache = ResultCache(tmp_path)
        first = execute_jobs(jobs, num_workers=1, cache=cache)
        assert cache.size() == len(jobs)
        second = execute_jobs(jobs, num_workers=1, cache=cache)
        for key in first:
            assert second[key].source == "cache"
            assert second[key].cell == first[key].cell

    @pytest.mark.skipif(not HAVE_NUMPY, reason="batch backend needs numpy")
    def test_legacy_threshold_payload_still_accepted(self):
        """Pre-mixed-group payloads (thresholds, no per-cell detector
        dicts) still execute and produce the same per-cell stats."""
        import repro.campaign.executor as executor_module

        groups, _ = executor_module._plan_batch_jobs(
            tiny_jobs(base=batch_base())
        )
        payload = executor_module._batch_payload(groups[0])
        legacy = {
            "keys": payload["keys"],
            "config": payload["config"],
            "thresholds": [d["threshold"] for d in payload["detectors"]],
        }
        assert executor_module._execute_batch_payload(legacy)["stats"] == (
            executor_module._execute_batch_payload(payload)["stats"]
        )

    def test_resume_mid_group_entries_byte_identical(self, tmp_path):
        """Grouping is a pure optimization: a ``--resume`` after a
        partial run re-groups the leftover cells (here a group loses a
        member and degrades to a single), and the stored records must
        stay byte-identical to an uninterrupted campaign's."""
        import json

        import repro.campaign.executor as executor_module

        jobs = tiny_jobs(base=batch_base())

        def cell_bytes(cache):
            out = {}
            for job in jobs:
                payload = cache.get(job.config_hash)
                out[job.key] = json.dumps(
                    payload["cell"], sort_keys=True
                ).encode()
            return out

        # Uninterrupted baseline: both groups run whole.
        full_cache = ResultCache(tmp_path / "full")
        execute_jobs(jobs, num_workers=1, cache=full_cache)

        # Interrupted campaign: one member of the first group finishes,
        # then the crash; the resume re-plans around it.
        ck = CampaignCheckpoint(tmp_path / "m.jsonl")
        part_cache = ResultCache(tmp_path / "part")
        execute_jobs(jobs[:1], num_workers=1, cache=part_cache,
                     checkpoint=ck)

        grouped = []
        original = executor_module._execute_batch_payload

        def spy(payload):
            grouped.append(sorted(payload["keys"]))
            return original(payload)

        executor_module._execute_batch_payload = spy
        try:
            resumed = execute_jobs(jobs, num_workers=1, cache=part_cache,
                                   checkpoint=ck, resume=True)
        finally:
            executor_module._execute_batch_payload = original

        # The interrupted group really was re-planned: its surviving
        # member must not be in any batched group this time.
        assert jobs[0].key not in {k for keys in grouped for k in keys}
        assert resumed[jobs[0].key].source == "resume"
        assert cell_bytes(part_cache) == cell_bytes(full_cache)
