"""Tests for the campaign manifest (checkpoint + summary report)."""

from repro.campaign.checkpoint import (
    CampaignCheckpoint,
    render_summary,
    summarize_manifest,
)

HASH_A = "a" * 64
HASH_B = "b" * 64


def record(ck, key="table2/th8/load0/s", config_hash=HASH_A, wall=0.5,
           worker="serial", source="run"):
    ck.record_cell(
        key=key,
        config_hash=config_hash,
        cell={"percentage": 1.0},
        wall_time=wall,
        worker=worker,
        source=source,
    )


class TestCampaignCheckpoint:
    def test_records_survive_reopen(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        ck = CampaignCheckpoint(path)
        ck.start(table_id=2, total=4)
        record(ck)
        reopened = CampaignCheckpoint(path)
        kinds = [r["kind"] for r in reopened.records()]
        assert kinds == ["campaign", "cell"]

    def test_completed_keyed_by_config_hash(self, tmp_path):
        ck = CampaignCheckpoint(tmp_path / "m.jsonl")
        record(ck, config_hash=HASH_A)
        record(ck, key="table2/th32/load0/s", config_hash=HASH_B)
        done = ck.completed()
        assert set(done) == {HASH_A, HASH_B}
        assert done[HASH_A]["key"] == "table2/th8/load0/s"

    def test_latest_record_wins(self, tmp_path):
        ck = CampaignCheckpoint(tmp_path / "m.jsonl")
        record(ck, wall=1.0)
        record(ck, wall=2.0)
        assert ck.completed()[HASH_A]["wall_time"] == 2.0

    def test_corrupt_tail_line_skipped(self, tmp_path):
        path = tmp_path / "m.jsonl"
        ck = CampaignCheckpoint(path)
        record(ck)
        with path.open("a") as handle:
            handle.write('{"kind": "cell", "config_hash": "tru')  # crash cut
        assert len(ck.records()) == 1
        assert set(ck.completed()) == {HASH_A}

    def test_fresh_truncates(self, tmp_path):
        path = tmp_path / "m.jsonl"
        record(CampaignCheckpoint(path))
        fresh = CampaignCheckpoint(path, fresh=True)
        assert fresh.records() == []

    def test_missing_file_is_empty(self, tmp_path):
        ck = CampaignCheckpoint(tmp_path / "nope.jsonl")
        assert ck.records() == []
        assert ck.completed() == {}


class TestSummary:
    def test_summarize_counts_and_telemetry(self, tmp_path):
        path = tmp_path / "m.jsonl"
        ck = CampaignCheckpoint(path)
        ck.start(table_id=2, total=3)
        record(ck, key="table2/th8/load0/s", config_hash=HASH_A,
               wall=0.5, worker="pid10", source="run")
        record(ck, key="table2/th32/load0/s", config_hash=HASH_B,
               wall=1.5, worker="pid11", source="run")
        record(ck, key="table3/th8/load0/s", config_hash="c" * 64,
               wall=0.0, worker="cache", source="cache")
        summary = summarize_manifest(path)
        assert summary.total_cells == 3
        assert summary.campaigns_started == 1
        assert summary.by_source == {"run": 2, "cache": 1}
        assert summary.by_table == {"table2": 2, "table3": 1}
        assert summary.wall_time_total == 2.0
        assert summary.wall_time_max == 1.5
        assert summary.slowest_key == "table2/th32/load0/s"
        assert summary.by_worker["pid10"] == 1

    def test_render_summary(self, tmp_path):
        path = tmp_path / "m.jsonl"
        ck = CampaignCheckpoint(path)
        record(ck, wall=0.25)
        text = render_summary(summarize_manifest(path))
        assert "cells completed" in text
        assert "run=1" in text
        assert "table2=1" in text

    def test_render_empty_manifest(self, tmp_path):
        text = render_summary(summarize_manifest(tmp_path / "none.jsonl"))
        assert "empty" in text
