"""Shared fixtures for the campaign test suite: a tiny 2-threshold grid."""

from __future__ import annotations

import pytest

from repro.experiments.spec import TableSpec, base_config


def tiny_base():
    base = base_config(full=False)
    base.radix = 4
    base.warmup_cycles = 100
    base.measure_cycles = 400
    base.ground_truth_interval = 0
    return base


def tiny_spec(table_id: int = 2, mechanism: str = "ndm") -> TableSpec:
    return TableSpec(
        table_id=table_id,
        title="tiny",
        mechanism=mechanism,
        pattern="uniform",
        sizes=("s",),
        load_fractions=(0.5, 0.7),
        paper_rates=(0.3, 0.4),
        thresholds=(8, 32),
        saturated_loads=(1,),
    )


@pytest.fixture
def base():
    return tiny_base()


@pytest.fixture
def spec():
    return tiny_spec()
