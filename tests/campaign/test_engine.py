"""Tests for the table-level campaign engine (reassembly + orchestration)."""

from repro.campaign.cache import ResultCache
from repro.campaign.checkpoint import CampaignCheckpoint, summarize_manifest
from repro.campaign.engine import run_campaign, run_table_campaign
from repro.experiments.report import render_table, table_to_json
from repro.experiments.runner import run_cell
from tests.campaign.conftest import tiny_base, tiny_spec


class TestRunTableCampaign:
    def test_matches_sequential_cell_by_cell(self):
        spec, base = tiny_spec(), tiny_base()
        result = run_table_campaign(spec, base, saturation=1.0)
        for threshold, load_index, size in spec.cell_coords():
            direct = run_cell(base, spec, threshold, size,
                              result.rates[load_index])
            assert result.cell(threshold, load_index, size) == direct

    def test_pool_render_byte_identical(self):
        spec, base = tiny_spec(), tiny_base()
        serial = run_table_campaign(spec, base, saturation=1.0, num_workers=1)
        pooled = run_table_campaign(spec, base, saturation=1.0, num_workers=2)
        assert render_table(serial) == render_table(pooled)
        assert table_to_json(serial) == table_to_json(pooled)

    def test_cells_in_canonical_insertion_order(self):
        spec = tiny_spec()
        result = run_table_campaign(spec, tiny_base(), saturation=1.0)
        assert tuple(result.cells) == spec.thresholds
        for row in result.cells.values():
            assert list(row) == [(0, "s"), (1, "s")]

    def test_per_cell_seed_policy_changes_results(self):
        spec, base = tiny_spec(), tiny_base()
        base.traffic.injection_rate = 0.5
        shared = run_table_campaign(spec, base, saturation=1.0)
        derived = run_table_campaign(spec, base, saturation=1.0,
                                     seed_policy="per-cell")
        diff = [
            coords for coords in spec.cell_coords()
            if shared.cell(*_rearrange(coords)) != derived.cell(*_rearrange(coords))
        ]
        assert diff  # decorrelated seeds change at least some cells

    def test_checkpoint_records_campaign(self, tmp_path):
        ck = CampaignCheckpoint(tmp_path / "m.jsonl")
        spec = tiny_spec()
        run_table_campaign(spec, tiny_base(), saturation=1.0, checkpoint=ck)
        summary = summarize_manifest(tmp_path / "m.jsonl")
        assert summary.campaigns_started == 1
        assert summary.total_cells == spec.cell_count()


def _rearrange(coords):
    threshold, load_index, size = coords
    return threshold, load_index, size


class TestRunCampaign:
    def test_multiple_tables_share_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [tiny_spec(table_id=2), tiny_spec(table_id=3)]
        results = run_campaign(specs, tiny_base(),
                               saturations={"uniform": 1.0}, cache=cache)
        assert set(results) == {2, 3}
        # identical grids -> table 3 was served entirely from table 2's cells
        assert cache.hits == specs[1].cell_count()
        assert render_table(results[2]).splitlines()[2:] == \
            render_table(results[3]).splitlines()[2:]

    def test_progress_factory_labels_tables(self):
        seen = {}

        def factory(spec):
            def progress(done, total):
                seen.setdefault(spec.table_id, []).append((done, total))
            return progress

        run_campaign([tiny_spec(table_id=2)], tiny_base(),
                     saturations={"uniform": 1.0}, progress_factory=factory)
        assert seen[2][-1] == (4, 4)
