"""Tests for the content-addressed on-disk result cache."""

import pytest

from repro.campaign.cache import ResultCache, default_cache_dir

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestResultCache:
    def test_miss_then_hit(self, cache):
        assert cache.get(KEY) is None
        cache.put(KEY, {"cell": {"percentage": 1.5}})
        assert cache.get(KEY) == {"cell": {"percentage": 1.5}}
        assert cache.hits == 1
        assert cache.misses == 1

    def test_sharded_layout(self, cache):
        path = cache.put(KEY, {"x": 1})
        assert path.parent.name == KEY[:2]
        assert path.name == f"{KEY}.json"

    def test_contains_and_size(self, cache):
        assert KEY not in cache
        cache.put(KEY, {"x": 1})
        cache.put(OTHER, {"x": 2})
        assert KEY in cache
        assert cache.size() == 2
        assert sorted(cache.keys()) == sorted([KEY, OTHER])

    def test_corrupt_entry_is_a_miss(self, cache):
        path = cache.put(KEY, {"x": 1})
        path.write_text("{not json")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert cache.get(KEY) is None
        # and can be overwritten cleanly
        cache.put(KEY, {"x": 2})
        assert cache.get(KEY) == {"x": 2}

    def test_truncated_entry_is_a_miss(self, cache):
        """A killed writer's torn tail must not poison later reads."""
        path = cache.put(KEY, {"cell": {"percentage": 1.5}, "x": 1})
        full = path.read_text()
        path.write_text(full[: len(full) // 2])
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert cache.get(KEY) is None

    def test_wrong_shape_entry_is_a_miss(self, cache):
        path = cache.put(KEY, {"x": 1})
        path.write_text("[1, 2, 3]")  # valid JSON, not an object
        with pytest.warns(RuntimeWarning, match="not an"):
            assert cache.get(KEY) is None

    def test_clear(self, cache):
        cache.put(KEY, {"x": 1})
        cache.put(OTHER, {"x": 2})
        assert cache.clear() == 2
        assert cache.size() == 0

    def test_short_key_rejected(self, cache):
        with pytest.raises(ValueError, match="too short"):
            cache.get("ab")

    def test_missing_root_is_empty(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.size() == 0
        assert list(cache.keys()) == []


class TestDefaultCacheDir:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/elsewhere")
        assert default_cache_dir() == "/tmp/elsewhere"

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir() == ".repro-campaign"
