"""Tests for the statistics container and derived metrics."""

from repro.metrics.stats import SimulationStats
from repro.network.types import DetectionEvent


def make_stats(**overrides) -> SimulationStats:
    stats = SimulationStats(
        cycles_run=6000,
        warmup_cycles=1000,
        measure_cycles=5000,
        num_nodes=64,
    )
    for key, value in overrides.items():
        setattr(stats, key, value)
    return stats


class TestDetectionPercentage:
    def test_zero_when_nothing_injected(self):
        assert make_stats().detection_percentage() == 0.0

    def test_counts_unique_messages(self):
        stats = make_stats(
            injected_measured=1000,
            detections_measured=30,
            messages_detected_measured=10,
        )
        assert stats.detection_percentage() == 1.0

    def test_false_detection_percentage_filters_warmup(self):
        stats = make_stats(injected_measured=100)
        stats.detection_events = [
            DetectionEvent(500, 1, 0, "ndm", truly_deadlocked=False),   # warmup
            DetectionEvent(2000, 2, 0, "ndm", truly_deadlocked=False),  # counted
            DetectionEvent(2500, 3, 0, "ndm", truly_deadlocked=True),   # true
        ]
        assert stats.false_detection_percentage() == 1.0


class TestThroughputAndLatency:
    def test_throughput_flits_per_cycle_per_node(self):
        stats = make_stats(flits_delivered_measured=64 * 5000 // 2)
        assert stats.throughput() == 0.5

    def test_throughput_zero_without_window(self):
        stats = SimulationStats()
        assert stats.throughput() == 0.0

    def test_average_latency(self):
        stats = make_stats(latency_sum=1000, latency_count=10)
        assert stats.average_latency() == 100.0

    def test_average_latency_none_without_samples(self):
        assert make_stats().average_latency() is None

    def test_network_latency(self):
        stats = make_stats(network_latency_sum=500, latency_count=10)
        assert stats.average_network_latency() == 50.0


class TestDeadlockIndicators:
    def test_had_true_deadlock_from_detection(self):
        assert make_stats(true_detections=1).had_true_deadlock()

    def test_had_true_deadlock_from_sweep(self):
        assert make_stats(truth_sweeps_with_deadlock=2).had_true_deadlock()

    def test_no_deadlock_by_default(self):
        assert not make_stats().had_true_deadlock()


class TestSummary:
    def test_summary_mentions_key_numbers(self):
        stats = make_stats(
            injected_measured=123,
            delivered_measured=120,
            messages_detected_measured=2,
            detections_measured=2,
            injected=200,
            delivered=195,
        )
        text = stats.summary()
        assert "123" in text
        assert "throughput" in text
        assert "detections" in text

    def test_summary_handles_empty_run(self):
        assert "n/a" in SimulationStats().summary()


class TestSerialization:
    def full_stats(self) -> SimulationStats:
        stats = make_stats(
            injected_measured=1000,
            flits_delivered_measured=5678,
            messages_detected_measured=10,
            detections_measured=30,
            true_detections=3,
            false_detections=7,
            latency_sum=12345,
            latency_count=100,
        )
        stats.detection_events.append(
            DetectionEvent(cycle=1200, message_id=42, node=7,
                           mechanism="ndm", truly_deadlocked=True)
        )
        stats.detection_events.append(
            DetectionEvent(cycle=1300, message_id=43, node=8,
                           mechanism="ndm", truly_deadlocked=None)
        )
        return stats

    def test_round_trip_exact(self):
        stats = self.full_stats()
        rebuilt = SimulationStats.from_dict(stats.to_dict())
        assert rebuilt == stats

    def test_round_trip_through_json(self):
        import json

        stats = self.full_stats()
        wire = json.loads(json.dumps(stats.to_dict()))
        rebuilt = SimulationStats.from_dict(wire)
        assert rebuilt == stats
        assert rebuilt.detection_events[0].truly_deadlocked is True
        assert rebuilt.detection_events[1].truly_deadlocked is None

    def test_lean_form_drops_events_only(self):
        stats = self.full_stats()
        lean = stats.to_dict(include_events=False)
        assert "detection_events" not in lean
        rebuilt = SimulationStats.from_dict(lean)
        assert rebuilt.detection_events == []
        # every derived metric the tables need survives the lean trip
        assert rebuilt.detection_percentage() == stats.detection_percentage()
        assert rebuilt.throughput() == stats.throughput()
        assert rebuilt.had_true_deadlock() == stats.had_true_deadlock()
        assert rebuilt.average_latency() == stats.average_latency()

    def test_payload_is_json_serializable(self):
        import json

        json.dumps(self.full_stats().to_dict())  # must not raise
