"""Tests for windowed time-series collection."""

import pytest

from repro.metrics.timeseries import TimeSeriesCollector, WindowSample
from repro.network.simulator import Simulator
from tests.conftest import small_config


def run_with_collector(rate=0.3, cycles=600, window=100):
    config = small_config()
    config.traffic.injection_rate = rate
    sim = Simulator(config)
    collector = TimeSeriesCollector(window=window)
    for _ in range(cycles):
        sim.step()
        collector.maybe_sample(sim)
    return sim, collector


class TestSampling:
    def test_window_alignment(self):
        _, collector = run_with_collector(cycles=600, window=100)
        assert len(collector.samples) == 6
        for sample in collector.samples:
            assert sample.cycles == 100

    def test_no_sample_before_window(self):
        config = small_config()
        sim = Simulator(config)
        collector = TimeSeriesCollector(window=100)
        for _ in range(50):
            sim.step()
            assert not collector.maybe_sample(sim)
        assert collector.samples == []

    def test_manual_sample_any_time(self):
        config = small_config()
        sim = Simulator(config)
        for _ in range(17):
            sim.step()
        sample = TimeSeriesCollector(window=1000).sample(sim)
        assert sample.end_cycle == 17

    def test_deltas_sum_to_totals(self):
        sim, collector = run_with_collector(cycles=600, window=100)
        collector.sample(sim)  # flush the partial tail window
        assert sum(s.delivered for s in collector.samples) == sim.stats.delivered
        assert sum(s.injected for s in collector.samples) == sim.stats.injected


class TestSeries:
    def test_throughput_series_positive_under_load(self):
        sim, collector = run_with_collector(rate=0.3)
        series = collector.throughput_series(sim.topology.num_nodes)
        assert len(series) == len(collector.samples)
        assert max(series) > 0.1

    def test_steady_state_throughput_near_offered(self):
        sim, collector = run_with_collector(rate=0.3, cycles=1200)
        steady = collector.steady_state_throughput(sim.topology.num_nodes)
        assert steady == pytest.approx(0.3, rel=0.35)

    def test_occupancy_series_tracks_messages(self):
        _, collector = run_with_collector(rate=0.3)
        assert any(v > 0 for v in collector.occupancy_series())

    def test_peak_blocked_zero_when_idle(self):
        _, collector = run_with_collector(rate=0.0)
        assert collector.peak_blocked() == 0

    def test_empty_collector_defaults(self):
        collector = TimeSeriesCollector()
        assert collector.peak_blocked() == 0
        assert collector.steady_state_throughput(16) == 0.0


class TestWindowSample:
    def test_throughput_computation(self):
        sample = WindowSample(
            start_cycle=0, end_cycle=100, injected=5, delivered=5,
            flits_delivered=800, detections=0, recoveries=0,
            blocked_headers=0, in_network=3,
        )
        assert sample.throughput(16) == pytest.approx(0.5)

    def test_zero_cycle_window_safe(self):
        sample = WindowSample(0, 0, 0, 0, 0, 0, 0, 0, 0)
        assert sample.throughput(16) == 0.0
