"""Integration tests for the table entry points (tiny monkeypatched grids)."""

import pytest

from repro.experiments import tables as tables_module
from repro.experiments.spec import TableSpec


def tiny_specs():
    return {
        1: TableSpec(
            table_id=1, title="tiny pdm", mechanism="pdm", pattern="uniform",
            sizes=("s",), load_fractions=(0.6,), paper_rates=(0.4,),
            thresholds=(8,), saturated_loads=(0,),
        ),
        2: TableSpec(
            table_id=2, title="tiny ndm", mechanism="ndm", pattern="uniform",
            sizes=("s",), load_fractions=(0.6,), paper_rates=(0.4,),
            thresholds=(8,), saturated_loads=(0,),
        ),
    }


@pytest.fixture
def tiny_harness(monkeypatch):
    from repro.experiments import spec as spec_module

    monkeypatch.setattr(spec_module, "TABLE_SPECS", tiny_specs())
    monkeypatch.setattr(tables_module, "TABLE_SPECS", tiny_specs())
    monkeypatch.setattr(
        tables_module, "quick_spec", lambda spec: spec
    )

    def tiny_base(full=None):
        from tests.conftest import small_config

        config = small_config()
        config.warmup_cycles = 100
        config.measure_cycles = 400
        return config

    monkeypatch.setattr(tables_module, "base_config", tiny_base)
    return tiny_base


class TestRegenerate:
    def test_regenerate_table(self, tiny_harness):
        result = tables_module.regenerate_table(2, saturation=1.0)
        assert set(result.cells) == {8}
        cell = result.cell(8, 0, "s")
        assert cell.injected > 0

    def test_regenerate_all(self, tiny_harness):
        results = tables_module.regenerate_all(table_ids=(1, 2))
        assert sorted(results) == [1, 2]
        assert results[1].spec.mechanism == "pdm"
        assert results[2].spec.mechanism == "ndm"

    def test_save_and_reload_json(self, tiny_harness, tmp_path):
        import json

        result = tables_module.regenerate_table(2, saturation=1.0)
        tables_module.save_result(result, str(tmp_path))
        payload = json.loads((tmp_path / "table2.json").read_text())
        assert payload["mechanism"] == "ndm"
        assert payload["cells"]["8"]["0:s"]["injected"] > 0

    def test_seed_changes_cells(self, tiny_harness):
        a = tables_module.regenerate_table(2, seed=1, saturation=1.0)
        b = tables_module.regenerate_table(2, seed=2, saturation=1.0)
        ca = a.cell(8, 0, "s")
        cb = b.cell(8, 0, "s")
        assert (ca.injected, ca.throughput) != (cb.injected, cb.throughput)

    def test_default_out_dir_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", "/tmp/custom-results")
        assert tables_module.default_out_dir() == "/tmp/custom-results"
