"""Integrity checks on the transcribed paper data.

These tests validate the *published* numbers we compare against — shape
properties the paper itself claims, which our transcription must satisfy.
"""


from repro.experiments.paper_data import (
    PAPER_TABLES,
    paper_ratio_pdm_over_ndm,
    paper_value,
)
from repro.experiments.spec import TABLE_SPECS


class TestTranscriptionIntegrity:
    def test_all_tables_present(self):
        assert sorted(PAPER_TABLES) == [1, 2, 3, 4, 5, 6, 7]

    def test_row_widths_match_sizes(self):
        for table in PAPER_TABLES.values():
            n_sizes = len(table["sizes"])
            n_loads = len(table["rates"])
            for threshold, row in table["rows"].items():
                assert len(row) == n_loads, threshold
                for load in row:
                    assert len(load) == n_sizes

    def test_thresholds_match_specs(self):
        for tid, table in PAPER_TABLES.items():
            assert tuple(sorted(table["rows"])) == TABLE_SPECS[tid].thresholds

    def test_rates_match_specs(self):
        for tid, table in PAPER_TABLES.items():
            assert table["rates"] == TABLE_SPECS[tid].paper_rates

    def test_values_are_percentages(self):
        for table in PAPER_TABLES.values():
            for row in table["rows"].values():
                for load in row:
                    for value in load:
                        assert 0.0 <= value <= 100.0

    def test_stars_reference_valid_columns(self):
        for table in PAPER_TABLES.values():
            for load_index, size in table["stars"]:
                assert 0 <= load_index < len(table["rates"])
                assert size in table["sizes"]


class TestPaperClaims:
    """Shape claims the paper derives from its own tables."""

    def test_detection_decreases_with_threshold(self):
        """Within any column, larger thresholds detect (weakly) less."""
        for tid, table in PAPER_TABLES.items():
            thresholds = sorted(table["rows"])
            for load_index in range(len(table["rates"])):
                for size_index in range(len(table["sizes"])):
                    values = [
                        table["rows"][t][load_index][size_index]
                        for t in thresholds
                    ]
                    # Allow tiny non-monotonic jitter (measurement noise in
                    # the published numbers themselves).
                    for a, b in zip(values, values[1:]):
                        assert b <= a + 0.5, (tid, load_index, size_index)

    def test_detection_increases_with_load(self):
        """At fixed threshold, saturated loads detect the most."""
        for tid, table in PAPER_TABLES.items():
            row = table["rows"][2]  # the most sensitive threshold
            for size_index in range(len(table["sizes"])):
                first = row[0][size_index]
                last = row[-1][size_index]
                assert last >= first, (tid, size_index)

    def test_ndm_beats_pdm_on_uniform(self):
        """Table 2 <= Table 1 almost everywhere (the headline claim)."""
        wins = ties = losses = 0
        for threshold in PAPER_TABLES[1]["rows"]:
            for load_index in range(4):
                for size in PAPER_TABLES[1]["sizes"]:
                    pdm = paper_value(1, threshold, load_index, size)
                    ndm = paper_value(2, threshold, load_index, size)
                    if ndm < pdm:
                        wins += 1
                    elif ndm == pdm:
                        ties += 1
                    else:
                        losses += 1
        assert losses == 0
        assert wins > 100

    def test_average_reduction_about_10x(self):
        """The paper: 'this number is reduced on average by a factor of 10'."""
        ratios = []
        for threshold in PAPER_TABLES[1]["rows"]:
            for load_index in range(4):
                for size in PAPER_TABLES[1]["sizes"]:
                    ratio = paper_ratio_pdm_over_ndm(threshold, load_index, size)
                    if ratio not in (float("inf"), 1.0):
                        ratios.append(ratio)
        mean = sum(ratios) / len(ratios)
        assert mean > 5.0

    def test_th32_worst_case_below_paper_bound(self):
        """Paper Sec. 4.2: Th 32 keeps saturated false detection < 0.16%
        of messages for all patterns except hot-spot (0.26%)."""
        for tid in range(2, 7):
            table = PAPER_TABLES[tid]
            row = table["rows"][32]
            saturated = row[-1]
            for value in saturated:
                assert value <= 1.05  # locality/butterfly sl column ~1.03

    def test_hotspot_th32_bound(self):
        row = PAPER_TABLES[7]["rows"][32][-1]
        assert max(row) <= 0.35

    def test_pdm_threshold_grows_with_length(self):
        """Table 1: L-messages need far larger thresholds than s-messages
        to reach zero detections (the PDM length dependence)."""

        def smallest_zero_threshold(size):
            for threshold in sorted(PAPER_TABLES[1]["rows"]):
                if paper_value(1, threshold, 0, size) == 0.0:
                    return threshold
            return 2048

        assert smallest_zero_threshold("L") > smallest_zero_threshold("s")

    def test_ndm_threshold_length_insensitive(self):
        """Table 2 at the lowest load: every size is clean by Th 8."""
        for size in PAPER_TABLES[2]["sizes"]:
            assert paper_value(2, 8, 0, size) == 0.0

    def test_stars_only_in_saturated_columns(self):
        for table in PAPER_TABLES.values():
            for load_index, _ in table["stars"]:
                assert load_index == len(table["rates"]) - 1
