"""Tests for table rendering and serialization."""

import json

from repro.experiments.report import (
    render_comparison,
    render_table,
    table_to_json,
)
from repro.experiments.runner import CellResult, TableResult
from repro.experiments.spec import TABLE_SPECS, TableSpec, quick_spec


def make_result() -> TableResult:
    spec = TableSpec(
        table_id=2,
        title="demo",
        mechanism="ndm",
        pattern="uniform",
        sizes=("s", "l"),
        load_fractions=(0.785, 1.0),
        paper_rates=(0.471, 0.600),
        thresholds=(8, 32),
        saturated_loads=(1,),
    )
    result = TableResult(spec=spec, rates=(0.52, 0.66))
    value = 0.0
    for threshold in spec.thresholds:
        row = {}
        for load_index in range(2):
            for size in spec.sizes:
                value += 0.111
                row[(load_index, size)] = CellResult(
                    percentage=value, detections=int(value * 10),
                    messages_detected=int(value * 10),
                    true_detections=0, false_detections=int(value * 10),
                    injected=1000, throughput=0.5, injection_rate=0.5,
                    had_true_deadlock=(threshold == 32 and size == "l"),
                )
        result.cells[threshold] = row
    return result


class TestRenderTable:
    def test_contains_threshold_rows(self):
        text = render_table(make_result())
        assert "Th 8" in text
        assert "Th 32" in text

    def test_marks_saturated_load(self):
        assert "(sat)" in render_table(make_result())

    def test_star_annotation_present(self):
        text = render_table(make_result())
        assert "*" in text

    def test_custom_title(self):
        assert render_table(make_result(), title="XYZ").startswith("XYZ")

    def test_all_cells_rendered(self):
        result = make_result()
        text = render_table(result)
        for row in result.cells.values():
            for cell in row.values():
                assert f"{cell.percentage:.3f}" in text


class TestRenderComparison:
    def test_shows_ours_and_paper(self):
        text = render_comparison(make_result())
        assert "/" in text
        # Paper Table 2 value at Th 8, load 0.471 (mapped), size s: 0.000.
        assert "0.000" in text

    def test_quick_grid_load_mapping(self):
        # The quick grid keeps the paper's 2nd and last loads.
        result = make_result()
        text = render_comparison(result)
        assert "comparison" in text


class TestTableToJson:
    def test_round_trips(self):
        payload = json.loads(table_to_json(make_result()))
        assert payload["table_id"] == 2
        assert payload["mechanism"] == "ndm"
        assert "8" in payload["cells"]
        cell = payload["cells"]["8"]["0:s"]
        assert set(cell) >= {"percentage", "true", "false", "throughput"}

    def test_quick_specs_render_for_all_tables(self):
        # Smoke: building the quick spec and rendering headers never fails.
        for tid, spec in TABLE_SPECS.items():
            quick = quick_spec(spec)
            result = TableResult(spec=quick, rates=(0.1, 0.2))
            result.cells = {
                t: {
                    (i, s): CellResult(0.0, 0, 0, 0, 0, 1, 0.1, 0.1, False)
                    for i in range(2)
                    for s in quick.sizes
                }
                for t in quick.thresholds
            }
            assert f"Table {tid}" in render_table(result)
