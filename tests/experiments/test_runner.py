"""Tests for the experiment runner (tiny grids only)."""

import pytest

from repro.experiments.runner import (
    CellResult,
    build_cell_config,
    run_cell,
    run_table,
    saturation_rate,
)
from repro.experiments.spec import TABLE_SPECS, TableSpec, base_config


def tiny_base():
    base = base_config(full=False)
    base.radix = 4
    base.warmup_cycles = 100
    base.measure_cycles = 400
    base.ground_truth_interval = 0
    base.detector.t1 = 1
    return base


def tiny_spec(mechanism="ndm") -> TableSpec:
    return TableSpec(
        table_id=2,
        title="tiny",
        mechanism=mechanism,
        pattern="uniform",
        sizes=("s",),
        load_fractions=(0.5,),
        paper_rates=(0.3,),
        thresholds=(8, 32),
        saturated_loads=(0,),
    )


class TestBuildCellConfig:
    def test_fields_propagated(self):
        config = build_cell_config(tiny_base(), tiny_spec("pdm"), 64, "l", 0.25)
        assert config.detector.mechanism == "pdm"
        assert config.detector.threshold == 64
        assert config.traffic.lengths == "l"
        assert config.traffic.injection_rate == 0.25

    def test_base_not_mutated(self):
        base = tiny_base()
        build_cell_config(base, tiny_spec(), 64, "l", 0.25)
        assert base.detector.threshold != 64
        assert base.traffic.injection_rate != 0.25


class TestRunCell:
    def test_cell_result_fields(self):
        cell = run_cell(tiny_base(), tiny_spec(), 32, "s", 0.3)
        assert isinstance(cell, CellResult)
        assert cell.injected > 0
        assert cell.throughput > 0
        assert 0.0 <= cell.percentage <= 100.0

    def test_star_label(self):
        cell = CellResult(
            percentage=1.234, detections=5, messages_detected=4,
            true_detections=1, false_detections=4, injected=100,
            throughput=0.5, injection_rate=0.4, had_true_deadlock=True,
        )
        assert cell.label() == "1.234*"

    def test_plain_label(self):
        cell = CellResult(
            percentage=0.0, detections=0, messages_detected=0,
            true_detections=0, false_detections=0, injected=10,
            throughput=0.1, injection_rate=0.1, had_true_deadlock=False,
        )
        assert cell.label() == "0.000"


class TestRunTable:
    def test_grid_complete(self):
        result = run_table(tiny_spec(), tiny_base(), saturation=1.0)
        assert set(result.cells) == {8, 32}
        for row in result.cells.values():
            assert set(row) == {(0, "s")}

    def test_rates_scaled_by_saturation(self):
        result = run_table(tiny_spec(), tiny_base(), saturation=1.0)
        assert result.rates == (0.5,)

    def test_progress_callback(self):
        seen = []
        run_table(
            tiny_spec(), tiny_base(), saturation=1.0,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen[-1] == (2, 2)
        assert len(seen) == 2


class TestSaturationRate:
    def test_calibrated_value_used(self):
        rate = saturation_rate(base_config(full=False), TABLE_SPECS[2])
        assert rate == pytest.approx(0.738)

    def test_override_dict_wins(self):
        rate = saturation_rate(
            base_config(full=False), TABLE_SPECS[2], measured={"uniform": 0.42}
        )
        assert rate == 0.42
