"""Tests for the experiment specifications."""

import pytest

from repro.experiments.spec import (
    CALIBRATED_SATURATION_FULL,
    CALIBRATED_SATURATION_QUICK,
    PAPER_THRESHOLDS,
    TABLE_SPECS,
    base_config,
    calibrated_saturation,
    quick_spec,
)


class TestTableSpecs:
    def test_paper_tables_plus_probe_extension_defined(self):
        assert sorted(TABLE_SPECS) == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_table8_is_probe_uniform_extension(self):
        assert TABLE_SPECS[8].mechanism == "probe"
        assert TABLE_SPECS[8].pattern == "uniform"

    def test_table1_is_pdm_uniform(self):
        assert TABLE_SPECS[1].mechanism == "pdm"
        assert TABLE_SPECS[1].pattern == "uniform"

    def test_tables_2_to_7_are_ndm(self):
        for tid in range(2, 8):
            assert TABLE_SPECS[tid].mechanism == "ndm"

    def test_patterns_match_paper(self):
        assert TABLE_SPECS[3].pattern == "locality"
        assert TABLE_SPECS[4].pattern == "bit-reversal"
        assert TABLE_SPECS[5].pattern == "perfect-shuffle"
        assert TABLE_SPECS[6].pattern == "butterfly"
        assert TABLE_SPECS[7].pattern == "hot-spot"

    def test_uniform_tables_have_four_sizes(self):
        assert TABLE_SPECS[1].sizes == ("s", "l", "L", "sl")
        assert TABLE_SPECS[2].sizes == ("s", "l", "L", "sl")

    def test_other_tables_have_three_sizes(self):
        for tid in range(3, 8):
            assert TABLE_SPECS[tid].sizes == ("s", "l", "sl")

    def test_load_fractions_increasing_to_saturation(self):
        for spec in TABLE_SPECS.values():
            fractions = spec.load_fractions
            assert all(a < b for a, b in zip(fractions, fractions[1:]))
            assert fractions[-1] >= 1.0

    def test_paper_rates_recorded(self):
        assert TABLE_SPECS[2].paper_rates == (0.428, 0.471, 0.514, 0.600)
        assert TABLE_SPECS[7].paper_rates == (0.0628, 0.0707, 0.0786, 0.0862)

    def test_thresholds_are_powers_of_two(self):
        for spec in TABLE_SPECS.values():
            for threshold in spec.thresholds:
                assert threshold & (threshold - 1) == 0

    def test_paper_thresholds_span_2_to_1024(self):
        assert PAPER_THRESHOLDS[0] == 2
        assert PAPER_THRESHOLDS[-1] == 1024


class TestQuickSpec:
    def test_quick_grid_is_smaller(self):
        full = TABLE_SPECS[2]
        quick = quick_spec(full)
        assert len(quick.thresholds) < len(full.thresholds)
        assert len(quick.load_fractions) == 2
        assert set(quick.sizes) <= set(full.sizes) | {"sl"}

    def test_quick_keeps_saturated_load(self):
        quick = quick_spec(TABLE_SPECS[2])
        assert quick.load_fractions[-1] == TABLE_SPECS[2].load_fractions[-1]

    def test_quick_hotspot_scales_fraction(self):
        quick = quick_spec(TABLE_SPECS[7])
        assert quick.pattern_params["fraction"] == pytest.approx(0.4)
        # The full-scale spec keeps the paper's 5%.
        assert TABLE_SPECS[7].pattern_params["fraction"] == pytest.approx(0.05)


class TestBaseConfig:
    def test_quick_base_is_64_nodes(self):
        assert base_config(full=False).build_topology().num_nodes == 64

    def test_full_base_is_512_nodes(self):
        assert base_config(full=True).build_topology().num_nodes == 512

    def test_full_base_longer_windows(self):
        assert (
            base_config(full=True).measure_cycles
            > base_config(full=False).measure_cycles
        )


class TestCalibration:
    def test_all_patterns_calibrated(self):
        patterns = {spec.pattern for spec in TABLE_SPECS.values()}
        assert patterns <= set(CALIBRATED_SATURATION_QUICK)
        assert patterns <= set(CALIBRATED_SATURATION_FULL)

    def test_calibrated_saturation_selects_mode(self):
        assert calibrated_saturation(full=False) == CALIBRATED_SATURATION_QUICK
        assert calibrated_saturation(full=True) == CALIBRATED_SATURATION_FULL

    def test_locality_saturates_much_higher_than_uniform(self):
        # The paper's locality loads run ~3x the uniform ones.
        for table in (CALIBRATED_SATURATION_QUICK, CALIBRATED_SATURATION_FULL):
            assert table["locality"] > 2 * table["uniform"]

    def test_hotspot_saturates_lowest(self):
        for table in (CALIBRATED_SATURATION_QUICK, CALIBRATED_SATURATION_FULL):
            assert table["hot-spot"] == min(table.values())
