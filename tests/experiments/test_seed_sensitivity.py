"""Seed sensitivity: the reproduction's shapes must not be seed artifacts."""


from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator


def run_cell(seed: int, mechanism: str = "ndm", threshold: int = 8,
             rate: float = 0.5) -> float:
    config = SimulationConfig(
        radix=4, dimensions=2, warmup_cycles=200, measure_cycles=1200,
        seed=seed,
    )
    config.traffic.injection_rate = rate
    config.detector.mechanism = mechanism
    config.detector.threshold = threshold
    return Simulator(config).run().detection_percentage()


SEEDS = (3, 17, 91)


class TestSeedSensitivity:
    def test_throughput_stable_across_seeds(self):
        values = []
        for seed in SEEDS:
            config = SimulationConfig(
                radix=4, dimensions=2, warmup_cycles=200,
                measure_cycles=1200, seed=seed,
            )
            config.traffic.injection_rate = 0.4
            values.append(Simulator(config).run().throughput())
        mean = sum(values) / len(values)
        assert all(abs(v - mean) < 0.1 * mean + 0.02 for v in values)

    def test_threshold_decay_holds_for_every_seed(self):
        """The core table shape (decay with threshold) is seed-robust."""
        for seed in SEEDS:
            low = run_cell(seed, threshold=4, rate=0.8)
            high = run_cell(seed, threshold=64, rate=0.8)
            assert high <= low + 0.5, (seed, low, high)

    def test_load_growth_holds_for_every_seed(self):
        for seed in SEEDS:
            below = run_cell(seed, threshold=4, rate=0.4)
            saturated = run_cell(seed, threshold=4, rate=1.0)
            assert saturated >= below - 0.3, (seed, below, saturated)

    def test_crude_timeout_dominates_for_every_seed(self):
        for seed in SEEDS:
            ndm = run_cell(seed, "ndm", threshold=16, rate=1.0)
            crude = run_cell(seed, "timeout", threshold=16, rate=1.0)
            assert crude >= ndm * 0.8, (seed, ndm, crude)
