"""Tests for the latency/throughput load-sweep experiment."""

import pytest

from repro.experiments.latency import LoadSweep, default_rates, sweep_load
from tests.conftest import small_config


@pytest.fixture(scope="module")
def sweep() -> LoadSweep:
    base = small_config()
    base.warmup_cycles = 200
    base.measure_cycles = 900
    return sweep_load(base, rates=[0.1, 0.4, 0.8, 1.2, 1.6], seed=5)


class TestSweepLoad:
    def test_one_point_per_rate(self, sweep):
        assert [p.offered for p in sweep.points] == [0.1, 0.4, 0.8, 1.2, 1.6]

    def test_throughput_monotone_then_flat(self, sweep):
        thr = [p.throughput for p in sweep.points]
        assert thr[1] > thr[0]
        assert max(thr) <= 2.0  # physical bound of the 4-ary 2-cube

    def test_latency_grows_with_load(self, sweep):
        lats = [p.avg_latency for p in sweep.points if p.avg_latency]
        assert lats[-1] > lats[0]

    def test_network_latency_below_total(self, sweep):
        for p in sweep.points:
            if p.avg_latency is not None and p.avg_network_latency is not None:
                assert p.avg_network_latency <= p.avg_latency + 1e-9


class TestLoadSweepAnalysis:
    def test_knee_detected(self, sweep):
        knee = sweep.knee(factor=2.0)
        assert knee is not None
        assert knee.offered >= 0.4

    def test_knee_none_when_flat(self):
        base = small_config()
        base.warmup_cycles = 100
        base.measure_cycles = 400
        flat = sweep_load(base, rates=[0.05, 0.08], seed=5)
        assert flat.knee(factor=5.0) is None

    def test_peak_throughput(self, sweep):
        assert sweep.peak_throughput() == max(p.throughput for p in sweep.points)

    def test_rows_render(self, sweep):
        rows = sweep.rows()
        assert len(rows) == len(sweep.points) + 1
        assert "offered" in rows[0]
        assert "0.100" in rows[1]

    def test_empty_sweep(self):
        empty = LoadSweep(points=[])
        assert empty.peak_throughput() == 0.0
        assert empty.knee() is None


class TestDefaultRates:
    def test_span_and_count(self):
        rates = default_rates(saturation=1.0, steps=8)
        assert len(rates) == 8
        assert rates[0] == pytest.approx(0.2)
        assert rates[-1] == pytest.approx(1.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            default_rates(saturation=0.0)
        with pytest.raises(ValueError):
            default_rates(saturation=1.0, steps=1)
