"""Tests for the detection-latency experiment."""

import pytest

from repro.experiments.detection_latency import (
    latency_sweep,
    measure_detection_latency,
    render_latency_table,
)


@pytest.fixture(scope="module")
def ndm_point():
    return measure_detection_latency("ndm", threshold=16)


class TestSinglePoint:
    def test_deadlock_forms_and_is_detected(self, ndm_point):
        assert ndm_point.formation_cycle is not None
        assert ndm_point.detected
        assert ndm_point.latency is not None

    def test_latency_at_least_threshold(self, ndm_point):
        # Detection needs t2 cycles of silence after the cycle closes.
        assert ndm_point.latency >= 0

    def test_ndm_marks_single_message(self, ndm_point):
        assert ndm_point.messages_marked == 1

    def test_pdm_marks_many(self):
        point = measure_detection_latency("pdm", threshold=16)
        assert point.detected
        assert point.messages_marked >= 3

    def test_latency_grows_with_threshold(self):
        fast = measure_detection_latency("ndm", threshold=8)
        slow = measure_detection_latency("ndm", threshold=128)
        assert fast.detected and slow.detected
        assert slow.latency > fast.latency + 60

    def test_undetected_when_detector_none(self):
        point = measure_detection_latency("none", threshold=16, deadline=400)
        assert point.formation_cycle is not None
        assert not point.detected
        assert point.latency is None


class TestSweepAndRendering:
    @pytest.fixture(scope="class")
    def sweep(self):
        return latency_sweep(
            mechanisms=("ndm", "timeout"), thresholds=(8, 64), deadline=1500
        )

    def test_grid_size(self, sweep):
        assert len(sweep) == 4

    def test_all_detected(self, sweep):
        assert all(p.detected for p in sweep)

    def test_render_table(self, sweep):
        text = render_latency_table(sweep)
        assert "mechanism" in text
        assert "ndm" in text
        assert text.count("\n") == len(sweep)

    def test_render_handles_missing(self):
        point = measure_detection_latency("none", threshold=8, deadline=300)
        text = render_latency_table([point])
        assert "-" in text
