"""Tests for the command-line interface (monkeypatched to tiny runs)."""

import pytest

from repro.experiments import cli, tables
from repro.experiments.runner import CellResult, TableResult
from repro.experiments.spec import TABLE_SPECS, quick_spec


def fake_result(table_id: int) -> TableResult:
    spec = quick_spec(TABLE_SPECS[table_id])
    result = TableResult(spec=spec, rates=tuple(0.1 * (i + 1) for i in
                                                range(len(spec.load_fractions))))
    result.cells = {
        t: {
            (i, s): CellResult(0.123, 1, 1, 0, 1, 100, 0.4, 0.4, False)
            for i in range(len(result.rates))
            for s in spec.sizes
        }
        for t in spec.thresholds
    }
    return result


@pytest.fixture
def patched(monkeypatch):
    calls = []

    def fake_regenerate(table_id, full=None, seed=7, saturation=None,
                        progress=None):
        calls.append(table_id)
        if progress:
            progress(1, 1)
        return fake_result(table_id)

    monkeypatch.setattr(cli, "regenerate_table", fake_regenerate)
    return calls


class TestCLI:
    def test_list_command(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 7" in out

    def test_table_command(self, patched, capsys):
        assert cli.main(["table", "2"]) == 0
        assert patched == [2]
        assert "Th" in capsys.readouterr().out

    def test_table_with_out_dir(self, patched, tmp_path, capsys):
        assert cli.main(["table", "3", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table3.txt").exists()
        assert (tmp_path / "table3.json").exists()

    def test_compare_command(self, patched, capsys):
        assert cli.main(["compare", "1"]) == 0
        assert "/" in capsys.readouterr().out

    def test_all_command(self, patched, capsys):
        assert cli.main(["all"]) == 0
        assert sorted(patched) == [1, 2, 3, 4, 5, 6, 7]

    def test_invalid_table_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["table", "9"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.main([])


class TestSaveResult:
    def test_save_writes_txt_and_json(self, tmp_path):
        path = tables.save_result(fake_result(2), str(tmp_path))
        assert path.read_text().startswith("Table 2")
        assert (tmp_path / "table2.json").exists()


class TestTableSpecLookup:
    def test_bad_table_id(self):
        with pytest.raises(ValueError, match="no such table"):
            tables.table_spec(0)

    def test_quick_vs_full(self):
        quick = tables.table_spec(2, full=False)
        full = tables.table_spec(2, full=True)
        assert len(quick.thresholds) < len(full.thresholds)


class TestFiguresCommand:
    def test_figures_replays_paper_outcomes(self, capsys):
        assert cli.main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "figure 2: NDM detections = none" in out
        assert "figure 3: NDM detections = ['B']" in out
        assert "figure 5: detections = ['B', 'C']" in out
        assert "simultaneous blocking" in out


class TestLatencyCommand:
    def test_latency_sweep_prints_curve(self, capsys, monkeypatch):
        from repro.experiments import cli as cli_module

        # Shrink the sweep: tiny base config, few steps.
        from repro.experiments import spec as spec_module

        def tiny_base(full=None):
            from tests.conftest import small_config

            config = small_config()
            config.warmup_cycles = 100
            config.measure_cycles = 400
            return config

        monkeypatch.setattr(cli_module, "base_config", tiny_base)
        monkeypatch.setattr(
            "repro.experiments.runner.calibrated_saturation",
            lambda full=None: {"uniform": 1.0},
        )
        assert cli.main(["latency", "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert "offered" in out
        assert "accepted" in out
