"""Tests for the command-line interface (monkeypatched to tiny runs)."""

import pytest

from repro.experiments import cli, tables
from repro.experiments.runner import CellResult, TableResult
from repro.experiments.spec import TABLE_SPECS, quick_spec


def fake_result(table_id: int) -> TableResult:
    spec = quick_spec(TABLE_SPECS[table_id])
    result = TableResult(spec=spec, rates=tuple(0.1 * (i + 1) for i in
                                                range(len(spec.load_fractions))))
    result.cells = {
        t: {
            (i, s): CellResult(0.123, 1, 1, 0, 1, 100, 0.4, 0.4, False)
            for i in range(len(result.rates))
            for s in spec.sizes
        }
        for t in spec.thresholds
    }
    return result


@pytest.fixture
def patched(monkeypatch):
    calls = []

    def fake_regenerate(table_id, full=None, seed=7, saturation=None,
                        progress=None, **campaign_kwargs):
        calls.append(table_id)
        if progress:
            progress(1, 1)
        return fake_result(table_id)

    monkeypatch.setattr(cli, "regenerate_table", fake_regenerate)
    return calls


class TestCLI:
    def test_list_command(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 7" in out
        assert "Table 8" in out

    def test_table_command(self, patched, capsys):
        assert cli.main(["table", "2"]) == 0
        assert patched == [2]
        assert "Th" in capsys.readouterr().out

    def test_table_with_out_dir(self, patched, tmp_path, capsys):
        assert cli.main(["table", "3", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table3.txt").exists()
        assert (tmp_path / "table3.json").exists()

    def test_compare_command(self, patched, capsys):
        assert cli.main(["compare", "1"]) == 0
        assert "/" in capsys.readouterr().out

    def test_all_command(self, patched, capsys):
        assert cli.main(["all"]) == 0
        assert sorted(patched) == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_invalid_table_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["table", "9"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.main([])


class TestSaveResult:
    def test_save_writes_txt_and_json(self, tmp_path):
        path = tables.save_result(fake_result(2), str(tmp_path))
        assert path.read_text().startswith("Table 2")
        assert (tmp_path / "table2.json").exists()


class TestTableSpecLookup:
    def test_bad_table_id(self):
        with pytest.raises(ValueError, match="no such table"):
            tables.table_spec(0)

    def test_quick_vs_full(self):
        quick = tables.table_spec(2, full=False)
        full = tables.table_spec(2, full=True)
        assert len(quick.thresholds) < len(full.thresholds)


class TestFiguresCommand:
    def test_figures_replays_paper_outcomes(self, capsys):
        assert cli.main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "figure 2: NDM detections = none" in out
        assert "figure 3: NDM detections = ['B']" in out
        assert "figure 5: detections = ['B', 'C']" in out
        assert "simultaneous blocking" in out


class TestLatencyCommand:
    def test_latency_sweep_prints_curve(self, capsys, monkeypatch):
        from repro.experiments import cli as cli_module

        # Shrink the sweep: tiny base config, few steps.
        def tiny_base(full=None):
            from tests.conftest import small_config

            config = small_config()
            config.warmup_cycles = 100
            config.measure_cycles = 400
            return config

        monkeypatch.setattr(cli_module, "base_config", tiny_base)
        monkeypatch.setattr(
            "repro.experiments.runner.calibrated_saturation",
            lambda full=None: {"uniform": 1.0},
        )
        assert cli.main(["latency", "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert "offered" in out
        assert "accepted" in out


class TestProgressPrinter:
    def test_completed_run_ends_line(self, capsys):
        progress = cli._progress_printer("t")
        progress(1, 2)
        progress(2, 2)
        progress.close()
        err = capsys.readouterr().err
        assert err.endswith("\n")
        assert err.count("\n") == 1  # close() after completion adds nothing

    def test_aborted_run_gets_trailing_newline(self, capsys):
        progress = cli._progress_printer("t")
        progress(1, 3)  # run dies here (Ctrl-C / exception)
        progress.close()
        err = capsys.readouterr().err
        assert err.endswith("\n")

    def test_close_idempotent(self, capsys):
        progress = cli._progress_printer("t")
        progress(1, 3)
        progress.close()
        progress.close()
        assert capsys.readouterr().err.count("\n") == 1

    def test_abort_newline_reaches_stderr_from_command(self, monkeypatch,
                                                       capsys):
        def exploding_regenerate(table_id, progress=None, **kwargs):
            progress(1, 4)
            raise RuntimeError("boom mid-table")

        monkeypatch.setattr(cli, "regenerate_table", exploding_regenerate)
        with pytest.raises(RuntimeError, match="boom"):
            cli.main(["table", "2"])
        assert capsys.readouterr().err.endswith("\n")


class TestCampaignFlags:
    def test_flags_forwarded_to_regenerate(self, monkeypatch, tmp_path):
        seen = {}

        def spy(table_id, full=None, seed=7, progress=None, **kwargs):
            seen.update(kwargs, table_id=table_id)
            return fake_result(table_id)

        monkeypatch.setattr(cli, "regenerate_table", spy)
        assert cli.main(["table", "2", "--jobs", "3",
                         "--cache-dir", str(tmp_path), "--resume"]) == 0
        assert seen["jobs"] == 3
        assert seen["resume"] is True
        assert str(seen["cache"].root) == str(tmp_path)
        assert seen["checkpoint"].path == tmp_path / cli.MANIFEST_NAME

    def test_default_jobs_is_cpu_count(self, monkeypatch):
        seen = {}

        def spy(table_id, full=None, seed=7, progress=None, **kwargs):
            seen.update(kwargs)
            return fake_result(table_id)

        monkeypatch.setattr(cli, "regenerate_table", spy)
        assert cli.main(["table", "2"]) == 0
        import os
        assert seen["jobs"] == (os.cpu_count() or 1)
        assert seen["cache"] is None
        assert seen["checkpoint"] is None

    def test_resume_without_cache_dir_uses_default(self, monkeypatch,
                                                   tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "dflt"))
        seen = {}

        def spy(table_id, full=None, seed=7, progress=None, **kwargs):
            seen.update(kwargs)
            return fake_result(table_id)

        monkeypatch.setattr(cli, "regenerate_table", spy)
        assert cli.main(["table", "2", "--resume"]) == 0
        assert str(seen["cache"].root) == str(tmp_path / "dflt")

    def test_fresh_run_truncates_manifest(self, monkeypatch, tmp_path):
        manifest = tmp_path / cli.MANIFEST_NAME
        manifest.write_text('{"kind": "campaign", "table_id": 2, "total": 1}\n')

        monkeypatch.setattr(
            cli, "regenerate_table",
            lambda table_id, full=None, seed=7, progress=None, **kw:
                fake_result(table_id),
        )
        assert cli.main(["table", "2", "--cache-dir", str(tmp_path)]) == 0
        assert not manifest.exists() or manifest.read_text() == ""


class TestCampaignCommand:
    def test_summary_empty(self, tmp_path, capsys):
        assert cli.main(["campaign", "summary",
                         "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "empty" in out
        assert "cached results" in out

    def test_summary_reports_manifest(self, tmp_path, capsys):
        from repro.campaign import CampaignCheckpoint

        ck = CampaignCheckpoint(tmp_path / cli.MANIFEST_NAME)
        ck.start(table_id=2, total=1)
        ck.record_cell(key="table2/th8/load0/s", config_hash="a" * 64,
                       cell={"percentage": 0.0}, wall_time=0.5,
                       worker="serial", source="run")
        assert cli.main(["campaign", "summary",
                         "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cells completed       : 1" in out
        assert "table2=1" in out

    def test_clear_removes_cache_dir(self, tmp_path, capsys):
        target = tmp_path / "cache"
        target.mkdir()
        (target / "junk.json").write_text("{}")
        assert cli.main(["campaign", "clear",
                         "--cache-dir", str(target)]) == 0
        assert not target.exists()

    def test_clear_missing_dir_is_noop(self, tmp_path, capsys):
        assert cli.main(["campaign", "clear",
                         "--cache-dir", str(tmp_path / "none")]) == 0
        assert "nothing to remove" in capsys.readouterr().out

    def test_nonpositive_jobs_rejected_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["table", "2", "--jobs", "0"])
        assert "must be >= 1" in capsys.readouterr().err
