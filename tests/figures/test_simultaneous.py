"""The paper's simultaneous-blocking corner case (Section 3).

When two members of a deadlock both blocked on still-advancing roots, both
carry G and both detect: recovery overhead doubles, which the paper argues
is acceptable because the case is infrequent in congested networks.
"""

import pytest

from repro.analysis.deadlock import find_deadlocked
from repro.figures.scenarios import build_simultaneous_blocking
from repro.network.types import MessageStatus


class TestSimultaneousBlocking:
    def test_cycle_members(self):
        scenario = build_simultaneous_blocking("none")
        scenario.run(40)
        deadlocked = find_deadlocked(scenario.sim.active_messages)
        names = sorted(scenario.name_of(m.id) for m in deadlocked)
        assert names == ["B", "D", "E", "F"]

    def test_both_g_holders_detect(self):
        scenario = build_simultaneous_blocking("ndm", threshold=16)
        scenario.run(400)
        detected = set(scenario.detected_names())
        assert detected == {"B", "D"}

    def test_newcomers_stay_quiet(self):
        scenario = build_simultaneous_blocking("ndm", threshold=16)
        scenario.run(400)
        detected = set(scenario.detected_names())
        assert "E" not in detected
        assert "F" not in detected

    def test_detections_classified_true(self):
        scenario = build_simultaneous_blocking("ndm", threshold=16)
        scenario.run(400)
        stats = scenario.sim.stats
        assert stats.true_detections == 2
        assert stats.false_detections == 0

    def test_recovery_invoked_twice_but_resolves(self):
        scenario = build_simultaneous_blocking(
            "ndm", threshold=16, recovery="progressive"
        )
        ok = scenario.run_until(
            lambda s: all(
                m.status is MessageStatus.DELIVERED
                for m in s.messages.values()
            ),
            limit=3000,
        )
        assert ok
        # Both G-holders were marked: double recovery for one deadlock
        # (the overhead case the paper calls infrequent).
        assert scenario.sim.stats.recoveries == 2

    def test_pdm_marks_all_four(self):
        scenario = build_simultaneous_blocking("pdm", threshold=16)
        scenario.run(400)
        assert set(scenario.detected_names()) == {"B", "D", "E", "F"}

    @pytest.mark.parametrize("selective", [False, True])
    def test_promotion_variant_irrelevant_here(self, selective):
        scenario = build_simultaneous_blocking(
            "ndm", threshold=16, selective_promotion=selective
        )
        scenario.run(400)
        assert set(scenario.detected_names()) == {"B", "D"}
