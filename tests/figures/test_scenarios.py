"""The paper's Figures 2-5, verified end-to-end.

These are the defining behavioural tests of the reproduction: each test
asserts the exact outcome the paper describes for its running example.
"""

import pytest

from repro.analysis.deadlock import find_deadlocked
from repro.figures.scenarios import (
    build_figure2,
    build_figure3,
    build_figure4,
    build_figure5,
    channel_between,
    scenario_config,
)
from repro.network.types import MessageStatus


class TestFigure2:
    """B, C, D blocked behind advancing A: no deadlock."""

    def test_ndm_detects_nothing(self):
        scenario = build_figure2("ndm", threshold=16)
        scenario.run(600)
        assert scenario.detected_names() == []

    def test_all_messages_delivered(self):
        scenario = build_figure2("ndm", threshold=16)
        scenario.run(600)
        assert all(
            m.status is MessageStatus.DELIVERED
            for m in scenario.messages.values()
        )

    def test_pdm_falsely_detects_c_and_d(self):
        scenario = build_figure2("pdm", threshold=16)
        scenario.run(600)
        assert set(scenario.detected_names()) == {"C", "D"}

    def test_pdm_does_not_detect_b(self):
        # B waits on A's channel, which stays active while A drains.
        scenario = build_figure2("pdm", threshold=16)
        scenario.run(600)
        assert "B" not in scenario.detected_names()

    def test_never_a_true_deadlock(self):
        scenario = build_figure2("none")
        for _ in range(40):
            scenario.run(5)
            assert find_deadlocked(scenario.sim.active_messages) == set()

    def test_selective_promotion_also_quiet(self):
        scenario = build_figure2("ndm", threshold=16, selective_promotion=True)
        scenario.run(600)
        assert scenario.detected_names() == []


class TestFigure3:
    """E replaces A and closes the true deadlock {B, C, D, E}."""

    def test_ground_truth_finds_the_cycle(self):
        scenario = build_figure3("none")
        scenario.run(40)
        deadlocked = find_deadlocked(scenario.sim.active_messages)
        assert sorted(scenario.name_of(m.id) for m in deadlocked) == [
            "B", "C", "D", "E",
        ]

    def test_ndm_detects_exactly_b(self):
        scenario = build_figure3("ndm", threshold=16)
        scenario.run(400)
        assert scenario.detected_names() == ["B"]

    def test_detection_classified_as_true(self):
        scenario = build_figure3("ndm", threshold=16)
        scenario.run(400)
        (event,) = scenario.sim.stats.detection_events
        assert event.truly_deadlocked is True
        assert scenario.sim.stats.true_detections == 1

    def test_pdm_detects_every_member(self):
        scenario = build_figure3("pdm", threshold=16)
        scenario.run(400)
        assert sorted(set(scenario.detected_names())) == ["B", "C", "D", "E"]

    def test_detection_latency_scales_with_threshold(self):
        cycles = []
        for threshold in (8, 64):
            scenario = build_figure3("ndm", threshold=threshold)
            ok = scenario.run_until(
                lambda s: s.sim.stats.detection_events, limit=1500
            )
            assert ok
            cycles.append(scenario.sim.stats.detection_events[0].cycle)
        assert cycles[1] > cycles[0] + 40

    def test_e_gets_p_flag(self):
        # E blocks on D's channel, which was silent long before E arrived.
        scenario = build_figure3("ndm", threshold=16)
        scenario.run(10)
        e = scenario.messages["E"]
        assert "E" not in scenario.detected_names()
        assert e.is_blocked()


class TestFigure4:
    """Recovering B removes the deadlock."""

    def test_everything_delivered_after_recovery(self):
        scenario = build_figure4(threshold=16)
        ok = scenario.run_until(
            lambda s: all(
                m.status is MessageStatus.DELIVERED
                for m in s.messages.values()
            ),
            limit=3000,
        )
        assert ok

    def test_exactly_one_recovery(self):
        scenario = build_figure4(threshold=16)
        scenario.run(1500)
        assert scenario.sim.stats.recoveries == 1
        assert scenario.detected_names() == ["B"]

    def test_no_deadlock_remains(self):
        scenario = build_figure4(threshold=16)
        scenario.run(1500)
        assert find_deadlocked(scenario.sim.active_messages) == set()


class TestFigure5:
    """F re-closes the cycle through B's freed channel; C detects."""

    def test_c_detects_the_new_deadlock(self):
        scenario, _ = build_figure5("ndm", threshold=16)
        scenario.run(400)
        assert scenario.detected_names() == ["B", "C"]

    def test_new_cycle_members(self):
        scenario, _ = build_figure5("ndm", threshold=16)
        scenario.run(60)
        deadlocked = find_deadlocked(scenario.sim.active_messages)
        assert sorted(scenario.name_of(m.id) for m in deadlocked) == [
            "C", "D", "E", "F",
        ]

    def test_f_itself_stays_quiet(self):
        scenario, _ = build_figure5("ndm", threshold=16)
        scenario.run(400)
        assert "F" not in scenario.detected_names()

    def test_selective_promotion_variant(self):
        scenario, _ = build_figure5(
            "ndm", threshold=16, selective_promotion=True
        )
        scenario.run(400)
        assert scenario.detected_names()[-1] == "C"


class TestScenarioInfrastructure:
    def test_channel_between_finds_channel(self):
        from repro.network.simulator import Simulator
        from repro.figures.scenarios import Scenario

        scenario = Scenario(Simulator(scenario_config()))
        vc = channel_between(scenario.sim, (3, 0), (4, 0))
        assert vc.pc.src_node == scenario.sim.topology.node_at((3, 0))
        assert vc.pc.dst_node == scenario.sim.topology.node_at((4, 0))

    def test_channel_between_rejects_non_neighbors(self):
        from repro.network.simulator import Simulator
        from repro.figures.scenarios import Scenario

        scenario = Scenario(Simulator(scenario_config()))
        with pytest.raises(ValueError):
            channel_between(scenario.sim, (3, 0), (5, 0))

    def test_placed_worms_satisfy_conservation(self):
        scenario = build_figure3("none")
        for message in scenario.messages.values():
            message.check_conservation()
        scenario.sim.check_invariants()

    def test_scenario_name_lookup(self):
        scenario = build_figure2("none")
        b = scenario.messages["B"]
        assert scenario.name_of(b.id) == "B"
        assert scenario.name_of(10_000) is None
