"""The selective G/P promotion variant, held to the paper's figures.

The paper's simple rule promotes *every* P flag at a router when an
output channel's I flag resets; the selective variant (an ablation, see
``DetectorConfig.selective_promotion``) promotes only the inputs whose
blocked header actually requested that output.  These tests pin two
claims:

* on the paper's figure scenarios the selective variant reaches the same
  verdicts as the simple rule (the figures contain no bystander input
  for selectivity to spare);
* on runs where no header ever blocks, the two variants are bit-identical
  — promotion only ever acts on registered waiters, and waiters only
  exist after a block (property-based).
"""

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.analysis.deadlock import find_deadlocked
from repro.figures.scenarios import build_figure3, build_figure4
from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator
from repro.network.types import MessageStatus


class TestFigure3Selective:
    """E closes the true deadlock; the G-holder B must still detect."""

    def test_detects_exactly_b(self):
        scenario = build_figure3("ndm", threshold=16, selective_promotion=True)
        scenario.run(400)
        assert scenario.detected_names() == ["B"]

    def test_detection_classified_true(self):
        scenario = build_figure3("ndm", threshold=16, selective_promotion=True)
        scenario.run(400)
        (event,) = scenario.sim.stats.detection_events
        assert event.truly_deadlocked is True
        assert scenario.sim.stats.true_detections == 1


class TestFigure4Selective:
    """Recovery of the selectively-detected B still removes the deadlock."""

    def test_exactly_one_recovery_resolves(self):
        scenario = build_figure4(threshold=16, selective_promotion=True)
        ok = scenario.run_until(
            lambda s: all(
                m.status is MessageStatus.DELIVERED
                for m in s.messages.values()
            ),
            limit=3000,
        )
        assert ok
        assert scenario.sim.stats.recoveries == 1
        assert scenario.detected_names() == ["B"]
        assert find_deadlocked(scenario.sim.active_messages) == set()


# ----------------------------------------------------------------------
# No-contention equivalence (property-based)
# ----------------------------------------------------------------------
params_strategy = st.fixed_dictionaries(
    {
        "dimensions": st.sampled_from([1, 2]),
        "vcs_per_channel": st.integers(min_value=2, max_value=3),
        "rate": st.floats(min_value=0.01, max_value=0.08),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


def run_variant(params, selective: bool):
    from repro.network.tracing import Tracer

    config = SimulationConfig(
        radix=4,
        dimensions=params["dimensions"],
        vcs_per_channel=params["vcs_per_channel"],
        warmup_cycles=0,
        measure_cycles=300,
        seed=params["seed"],
        ground_truth_interval=0,
    )
    config.traffic.injection_rate = params["rate"]
    config.detector.mechanism = "ndm"
    config.detector.threshold = 16
    config.detector.selective_promotion = selective
    sim = Simulator(config)
    sim.tracer = Tracer(capacity=0, kinds=("block",))
    stats = sim.run()
    return sim, stats


class TestNoContentionEquivalence:
    @given(params_strategy)
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
    )
    def test_variants_identical_without_blocking(self, params):
        """With no blocked header there is never a registered waiter, so
        the promotion rule — the only place the variants differ — never
        has anything to act on."""
        sim_simple, stats_simple = run_variant(params, selective=False)
        assume(sim_simple.tracer.count("block") == 0)
        sim_selective, stats_selective = run_variant(params, selective=True)
        assert sim_selective.tracer.count("block") == 0
        assert stats_simple.to_dict(include_perf=False) == (
            stats_selective.to_dict(include_perf=False)
        )
