"""Tests for the idealized witness-based NDM variant (ablation)."""

from repro.figures.scenarios import (
    build_figure2,
    build_figure3,
    build_figure5,
    place_worm,
    scenario_config,
    Scenario,
)
from repro.network.simulator import Simulator


class TestPreciseNDMFigures:
    """ndm-precise must reproduce the paper's figure outcomes exactly."""

    def test_figure2_detects_nothing(self):
        scenario = build_figure2("ndm-precise", threshold=16)
        scenario.run(600)
        assert scenario.detected_names() == []

    def test_figure3_detects_only_b(self):
        scenario = build_figure3("ndm-precise", threshold=16)
        scenario.run(400)
        assert scenario.detected_names() == ["B"]

    def test_figure5_relabels_root(self):
        scenario, _ = build_figure5("ndm-precise", threshold=16)
        scenario.run(400)
        assert scenario.detected_names() == ["B", "C"]


class TestWitnessSemantics:
    def test_no_witness_no_detection(self):
        """A message that never saw an advancing holder stays quiet."""
        scenario = Scenario(
            Simulator(scenario_config("ndm-precise", 8, "none"))
        )
        sim = scenario.sim
        place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=60, parked=True)
        scenario.run(6)  # the parked worm's channel has long been silent...
        # ... but 'parked' counts as non-blocked; use a blocked holder:
        b = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=16)
        scenario.run(40)
        # b witnessed the parked (non-blocked) holder => eligible; verify
        # the opposite with a chain: c waits on b which is blocked.
        c = place_worm(sim, (4, 1), [(0, -1)], (3, 0), length=16)
        scenario.run(60)
        assert not c.marked_deadlocked

    def test_witness_state_cleaned_on_route(self):
        scenario = Scenario(
            Simulator(scenario_config("ndm-precise", 8, "none"))
        )
        sim = scenario.sim
        place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=16)
        scenario.run(2)
        b = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=16)
        scenario.run(400)
        detector = sim.detector
        assert b.id not in detector._witness
        assert b.status.value == "delivered"

    def test_registry_builds_precise(self):
        from repro.core.precise import PreciseNDM
        from repro.core.registry import make_detector
        from repro.network.config import DetectorConfig

        detector = make_detector(
            DetectorConfig(mechanism="ndm-precise", threshold=24)
        )
        assert isinstance(detector, PreciseNDM)
        assert detector.threshold == 24
