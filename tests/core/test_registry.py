"""Tests for the detector registry."""

import pytest

from repro.core.ndm import NewDetectionMechanism
from repro.core.null import NoDetection
from repro.core.pdm import PreviousDetectionMechanism
from repro.core.registry import detector_names, make_detector
from repro.core.timeout import (
    HeaderBlockedTimeout,
    InjectionStallTimeout,
    SourceAgeTimeout,
)
from repro.network.config import DetectorConfig


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("ndm", NewDetectionMechanism),
            ("pdm", PreviousDetectionMechanism),
            ("timeout", HeaderBlockedTimeout),
            ("source-age", SourceAgeTimeout),
            ("injection-stall", InjectionStallTimeout),
            ("none", NoDetection),
        ],
    )
    def test_builds_right_class(self, name, cls):
        detector = make_detector(DetectorConfig(mechanism=name, threshold=16))
        assert isinstance(detector, cls)

    def test_threshold_forwarded(self):
        detector = make_detector(DetectorConfig(mechanism="pdm", threshold=77))
        assert detector.threshold == 77

    def test_ndm_options_forwarded(self):
        detector = make_detector(
            DetectorConfig(
                mechanism="ndm", threshold=64, t1=2, selective_promotion=True
            )
        )
        assert detector.t1 == 2
        assert detector.selective_promotion

    def test_unknown_mechanism_raises(self):
        with pytest.raises(ValueError, match="unknown detection mechanism"):
            make_detector(DetectorConfig(mechanism="oracle"))

    def test_all_names_constructible(self):
        for name in detector_names():
            make_detector(DetectorConfig(mechanism=name, threshold=8))

    def test_zero_threshold_rejected(self):
        with pytest.raises(ValueError):
            make_detector(DetectorConfig(mechanism="pdm", threshold=0))

    def test_base_hooks_are_noops(self):
        detector = make_detector(DetectorConfig(mechanism="none"))
        assert detector.on_blocked_attempt(None, None, 0, True) is False
        assert detector.periodic_check([], 0) == []
        detector.on_message_routed(None, 0)
        detector.on_vc_released(None, 0)
        detector.on_message_removed(None, 0)
