"""Registry round-trips: every detector builds, attaches and serializes.

Satellite coverage for the probe-family PR: each name in
``detector_names()`` must build via ``make_detector``, attach to a
simulator under both engines, and push its stats — including the
``oracle_*`` conformance fields and the probe transport counters —
through ``to_dict``/``from_dict`` without loss.
"""

import dataclasses

import pytest

from repro.core.registry import detector_names, make_detector
from repro.metrics.stats import SimulationStats
from repro.network.config import DetectorConfig, SimulationConfig
from repro.network.simulator import Simulator


def small_config(mechanism: str, engine: str) -> SimulationConfig:
    config = SimulationConfig(
        radix=4,
        dimensions=2,
        vcs_per_channel=1,
        warmup_cycles=10,
        measure_cycles=40,
        ground_truth_interval=0,
        engine=engine,
    )
    config.detector.mechanism = mechanism
    config.detector.threshold = 8
    config.traffic.injection_rate = 0.1
    return config


@pytest.mark.parametrize("name", detector_names())
def test_every_name_builds_and_reports_its_name(name):
    detector = make_detector(DetectorConfig(mechanism=name, threshold=8))
    assert detector.name == name
    assert name in detector.describe()


@pytest.mark.parametrize("engine", ["scan", "event"])
@pytest.mark.parametrize("name", detector_names())
def test_every_name_attaches_and_runs_on_both_engines(name, engine):
    config = small_config(name, engine)
    config.validate()
    sim = Simulator(config)
    assert sim.detector.name == name
    assert sim.detector.sim is sim
    stats = sim.run()
    assert stats.cycles_run == 50
    assert stats.engine == engine


@pytest.mark.parametrize("name", detector_names())
def test_stats_roundtrip_preserves_every_counter(name):
    config = small_config(name, "event")
    sim = Simulator(config)
    stats = sim.run()
    # Exercise the new counters even when the run itself stayed quiet:
    # the round-trip must carry nonzero values for every declared field.
    for field in dataclasses.fields(SimulationStats):
        if field.type == "int" and getattr(stats, field.name) == 0:
            setattr(stats, field.name, 7)
    rebuilt = SimulationStats.from_dict(stats.to_dict())
    assert rebuilt == stats
    assert rebuilt.to_dict() == stats.to_dict()


def test_roundtrip_covers_oracle_and_probe_fields():
    declared = {f.name for f in dataclasses.fields(SimulationStats)}
    expected_probe = {
        "probe_launches",
        "probe_hops",
        "probe_cycle_detections",
        "probe_deadend_detections",
        "probe_dropped_progress",
        "probe_dropped_dedupe",
        "probe_dropped_election",
        "probe_dropped_hops",
        "probe_dropped_overflow",
        "probe_peak_outstanding",
    }
    expected_oracle = {
        "oracle_true_positive_events",
        "oracle_false_positive_events",
        "oracle_missed_messages",
        "oracle_latency_sum",
        "oracle_latency_count",
        "oracle_latency_max",
    }
    assert expected_probe <= declared
    assert expected_oracle <= declared
    stats = SimulationStats()
    for i, field in enumerate(sorted(expected_probe | expected_oracle)):
        setattr(stats, field, i + 1)
    payload = stats.to_dict(include_events=False, include_perf=False)
    for i, field in enumerate(sorted(expected_probe | expected_oracle)):
        assert payload[field] == i + 1
    rebuilt = SimulationStats.from_dict(stats.to_dict())
    for i, field in enumerate(sorted(expected_probe | expected_oracle)):
        assert getattr(rebuilt, field) == i + 1


def test_probe_knobs_flow_through_config_roundtrip():
    config = SimulationConfig()
    config.detector.mechanism = "probe"
    config.detector.probe_max_hops = 17
    config.detector.probe_max_outstanding = 5
    rebuilt = SimulationConfig.from_dict(config.to_dict())
    assert rebuilt.detector.probe_max_hops == 17
    assert rebuilt.detector.probe_max_outstanding == 5
    detector = make_detector(rebuilt.detector)
    assert detector.transport.max_hops == 17
    assert detector.transport.max_outstanding == 5
