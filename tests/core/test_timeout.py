"""Unit tests for the crude timeout detection mechanisms."""

from repro.core.timeout import (
    HeaderBlockedTimeout,
    InjectionStallTimeout,
    SourceAgeTimeout,
)
from repro.figures.scenarios import Scenario, place_worm, scenario_config
from repro.network.simulator import Simulator


def fresh_scenario(mechanism, threshold=16) -> Scenario:
    return Scenario(Simulator(scenario_config(mechanism, threshold, "none")))


def park_blocker(sim):
    parked = place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=60)
    parked.feasible_pcs = ()  # never routes
    return parked


class TestHeaderBlockedTimeout:
    def test_marks_after_blocked_threshold(self):
        scenario = fresh_scenario("timeout", threshold=12)
        sim = scenario.sim
        park_blocker(sim)
        scenario.run(2)
        b = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=16)
        ok = scenario.run_until(lambda s: b.marked_deadlocked, limit=60)
        assert ok
        event = sim.stats.detection_events[0]
        assert event.cycle - b.blocked_since >= 12

    def test_falsely_marks_even_behind_advancing_message(self):
        """The crude timeout cannot tell congestion from deadlock."""
        scenario = fresh_scenario("timeout", threshold=12)
        sim = scenario.sim
        place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=200)  # advancing!
        scenario.run(2)
        b = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=16)
        scenario.run(40)
        assert b.marked_deadlocked  # false detection by design

    def test_timer_resets_when_header_advances(self):
        scenario = fresh_scenario("timeout", threshold=40)
        sim = scenario.sim
        place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=30)
        scenario.run(2)
        b = place_worm(sim, (3, 1), [(1, -1)], (5, 0), length=16)
        scenario.run(300)
        # B waited ~28 cycles then advanced hop by hop: never 40 blocked.
        assert not b.marked_deadlocked


class TestSourceAgeTimeout:
    def test_marks_old_messages(self):
        scenario = fresh_scenario("source-age", threshold=30)
        sim = scenario.sim
        park_blocker(sim)
        scenario.run(2)
        b = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=16)
        ok = scenario.run_until(lambda s: b.marked_deadlocked, limit=80)
        assert ok

    def test_fast_messages_unmarked(self):
        scenario = fresh_scenario("source-age", threshold=100)
        sim = scenario.sim
        m = place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=16)
        scenario.run(80)
        assert m.status.value == "delivered"
        assert not m.marked_deadlocked

    def test_periodic_check_flag(self):
        assert SourceAgeTimeout.needs_periodic_check
        assert InjectionStallTimeout.needs_periodic_check
        assert not HeaderBlockedTimeout.needs_periodic_check


class TestInjectionStallTimeout:
    def test_marks_stalled_injection(self):
        scenario = fresh_scenario("injection-stall", threshold=20)
        sim = scenario.sim
        park_blocker(sim)
        scenario.run(2)
        # Long worm: buffers fill, source stalls with flits remaining.
        b = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=48)
        assert b.flits_at_source > 0
        ok = scenario.run_until(lambda s: b.marked_deadlocked, limit=100)
        assert ok

    def test_ignores_fully_injected_messages(self):
        scenario = fresh_scenario("injection-stall", threshold=10)
        sim = scenario.sim
        park_blocker(sim)
        scenario.run(2)
        # Short worm fits entirely in network buffers: source empties, the
        # source-side observer loses sight of it.
        b = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=6)
        scenario.run(100)
        assert b.flits_at_source == 0
        assert not b.marked_deadlocked
