"""Unit tests for the previous detection mechanism (PDM)."""

from repro.figures.scenarios import (
    Scenario,
    build_figure2,
    place_worm,
    scenario_config,
)
from repro.network.simulator import Simulator


def fresh_scenario(threshold=16) -> Scenario:
    return Scenario(Simulator(scenario_config("pdm", threshold, "none")))


class TestPDMDetection:
    def test_no_detection_while_channel_active(self):
        scenario = fresh_scenario(threshold=8)
        sim = scenario.sim
        place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=200)
        scenario.run(2)
        b = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=16)
        scenario.run(60)
        assert not b.marked_deadlocked

    def test_detects_after_threshold_of_silence(self):
        scenario = fresh_scenario(threshold=8)
        sim = scenario.sim
        # Parked worm that never routes: its channel goes silent at once.
        place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=60, parked=True)
        scenario.run(2)
        b = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=16)
        ok = scenario.run_until(lambda s: b.marked_deadlocked, limit=100)
        assert ok

    def test_detection_latency_tracks_threshold(self):
        cycles = []
        for threshold in (8, 32):
            scenario = fresh_scenario(threshold=threshold)
            sim = scenario.sim
            place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=60, parked=True)
            scenario.run(2)
            b = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=16)
            scenario.run_until(lambda s: b.marked_deadlocked, limit=300)
            cycles.append(sim.stats.detection_events[0].cycle)
        assert cycles[1] - cycles[0] >= 20  # ~ threshold difference

    def test_false_detection_on_blocked_tree(self):
        """Figure 2: the PDM falsely marks C and D (paper Sec. 2)."""
        scenario = build_figure2("pdm", threshold=16)
        scenario.run(400)
        assert set(scenario.detected_names()) == {"C", "D"}

    def test_detection_is_stateless_across_attempts(self):
        """PDM has no per-message latch: a message blocked twice behind
        active channels is never marked."""
        scenario = fresh_scenario(threshold=64)
        sim = scenario.sim
        place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=30)
        scenario.run(2)
        b = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=16)
        scenario.run(250)
        assert not b.marked_deadlocked
        assert b.status.value == "delivered"
