"""NDM waiter bookkeeping: registration counts and wakeup-set hygiene.

Two layers of bookkeeping hang off blocked messages and must stay exactly
in sync with the network state:

* the *selective-promotion* maps (``pc.waiters``: for each output channel,
  which input channels host blocked headers requesting it, with
  multiplicity) that :meth:`NewDetectionMechanism._on_i_reset` consults;
* the *event-engine* wakeup sets (``pc.route_waiters`` /
  ``pc.header_waiters``) that re-awaken parked headers.

A leak in either direction is silent in normal runs — stale entries cause
spurious promotions (extra false detections), missing entries cause lost
wakeups (the event engine strands a worm).  These tests reconcile both
structures against the ground truth recomputed from the message
population, including under a saturated stress run.
"""

from __future__ import annotations

from repro.core.ndm import NewDetectionMechanism
from repro.figures.scenarios import Scenario, place_worm, scenario_config
from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator
from repro.network.types import MessageStatus, PortKind


# ----------------------------------------------------------------------
# Ground-truth reconciliation helpers
# ----------------------------------------------------------------------
def expected_selective_waiters(sim: Simulator, marked: bool = False):
    """Recompute the ``pc.waiters`` maps from the message population.

    With ``marked=False``: contributions of blocked, *unmarked* in-network
    messages.  Every such message is registered (its first failed attempt
    ran the detector, and only routing success / worm teardown
    unregister).  With ``marked=True``: contributions of blocked messages
    already ``marked_deadlocked`` — these are ambiguous, because
    ``_attempt_route`` skips the detector for marked messages: one marked
    at *this* router registered before detection, one that re-blocked at a
    later router after being marked never did.
    """
    expected = {
        pc: {} for pc in sim.channels if pc.kind is not PortKind.INJECTION
    }
    for m in sim.active_messages:
        if m.status is not MessageStatus.IN_NETWORK or not m.first_attempt_done:
            continue
        if m.marked_deadlocked is not marked:
            continue
        for pc in m.feasible_pcs:
            counts = expected[pc]
            counts[m.input_pc] = counts.get(m.input_pc, 0) + 1
    return expected


def assert_selective_waiters_consistent(sim: Simulator) -> None:
    """Exact reconciliation, with a bounded allowance for marked worms.

    For every (output, input) pair:
    ``unmarked <= actual <= unmarked + marked`` — no leaked entries (an
    actual count above what live blocked messages explain) and no lost
    registrations (below what unmarked blocked messages require).
    """
    unmarked = expected_selective_waiters(sim, marked=False)
    marked = expected_selective_waiters(sim, marked=True)
    for pc, floor in unmarked.items():
        actual = dict(pc.waiters or {})
        slack = marked[pc]
        for inp in set(floor) | set(actual) | set(slack):
            lo = floor.get(inp, 0)
            hi = lo + slack.get(inp, 0)
            got = actual.get(inp, 0)
            assert lo <= got <= hi, (
                f"{pc}: waiters[{inp}] == {got}, expected between {lo} "
                f"and {hi} (marked slack {slack.get(inp, 0)})"
            )


def assert_wakeup_sets_consistent(sim: Simulator) -> None:
    """Wakeup-set membership must mirror ``wait_registered`` exactly."""
    registered = {
        m for m in sim.active_messages if getattr(m, "wait_registered", False)
    }
    for m in registered:
        for pc in m.feasible_pcs:
            assert pc.route_waiters and m in pc.route_waiters
        if m.input_pc is not None:
            assert m.input_pc.header_waiters and m in m.input_pc.header_waiters
    for pc in sim.channels:
        for m in pc.route_waiters or ():
            assert m in registered, f"stale route waiter {m} on {pc}"
        for m in pc.header_waiters or ():
            assert m in registered, f"stale header waiter {m} on {pc}"


# ----------------------------------------------------------------------
# Unit tests of the count arithmetic (no simulator needed)
# ----------------------------------------------------------------------
class _Stub:
    """Hashable attribute bag (SimpleNamespace defines eq but not hash)."""

    def __init__(self, **kwargs):
        self.__dict__.update(kwargs)

    def __repr__(self):
        return getattr(self, "name", super().__repr__())


def _stub_pc(name: str):
    return _Stub(name=name, waiters={})


def _stub_message(input_pc, feasible_pcs):
    return _Stub(
        input_pc=input_pc,
        feasible_pcs=tuple(feasible_pcs),
        first_attempt_done=True,
    )


class TestWaiterCounts:
    def test_register_increments_per_feasible_channel(self):
        ndm = NewDetectionMechanism(16, selective_promotion=True)
        out_a, out_b, inp = _stub_pc("a"), _stub_pc("b"), _stub_pc("in")
        m = _stub_message(inp, [out_a, out_b])
        ndm._register_waiter(m, inp)
        assert out_a.waiters == {inp: 1}
        assert out_b.waiters == {inp: 1}

    def test_two_messages_same_input_count_to_two(self):
        ndm = NewDetectionMechanism(16, selective_promotion=True)
        out, inp = _stub_pc("out"), _stub_pc("in")
        m1 = _stub_message(inp, [out])
        m2 = _stub_message(inp, [out])
        ndm._register_waiter(m1, inp)
        ndm._register_waiter(m2, inp)
        assert out.waiters == {inp: 2}
        ndm._unregister_waiter(m1)
        assert out.waiters == {inp: 1}
        ndm._unregister_waiter(m2)
        assert out.waiters == {}

    def test_unregister_never_registered_is_noop(self):
        ndm = NewDetectionMechanism(16, selective_promotion=True)
        out, inp = _stub_pc("out"), _stub_pc("in")
        m = _stub_message(inp, [out])
        m.first_attempt_done = False  # routed on the first try
        ndm._unregister_waiter(m)
        assert out.waiters == {}

    def test_unregister_distinct_inputs_keeps_other(self):
        ndm = NewDetectionMechanism(16, selective_promotion=True)
        out, in1, in2 = _stub_pc("out"), _stub_pc("in1"), _stub_pc("in2")
        m1 = _stub_message(in1, [out])
        m2 = _stub_message(in2, [out])
        ndm._register_waiter(m1, in1)
        ndm._register_waiter(m2, in2)
        ndm._unregister_waiter(m1)
        assert out.waiters == {in2: 1}


# ----------------------------------------------------------------------
# Scenario-level reconciliation
# ----------------------------------------------------------------------
class TestScenarioBookkeeping:
    def _blocked_pair(self):
        config = scenario_config("ndm", 16, selective_promotion=True)
        scenario = Scenario(Simulator(config))
        sim = scenario.sim
        # A long worm advances east; B blocks requesting A's channel.
        a = place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=36)
        scenario.run(2)
        b = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=16)
        scenario.run(2)
        assert b.is_blocked()
        return sim, a, b

    def test_blocked_header_registered_until_routed(self):
        sim, a, b = self._blocked_pair()
        assert_selective_waiters_consistent(sim)
        assert any(
            b.input_pc in (pc.waiters or {}) for pc in b.feasible_pcs
        )
        # Run until B is no longer blocked at this router (A's tail passes).
        for _ in range(80):
            sim.step()
            if not b.is_blocked():
                break
        assert_selective_waiters_consistent(sim)

    def test_delivery_clears_all_registrations(self):
        sim, a, b = self._blocked_pair()
        for _ in range(400):
            sim.step()
            if not sim.active_messages:
                break
        assert not sim.active_messages
        assert_selective_waiters_consistent(sim)  # all maps empty now
        assert_wakeup_sets_consistent(sim)
        for pc in sim.channels:
            assert not pc.waiters
            assert not pc.route_waiters
            assert not pc.header_waiters


# ----------------------------------------------------------------------
# Saturation stress: invariants hold continuously under heavy load
# ----------------------------------------------------------------------
def _stress_config(**overrides) -> SimulationConfig:
    config = SimulationConfig(
        radix=8,
        dimensions=2,
        vcs_per_channel=2,
        warmup_cycles=0,
        measure_cycles=600,
        seed=7,
        engine="event",
    )
    config.detector.mechanism = "ndm"
    config.detector.threshold = 32
    config.detector.selective_promotion = True
    config.traffic.injection_rate = 0.8  # well beyond saturation
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def _stress(sim: Simulator, cycles: int, every: int = 25) -> None:
    for _ in range(cycles // every):
        for _ in range(every):
            sim.step()
        sim.check_invariants()
        assert_selective_waiters_consistent(sim)
        assert_wakeup_sets_consistent(sim)


def test_saturated_selective_ndm_invariants():
    sim = Simulator(_stress_config())
    _stress(sim, 600)
    # The run must actually have exercised the machinery under pressure.
    assert sim.stats.detections > 0 or any(
        m.is_blocked() for m in sim.active_messages
    )


def test_saturated_selective_ndm_invariants_with_reinjection():
    sim = Simulator(_stress_config(recovery="progressive-reinject"))
    _stress(sim, 600)


def test_saturated_invariants_no_recovery_wedge():
    """recovery='none': the network wedges; parked state must stay sound."""
    sim = Simulator(_stress_config(recovery="none", vcs_per_channel=1))
    _stress(sim, 600)
    assert sim.stats.detections > 0
