"""Tests for the hybrid NDM + timeout-backstop detector."""

import pytest

from repro.core.hybrid import HybridDetection
from repro.figures.scenarios import (
    Scenario,
    build_figure2,
    build_figure3,
    place_worm,
    scenario_config,
)
from repro.network.simulator import Simulator


class TestConstruction:
    def test_fallback_threshold_scaled(self):
        detector = HybridDetection(threshold=16, fallback_factor=16)
        assert detector.fallback_threshold == 256

    def test_factor_validation(self):
        with pytest.raises(ValueError):
            HybridDetection(threshold=16, fallback_factor=1)

    def test_describe(self):
        assert "fallback=256" in HybridDetection(16).describe()

    def test_registry_integration(self):
        from repro.core.registry import make_detector
        from repro.network.config import DetectorConfig

        detector = make_detector(DetectorConfig(mechanism="hybrid", threshold=8))
        assert isinstance(detector, HybridDetection)


class TestPrimaryBehaviourMatchesNDM:
    def test_figure2_quiet(self):
        scenario = build_figure2("hybrid", threshold=16)
        scenario.run(600)
        assert scenario.detected_names() == []

    def test_figure3_detects_b_via_ndm_rule(self):
        # With recovery active, B's recovery resolves the deadlock long
        # before anyone reaches the fallback window.
        scenario = build_figure3("hybrid", threshold=16, recovery="progressive")
        scenario.run(400)
        assert scenario.detected_names() == ["B"]
        assert scenario.sim.detector.fallback_detections == 0

    def test_figure3_without_recovery_backstop_catches_rest(self):
        # If nothing recovers the marked message, the liveness backstop
        # eventually marks the remaining members too.
        scenario = build_figure3("hybrid", threshold=16, recovery="none")
        scenario.run(400)
        assert scenario.detected_names()[0] == "B"
        assert set(scenario.detected_names()) == {"B", "C", "D", "E"}
        assert scenario.sim.detector.fallback_detections == 3


class TestBackstop:
    def _config(self, threshold=8):
        return scenario_config("hybrid", threshold, "none")

    def test_p_flagged_message_eventually_marked(self):
        """A message the NDM would never mark (P forever, holder parked)
        is caught by the fallback timeout."""
        scenario = Scenario(Simulator(self._config(threshold=4)))
        sim = scenario.sim
        place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=60, parked=True)
        scenario.run(20)  # channel long silent before the waiter arrives
        waiter = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=16)
        # NDM rule: all-I-set at first attempt -> P -> never detected; the
        # hybrid's backstop fires at 4 * 16 = 64 blocked cycles.
        ok = scenario.run_until(lambda s: waiter.marked_deadlocked, limit=200)
        assert ok
        assert sim.detector.fallback_detections == 1

    def test_plain_ndm_never_marks_that_message(self):
        scenario = Scenario(
            Simulator(scenario_config("ndm", 4, "none"))
        )
        sim = scenario.sim
        place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=60, parked=True)
        scenario.run(20)
        waiter = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=16)
        scenario.run(200)
        assert not waiter.marked_deadlocked

    def test_backstop_latency_bounded(self):
        scenario = Scenario(Simulator(self._config(threshold=4)))
        sim = scenario.sim
        place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=60, parked=True)
        scenario.run(20)
        waiter = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=16)
        scenario.run_until(lambda s: waiter.marked_deadlocked, limit=300)
        event = sim.stats.detection_events[-1]
        blocked_for = event.cycle - (sim.cycle - (sim.cycle - event.cycle))
        assert event.cycle <= 20 + 2 + 64 + 10  # arrival + fallback + slack
        assert blocked_for >= 0
