"""Tests for the recovery schemes."""

import pytest

from repro.core.recovery import make_recovery
from repro.figures.scenarios import build_figure3
from repro.network.types import MessageStatus


class TestProgressiveRecovery:
    def test_deadlock_resolved_and_all_delivered(self):
        scenario = build_figure3("ndm", threshold=8, recovery="progressive")
        ok = scenario.run_until(
            lambda s: all(
                m.status is MessageStatus.DELIVERED
                for m in s.messages.values()
            ),
            limit=3000,
        )
        assert ok

    def test_channels_freed_immediately(self):
        scenario = build_figure3("ndm", threshold=8, recovery="progressive")
        b = scenario.messages["B"]
        held = list(b.spans)
        scenario.run_until(lambda s: b.status is MessageStatus.RECOVERING,
                           limit=1000)
        for vc in held:
            assert vc.occupant is not b

    def test_recovery_latency_includes_lane_transit(self):
        scenario = build_figure3("ndm", threshold=8, recovery="progressive")
        b = scenario.messages["B"]
        scenario.run_until(lambda s: b.status is MessageStatus.RECOVERING,
                           limit=1000)
        marked_cycle = scenario.sim.cycle
        scenario.run_until(lambda s: b.status is MessageStatus.DELIVERED,
                           limit=1000)
        assert b.deliver_cycle - marked_cycle >= b.length

    def test_stats_count_recoveries(self):
        scenario = build_figure3("ndm", threshold=8, recovery="progressive")
        scenario.run(600)
        assert scenario.sim.stats.recoveries == 1
        assert scenario.sim.stats.aborts == 0


class TestProgressiveReinjection:
    def test_message_reinjected_from_header_node(self):
        scenario = build_figure3(
            "ndm", threshold=8, recovery="progressive-reinject"
        )
        b = scenario.messages["B"]
        scenario.run_until(lambda s: b.recoveries > 0, limit=1000)
        # Re-injected from the node that held its header, not the source.
        assert b.inject_node == b.spans[-1].pc.dst_node if b.spans else True
        ok = scenario.run_until(
            lambda s: b.status is MessageStatus.DELIVERED, limit=3000
        )
        assert ok

    def test_deadlock_broken_for_everyone(self):
        scenario = build_figure3(
            "ndm", threshold=8, recovery="progressive-reinject"
        )
        ok = scenario.run_until(
            lambda s: all(
                m.status is MessageStatus.DELIVERED
                for m in s.messages.values()
            ),
            limit=3000,
        )
        assert ok


class TestRegressiveRecovery:
    def test_abort_and_retry_from_source(self):
        scenario = build_figure3("ndm", threshold=8, recovery="regressive")
        b = scenario.messages["B"]
        scenario.run_until(lambda s: b.retries > 0, limit=1000)
        assert b.inject_node == b.source
        ok = scenario.run_until(
            lambda s: all(
                m.status is MessageStatus.DELIVERED
                for m in s.messages.values()
            ),
            limit=3000,
        )
        assert ok

    def test_stats_count_aborts(self):
        scenario = build_figure3("ndm", threshold=8, recovery="regressive")
        scenario.run(600)
        assert scenario.sim.stats.aborts >= 1
        assert scenario.sim.stats.recoveries == 0


class TestNoRecovery:
    def test_marked_message_stays_blocked(self):
        scenario = build_figure3("ndm", threshold=8, recovery="none")
        b = scenario.messages["B"]
        scenario.run_until(lambda s: b.marked_deadlocked, limit=1000)
        scenario.run(100)
        assert b.status is MessageStatus.IN_NETWORK
        assert b.is_blocked()

    def test_marked_message_not_redetected(self):
        scenario = build_figure3("ndm", threshold=8, recovery="none")
        b = scenario.messages["B"]
        scenario.run_until(lambda s: b.marked_deadlocked, limit=1000)
        scenario.run(200)
        events = [
            e for e in scenario.sim.stats.detection_events
            if e.message_id == b.id
        ]
        assert len(events) == 1


class TestFactory:
    def test_unknown_scheme_raises(self):
        with pytest.raises(ValueError, match="unknown recovery scheme"):
            make_recovery("wormhole-magic", sim=None)

    @pytest.mark.parametrize(
        "name", ["progressive", "progressive-reinject", "regressive", "none"]
    )
    def test_known_schemes_constructible(self, name):
        assert make_recovery(name, sim=None).name == name
