"""Adaptive threshold controller: policy unit tests (no simulations)."""

import pytest

from repro.core.adaptive import (
    CONTROLLERS,
    DEFAULT_LADDER,
    AdaptiveProbe,
    AdaptiveThresholdController,
    AdaptiveTimeout,
)


def verdict(fp=0, missed=0, latency_sum=0, latency_count=0):
    return {
        "false_positives": fp,
        "missed": missed,
        "latency_sum": latency_sum,
        "latency_count": latency_count,
    }


def drive(controller, cost_table, max_evaluations=20):
    """Feed synthetic per-threshold FP counts until convergence."""
    evaluations = []
    for _ in range(max_evaluations):
        threshold = controller.propose()
        if threshold is None:
            break
        evaluations.append(threshold)
        controller.observe(threshold, verdict(fp=cost_table[threshold]))
    return evaluations


class TestConstruction:
    def test_ladder_must_be_increasing_and_nonempty(self):
        with pytest.raises(ValueError):
            AdaptiveThresholdController(ladder=())
        with pytest.raises(ValueError):
            AdaptiveThresholdController(ladder=(8, 4))
        with pytest.raises(ValueError):
            AdaptiveThresholdController(ladder=(4, 4, 8))

    def test_start_index_defaults_to_middle(self):
        controller = AdaptiveThresholdController(ladder=(4, 8, 16, 32))
        assert controller.ladder[controller.index] == 16

    def test_registry_binds_mechanisms(self):
        assert CONTROLLERS["probe"] is AdaptiveProbe
        assert CONTROLLERS["timeout"] is AdaptiveTimeout
        assert AdaptiveProbe().mechanism == "probe"
        assert AdaptiveTimeout().mechanism == "timeout"
        assert AdaptiveProbe().ladder == DEFAULT_LADDER


class TestCost:
    def test_unevaluated_rung_has_no_cost(self):
        controller = AdaptiveThresholdController(ladder=(4, 8))
        assert controller.cost(4) is None

    def test_cost_weights_fp_miss_latency(self):
        controller = AdaptiveThresholdController(
            ladder=(4,), fp_weight=1.0, miss_weight=100.0, latency_weight=0.5
        )
        controller.observe(
            4, verdict(fp=3, missed=2, latency_sum=40, latency_count=4)
        )
        # 3 FP + 2 * 100 + 0.5 * mean(10), one cell.
        assert controller.cost(4) == pytest.approx(3 + 200 + 5.0)

    def test_feedback_accumulates_across_observations(self):
        controller = AdaptiveThresholdController(ladder=(4,), miss_weight=1.0)
        controller.observe(4, verdict(fp=10))
        controller.observe(4, verdict(fp=0))
        # Two cells averaging 5 FP each.
        assert controller.cost(4) == pytest.approx(5.0)

    def test_observe_rejects_off_ladder_threshold(self):
        controller = AdaptiveThresholdController(ladder=(4, 8))
        with pytest.raises(ValueError):
            controller.observe(6, verdict())


class TestWalk:
    def test_converges_to_global_minimum_of_unimodal_curve(self):
        ladder = (4, 8, 16, 32, 64)
        cost = {4: 50, 8: 20, 16: 10, 32: 25, 64: 80}
        controller = AdaptiveThresholdController(ladder=ladder)
        drive(controller, cost)
        assert controller.propose() is None
        assert controller.converged()
        assert controller.best_threshold() == 16

    def test_descends_from_a_bad_start(self):
        ladder = (4, 8, 16, 32, 64)
        cost = {4: 1, 8: 2, 16: 4, 32: 8, 64: 16}
        controller = AdaptiveThresholdController(ladder=ladder, start_index=4)
        drive(controller, cost)
        assert controller.best_threshold() == 4
        assert controller.converged()

    def test_plateau_terminates_without_oscillation(self):
        ladder = (4, 8, 16)
        cost = {4: 5, 8: 5, 16: 5}
        controller = AdaptiveThresholdController(ladder=ladder)
        evaluations = drive(controller, cost)
        # Equal-cost neighbours do not attract moves: three evaluations
        # (current + both neighbours), then convergence.
        assert len(evaluations) == 3
        assert controller.propose() is None

    def test_second_regime_refines_the_same_ladder(self):
        ladder = (4, 8, 16)
        controller = AdaptiveThresholdController(ladder=ladder)
        drive(controller, {4: 0, 8: 0, 16: 0})
        cells_before = controller.scores[8].cells
        # Regime two: rung 4 turns out expensive under different traffic.
        controller.observe(4, verdict(fp=100))
        controller.observe(8, verdict(fp=0))
        controller.observe(16, verdict(fp=0))
        assert controller.scores[8].cells == cells_before + 1
        assert controller.best_threshold() in (8, 16)

    def test_history_records_evaluation_order(self):
        ladder = (4, 8, 16)
        controller = AdaptiveThresholdController(ladder=ladder)
        evaluations = drive(controller, {4: 1, 8: 1, 16: 1})
        assert controller.history == evaluations
        # Current rung first, then lower neighbour, then upper.
        assert evaluations == [8, 4, 16]


class TestSummary:
    def test_summary_is_json_ready(self):
        import json

        controller = AdaptiveProbe(ladder=(4, 8, 16))
        drive(controller, {4: 3, 8: 1, 16: 2})
        summary = controller.summary()
        assert summary["mechanism"] == "probe"
        assert summary["best"] == 8
        assert summary["converged"] is True
        json.dumps(summary)  # must not raise
