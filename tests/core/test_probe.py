"""Edge-chasing probe detector: protocol unit tests.

Exercises the probe family on the paper's hand-built figure scenarios —
figure 2 is a dependency chain behind an advancing message (no deadlock,
so a precise detector must stay silent), figure 3 closes a true cycle —
plus digest/cadence/storm-guard mechanics on the transport directly.
"""

import pytest

from repro.analysis.deadlock import find_deadlocked
from repro.core.probe import ProbeDetection
from repro.core.registry import make_detector
from repro.figures.scenarios import build_figure2, build_figure3
from repro.network.config import DetectorConfig
from repro.network.message import Message
from repro.network.probes import DIGEST_MASK, roll_digest


# ----------------------------------------------------------------------
# Digest
# ----------------------------------------------------------------------
class TestRollDigest:
    def test_deterministic_and_64_bit(self):
        d1 = roll_digest(0, 3, 1, 42)
        d2 = roll_digest(0, 3, 1, 42)
        assert d1 == d2
        assert 0 <= d1 <= DIGEST_MASK

    def test_sensitive_to_every_component_and_order(self):
        base = roll_digest(0, 3, 1, 42)
        assert roll_digest(0, 4, 1, 42) != base
        assert roll_digest(0, 3, 2, 42) != base
        assert roll_digest(0, 3, 1, 43) != base
        ab = roll_digest(roll_digest(0, 1, 0, 5), 2, 0, 6)
        ba = roll_digest(roll_digest(0, 2, 0, 6), 1, 0, 5)
        assert ab != ba

    def test_chains_stay_in_range(self):
        digest = 0
        for step in range(100):
            digest = roll_digest(digest, step, step % 3, step * 7)
            assert 0 <= digest <= DIGEST_MASK


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
class TestConstruction:
    def test_registry_builds_probe_with_knobs(self):
        detector = make_detector(
            DetectorConfig(
                mechanism="probe",
                threshold=16,
                probe_max_hops=9,
                probe_max_outstanding=3,
            )
        )
        assert isinstance(detector, ProbeDetection)
        assert detector.has_probe_phase is True
        assert detector.can_sleep_blocked is True
        assert detector.transport.max_hops == 9
        assert detector.transport.max_outstanding == 3

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            ProbeDetection(threshold=16, max_hops=0)
        with pytest.raises(ValueError):
            ProbeDetection(threshold=16, max_outstanding=0)

    def test_blocked_deadline_is_next_cadence_point(self):
        detector = ProbeDetection(threshold=10)
        m = Message(0, 0, 1, 4, gen_cycle=0)
        m.blocked_since = 100
        assert detector.blocked_deadline(m, 100) == 110
        assert detector.blocked_deadline(m, 109) == 110
        assert detector.blocked_deadline(m, 110) == 120
        assert detector.blocked_deadline(m, 125) == 130
        # Always strictly in the future (a <= cycle deadline would keep
        # the event engine's parked header awake every cycle).
        for cycle in range(100, 150):
            assert detector.blocked_deadline(m, cycle) > cycle


# ----------------------------------------------------------------------
# Figure scenarios
# ----------------------------------------------------------------------
class TestFigureScenarios:
    def test_figure3_true_deadlock_detected_and_classified_true(self):
        scenario = build_figure3(mechanism="probe", threshold=8)
        sim = scenario.sim
        for _ in range(120):
            sim.step()
            if sim.stats.detections:
                break
        stats = sim.stats
        assert stats.detections >= 1
        assert stats.probe_cycle_detections >= 1
        assert stats.probe_deadend_detections == 0
        assert stats.true_detections >= 1
        assert stats.false_detections == 0
        # The elected victim is a member of the real deadlock cycle.
        victim = stats.detection_events[0].message_id
        assert scenario.name_of(victim) in {"B", "C", "D", "E"}

    def test_figure3_victim_is_youngest_on_cycle(self):
        scenario = build_figure3(mechanism="probe", threshold=8)
        sim = scenario.sim
        for _ in range(120):
            sim.step()
            if sim.stats.detections:
                break
        cycle_ids = {m.id for m in find_deadlocked(sim.active_messages)}
        victim = sim.stats.detection_events[0].message_id
        assert victim == max(cycle_ids | {victim})

    def test_figure2_dependency_chain_stays_silent(self):
        # B, C, D wait behind the advancing A: no deadlock ever forms, so
        # the edge-chasing protocol must not raise a single detection
        # while the crude timeout (same threshold) would fire on all
        # three.  This is the family's precision advantage in one test.
        scenario = build_figure2(mechanism="probe", threshold=8)
        sim = scenario.sim
        for _ in range(150):
            sim.step()
        assert sim.stats.detections == 0
        assert sim.stats.probe_launches > 0  # blocked long enough to probe
        assert sim.stats.probe_dropped_progress > 0  # probes died on escape

    def test_figure2_timeout_fires_where_probe_does_not(self):
        scenario = build_figure2(mechanism="timeout", threshold=8)
        sim = scenario.sim
        for _ in range(150):
            sim.step()
        assert sim.stats.detections > 0  # the contrast baseline

    def test_scan_and_event_agree_on_figure3(self):
        payloads = []
        for park in (False, True):
            scenario = build_figure3(mechanism="probe", threshold=8)
            sim = scenario.sim
            # All event-engine parking hangs off this one gate; forcing
            # it off before the first step yields exact scan semantics
            # (the scenario builder fixes the engine pre-construction).
            sim._park_enabled = park
            for _ in range(120):
                sim.step()
            payloads.append(
                sim.stats.to_dict(include_events=False, include_perf=False)
            )
        assert payloads[0] == payloads[1]


# ----------------------------------------------------------------------
# Storm guards
# ----------------------------------------------------------------------
class TestStormGuards:
    def test_outstanding_probes_bounded_with_tiny_cap(self):
        scenario = build_figure3(mechanism="probe", threshold=8)
        sim = scenario.sim
        sim.detector.transport.max_outstanding = 1
        for _ in range(120):
            sim.step()
            assert (
                sim.stats.probe_peak_outstanding
                <= sim.detector.transport.max_outstanding + 1
            )
            if sim.stats.detections:
                break
        # A single-lane cycle needs only one probe in flight: detection
        # still happens under the tightest possible storm guard.
        assert sim.stats.probe_cycle_detections >= 1

    def test_max_hops_one_prevents_cycle_detection(self):
        # The figure-3 cycle is 4 messages long; a 1-hop cap kills every
        # probe before it can return, so the detector stays silent (and
        # counts the drops).
        scenario = build_figure3(mechanism="probe", threshold=8)
        sim = scenario.sim
        sim.detector.transport.max_hops = 1
        for _ in range(120):
            sim.step()
        assert sim.stats.probe_cycle_detections == 0
        assert sim.stats.probe_dropped_hops > 0

    def test_relaunch_cadence_reprobes_while_blocked(self):
        scenario = build_figure2(mechanism="probe", threshold=8)
        sim = scenario.sim
        for _ in range(150):
            sim.step()
        # Blocked-but-not-deadlocked messages re-launch every threshold
        # cycles for as long as the episode lasts.
        assert sim.stats.probe_launches >= 3
