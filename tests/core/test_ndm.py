"""Unit tests for the NDM protocol state machine.

The figure-level behaviour (paper Figs. 2-5) is covered by
``tests/figures/test_scenarios.py``; these tests exercise the individual
rules of Section 3 through controlled micro-scenarios.
"""

import pytest

from repro.core.ndm import NewDetectionMechanism
from repro.figures.scenarios import (
    Scenario,
    build_figure2,
    place_worm,
    scenario_config,
)
from repro.network.simulator import Simulator
from repro.network.types import GPState


def fresh_scenario(mechanism="ndm", threshold=16, **kwargs) -> Scenario:
    return Scenario(Simulator(scenario_config(mechanism, threshold, **kwargs)))


class TestConstruction:
    def test_t1_must_be_positive(self):
        with pytest.raises(ValueError):
            NewDetectionMechanism(threshold=16, t1=0)

    def test_t1_must_be_below_t2(self):
        with pytest.raises(ValueError, match="t1 << t2"):
            NewDetectionMechanism(threshold=4, t1=4)

    def test_describe_mentions_variant(self):
        simple = NewDetectionMechanism(32)
        selective = NewDetectionMechanism(32, selective_promotion=True)
        assert "simple" in simple.describe()
        assert "selective" in selective.describe()


class TestFirstAttemptRule:
    """Paper Sec. 3: the G/P value set on the first unsuccessful attempt."""

    def test_g_when_requested_channel_active(self):
        # B blocks on a channel whose occupant (A) is advancing -> G.
        scenario = fresh_scenario()
        sim = scenario.sim
        a = place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=36)
        scenario.run(2)
        b = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=16)
        scenario.run(2)
        assert b.is_blocked()
        assert b.input_pc.gp is GPState.GENERATE

    def test_p_when_requested_channel_already_blocked(self):
        # C blocks on a channel whose occupant (B) was already blocked -> P.
        scenario = build_figure2()
        scenario.run(2)
        c = scenario.messages["C"]
        assert c.is_blocked()
        assert c.input_pc.gp is GPState.PROPAGATE

    def test_p_when_input_channel_has_free_lane(self):
        # With several VCs per input channel, an arriver that is not the
        # last one cannot produce deadlock yet -> P.
        config = scenario_config("ndm", 16)
        config.vcs_per_channel = 2
        scenario = Scenario(Simulator(config))
        sim = scenario.sim
        # Fill the single feasible output (2 VCs) with two advancing worms.
        place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=60)
        place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=60)
        scenario.run(2)
        # B arrives through an input channel with a free second lane.
        b = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=16)
        scenario.run(2)
        assert b.is_blocked()
        assert b.input_pc.occupied_count < len(b.input_pc.vcs)
        assert b.input_pc.gp is GPState.PROPAGATE


class TestDetectionRule:
    def test_no_detection_while_some_dt_clear(self):
        # The root keeps advancing: DT stays clear, no detection ever.
        scenario = fresh_scenario(threshold=8)
        sim = scenario.sim
        place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=200)
        scenario.run(2)
        b = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=16)
        scenario.run(100)  # A still draining: channel active throughout
        assert not b.marked_deadlocked
        assert scenario.detected_names() == []

    def test_no_detection_with_p_flag_even_after_t2(self):
        scenario = build_figure2(threshold=8)
        c = scenario.messages["C"]
        scenario.run(12)  # beyond t2=8; C's waited channel has been silent
        assert c.is_blocked()
        assert c.input_pc.gp is GPState.PROPAGATE
        assert not c.marked_deadlocked

    def test_detection_needs_g_and_all_dt(self):
        # Root advancing at arrival (G), then blocks forever -> detection
        # after roughly t2 more cycles.
        scenario = fresh_scenario(threshold=16, recovery="none")
        sim = scenario.sim
        # A: advancing but will block at (6,0) on a channel occupied by a
        # parked worm.
        place_worm(sim, (6, 0), [(0, +1)], (1, 0), length=60, parked=True)
        a = place_worm(sim, (3, 0), [(0, +1)], (7, 0), length=16)
        scenario.run(2)
        b = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=16)
        ok = scenario.run_until(lambda s: b.marked_deadlocked, limit=400)
        assert ok


class TestGPResets:
    def test_routed_message_resets_input_to_p(self):
        # Selective promotion keeps unrelated I-flag resets from
        # re-promoting the flag we are watching (the simple variant would).
        scenario = fresh_scenario(selective_promotion=True)
        sim = scenario.sim
        a = place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=24)
        scenario.run(2)
        b = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=16)
        scenario.run(2)
        input_pc = b.input_pc
        assert input_pc.gp is GPState.GENERATE
        # When A's tail frees the channel B routes into it; the routing
        # success must reset B's input channel flag to P.
        ok = scenario.run_until(lambda s: len(b.spans) > 2, limit=400)
        assert ok  # B advanced into the freed channel
        assert input_pc.gp is GPState.PROPAGATE

    def test_vc_release_resets_to_p(self):
        scenario = fresh_scenario()
        sim = scenario.sim
        a = place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=8)
        pc = a.spans[-1].pc
        pc.gp = GPState.GENERATE
        sim.free_worm(a, sim.cycle)
        assert pc.gp is GPState.PROPAGATE


class TestPromotionVariants:
    @pytest.mark.parametrize("selective", [False, True])
    def test_promotion_restores_g(self, selective):
        """Figure 5's relabeling works under both promotion variants."""
        from repro.figures.scenarios import build_figure5

        scenario, _ = build_figure5(
            "ndm", threshold=16, selective_promotion=selective
        )
        scenario.run(300)
        assert scenario.detected_names()[-1] == "C"

    def test_selective_waiter_registration(self):
        scenario = fresh_scenario(selective_promotion=True)
        sim = scenario.sim
        place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=36)
        scenario.run(2)
        b = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=16)
        scenario.run(2)
        (requested,) = b.feasible_pcs
        assert b.input_pc in requested.waiters

    def test_selective_waiter_cleanup_on_route(self):
        scenario = fresh_scenario(selective_promotion=True)
        sim = scenario.sim
        place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=16)
        scenario.run(2)
        b = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=16)
        scenario.run(2)
        (requested,) = b.feasible_pcs
        scenario.run_until(lambda s: not requested.waiters, limit=400)
        assert not requested.waiters
