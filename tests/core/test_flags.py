"""Tests for the derived flag views (paper Figs. 1 and 6)."""

from repro.core.flags import ChannelFlagView, PDMFlagView
from repro.network.channel import PhysicalChannel
from repro.network.types import GPState, PortKind


class FakeMessage:
    id = 1


def make_pc():
    return PhysicalChannel(0, PortKind.NETWORK, 0, 1, (0, +1), 3, 4)


class TestChannelFlagView:
    def test_counter_mirrors_inactivity(self):
        pc = make_pc()
        pc.vcs[0].allocate(FakeMessage(), 0)
        view = ChannelFlagView(pc, t1=1, t2=8)
        assert view.counter(5) == 5

    def test_i_flag_transitions_at_t1(self):
        pc = make_pc()
        pc.vcs[0].allocate(FakeMessage(), 0)
        view = ChannelFlagView(pc, t1=1, t2=8)
        assert not view.i_flag(1)
        assert view.i_flag(2)

    def test_dt_flag_transitions_at_t2(self):
        pc = make_pc()
        pc.vcs[0].allocate(FakeMessage(), 0)
        view = ChannelFlagView(pc, t1=1, t2=8)
        assert not view.dt_flag(8)
        assert view.dt_flag(9)

    def test_i_implies_not_dt_before_t2(self):
        pc = make_pc()
        pc.vcs[0].allocate(FakeMessage(), 0)
        view = ChannelFlagView(pc, t1=1, t2=8)
        assert view.i_flag(5) and not view.dt_flag(5)

    def test_flit_clears_both(self):
        pc = make_pc()
        pc.vcs[0].allocate(FakeMessage(), 0)
        pc.record_flit(20)
        view = ChannelFlagView(pc, t1=1, t2=8)
        assert not view.i_flag(20)
        assert not view.dt_flag(20)

    def test_unoccupied_channel_flags_clear_initially(self):
        view = ChannelFlagView(make_pc(), t1=1, t2=8)
        assert not view.i_flag(100)
        assert not view.dt_flag(100)

    def test_gp_flag_reads_channel_state(self):
        pc = make_pc()
        view = ChannelFlagView(pc)
        assert view.gp_flag() is GPState.PROPAGATE
        pc.gp = GPState.GENERATE
        assert view.gp_flag() is GPState.GENERATE


class TestPDMFlagView:
    def test_if_flag_transitions_at_threshold(self):
        pc = make_pc()
        pc.vcs[0].allocate(FakeMessage(), 0)
        view = PDMFlagView(pc, threshold=16)
        assert not view.if_flag(16)
        assert view.if_flag(17)

    def test_if_flag_cleared_by_flit(self):
        pc = make_pc()
        pc.vcs[0].allocate(FakeMessage(), 0)
        pc.record_flit(30)
        view = PDMFlagView(pc, threshold=16)
        assert not view.if_flag(31)

    def test_counter_exposed(self):
        pc = make_pc()
        pc.vcs[0].allocate(FakeMessage(), 0)
        assert PDMFlagView(pc).counter(7) == 7
