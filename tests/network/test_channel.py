"""Tests for virtual/physical channels and the inactivity monitor."""

import pytest

from repro.network.channel import NEVER, PhysicalChannel
from repro.network.types import GPState, PortKind


def make_pc(num_vcs=3, depth=4, kind=PortKind.NETWORK):
    return PhysicalChannel(0, kind, 0, 1, (0, +1), num_vcs, depth)


class FakeMessage:
    """Stands in for Message in channel-level tests."""

    def __init__(self, message_id=1):
        self.id = message_id


class TestVirtualChannel:
    def test_starts_free(self):
        pc = make_pc()
        assert all(vc.is_free for vc in pc.vcs)

    def test_allocate_sets_occupant(self):
        pc = make_pc()
        m = FakeMessage()
        pc.vcs[0].allocate(m, cycle=5)
        assert pc.vcs[0].occupant is m
        assert not pc.vcs[0].is_free

    def test_double_allocate_raises(self):
        pc = make_pc()
        pc.vcs[0].allocate(FakeMessage(1), cycle=0)
        with pytest.raises(RuntimeError):
            pc.vcs[0].allocate(FakeMessage(2), cycle=1)

    def test_release_clears_occupant_and_flits(self):
        pc = make_pc()
        vc = pc.vcs[0]
        vc.allocate(FakeMessage(), cycle=0)
        vc.flits = 3
        vc.release(cycle=10)
        assert vc.is_free
        assert vc.flits == 0

    def test_release_free_channel_raises(self):
        pc = make_pc()
        with pytest.raises(RuntimeError):
            pc.vcs[0].release(cycle=0)

    def test_capacity_recorded(self):
        pc = make_pc(depth=7)
        assert all(vc.capacity == 7 for vc in pc.vcs)


class TestOccupancyCounting:
    def test_occupied_count_tracks_allocations(self):
        pc = make_pc()
        pc.vcs[0].allocate(FakeMessage(1), 0)
        pc.vcs[1].allocate(FakeMessage(2), 0)
        assert pc.occupied_count == 2
        pc.vcs[0].release(5)
        assert pc.occupied_count == 1

    def test_has_free_vc(self):
        pc = make_pc(num_vcs=2)
        assert pc.has_free_vc()
        pc.vcs[0].allocate(FakeMessage(1), 0)
        pc.vcs[1].allocate(FakeMessage(2), 0)
        assert not pc.has_free_vc()

    def test_free_vcs_lists_only_free(self):
        pc = make_pc(num_vcs=3)
        pc.vcs[1].allocate(FakeMessage(), 0)
        assert pc.vcs[1] not in pc.free_vcs()
        assert len(pc.free_vcs()) == 2


class TestInactivityMonitor:
    def test_unoccupied_channel_reports_frozen_zero(self):
        pc = make_pc()
        assert pc.inactivity(100) == 0

    def test_counts_from_occupancy(self):
        pc = make_pc()
        pc.vcs[0].allocate(FakeMessage(), cycle=10)
        assert pc.inactivity(10) == 0
        assert pc.inactivity(15) == 5

    def test_flit_resets_counter(self):
        pc = make_pc()
        pc.vcs[0].allocate(FakeMessage(), cycle=0)
        pc.record_flit(8)
        assert pc.inactivity(8) == 0
        assert pc.inactivity(11) == 3

    def test_second_allocation_does_not_reset(self):
        pc = make_pc()
        pc.vcs[0].allocate(FakeMessage(1), cycle=0)
        pc.vcs[1].allocate(FakeMessage(2), cycle=9)
        # Counter keeps counting from the first occupancy.
        assert pc.inactivity(10) == 10

    def test_counter_freezes_across_unoccupied_gap(self):
        # The hardware register keeps its value while the increment is
        # gated off (paper Fig. 6); crucial for the Figure 5 situation.
        pc = make_pc(num_vcs=1)
        pc.vcs[0].allocate(FakeMessage(1), cycle=0)
        pc.vcs[0].release(cycle=20)  # counter frozen at 20
        assert pc.inactivity(300) == 20
        pc.vcs[0].allocate(FakeMessage(2), cycle=300)
        assert pc.inactivity(300) == 20
        assert pc.inactivity(305) == 25

    def test_flit_after_resume_resets(self):
        pc = make_pc(num_vcs=1)
        pc.vcs[0].allocate(FakeMessage(1), cycle=0)
        pc.vcs[0].release(cycle=50)
        pc.vcs[0].allocate(FakeMessage(2), cycle=60)
        pc.record_flit(61)
        assert pc.inactivity(63) == 2

    def test_frozen_counter_small_after_active_release(self):
        pc = make_pc(num_vcs=1)
        pc.vcs[0].allocate(FakeMessage(1), cycle=0)
        pc.record_flit(30)
        pc.vcs[0].release(cycle=31)
        assert pc.inactivity(500) == 1


class TestIResetHook:
    def test_hook_fires_when_inactive_channel_transmits(self):
        pc = make_pc()
        fired = []
        pc.i_threshold = 1
        pc.on_i_reset = lambda channel, cycle: fired.append(cycle)
        pc.vcs[0].allocate(FakeMessage(), cycle=0)
        pc.record_flit(10)  # inactivity was 10 > 1 -> I flag was set
        assert fired == [10]

    def test_hook_skipped_for_streaming_flits(self):
        pc = make_pc()
        fired = []
        pc.i_threshold = 1
        pc.on_i_reset = lambda channel, cycle: fired.append(cycle)
        pc.vcs[0].allocate(FakeMessage(), cycle=0)
        pc.record_flit(0)
        pc.record_flit(1)
        pc.record_flit(2)
        assert fired == []

    def test_hook_skipped_when_unoccupied(self):
        pc = make_pc()
        fired = []
        pc.i_threshold = 1
        pc.on_i_reset = lambda channel, cycle: fired.append(cycle)
        pc.record_flit(50)
        assert fired == []

    def test_no_hook_without_threshold(self):
        pc = make_pc()
        pc.vcs[0].allocate(FakeMessage(), cycle=0)
        pc.record_flit(10)  # must not raise


class TestBookkeepingGuards:
    def test_negative_occupancy_raises(self):
        pc = make_pc()
        with pytest.raises(RuntimeError):
            pc.note_released(cycle=0)

    def test_never_sentinel_is_far_past(self):
        assert NEVER < -(10**15)

    def test_gp_starts_propagate(self):
        assert make_pc().gp is GPState.PROPAGATE

    def test_describe_kinds(self):
        assert "net" in make_pc().describe()
        inj = PhysicalChannel(1, PortKind.INJECTION, None, 4, None, 1, 4)
        assert "inj" in inj.describe()
        ej = PhysicalChannel(2, PortKind.EJECTION, 4, None, None, 1, 4)
        assert "ej" in ej.describe()
