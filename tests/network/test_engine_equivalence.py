"""Bit-identical equivalence of the event-driven and reference engines.

The event engine (``engine="event"``) parks blocked headers and frozen
worms between wakeup events instead of re-scanning them every cycle.
These tests are the gate for that optimization: for every detector,
recovery scheme and load regime below, a run under each engine must
produce *byte-identical* simulated behaviour — every stats counter
(``to_dict(include_perf=False)``; engine telemetry legitimately differs),
every traced event in order (including detection cycles), and the same
final message population.
"""

from __future__ import annotations

import pytest

from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator
from repro.network.tracing import Tracer


def _config(**overrides) -> SimulationConfig:
    config = SimulationConfig(
        radix=4,
        dimensions=2,
        warmup_cycles=100,
        measure_cycles=600,
        seed=20,
    )
    config.traffic.injection_rate = 0.4  # beyond saturation for 16 nodes
    for key, value in overrides.items():
        if key == "mechanism":
            config.detector.mechanism = value
        elif key == "threshold":
            config.detector.threshold = value
        elif key == "selective_promotion":
            config.detector.selective_promotion = value
        elif key == "injection_rate":
            config.traffic.injection_rate = value
        elif key == "lengths":
            config.traffic.lengths = value
        else:
            setattr(config, key, value)
    return config


def _run(config: SimulationConfig, engine: str):
    sim = Simulator(config.replace(engine=engine))
    sim.tracer = Tracer(capacity=0)  # unbounded: every event, in order
    stats = sim.run()
    return sim, stats


def assert_equivalent(config: SimulationConfig) -> None:
    sim_scan, stats_scan = _run(config, "scan")
    sim_event, stats_event = _run(config, "event")
    # Full behavioural stats, detection events included.
    assert stats_scan.to_dict(include_perf=False) == stats_event.to_dict(
        include_perf=False
    )
    # Full event streams, in order: inject/route/block/deliver/detect/recover.
    assert list(sim_scan.tracer.events) == list(sim_event.tracer.events)
    # Same in-flight population at the end (same ids, same order).
    assert [m.id for m in sim_scan.active_messages] == [
        m.id for m in sim_event.active_messages
    ]
    assert [m.id for m in sim_scan.pending_route] == [
        m.id for m in sim_event.pending_route
    ]
    sim_event.check_invariants()


CASES = {
    "ndm": dict(mechanism="ndm", threshold=16),
    "ndm-selective": dict(
        mechanism="ndm", threshold=16, selective_promotion=True
    ),
    "ndm-low-vc": dict(mechanism="ndm", threshold=16, vcs_per_channel=1),
    "pdm": dict(mechanism="pdm", threshold=16),
    "timeout": dict(mechanism="timeout", threshold=24),
    "hybrid": dict(mechanism="hybrid", threshold=8),
    "source-age": dict(mechanism="source-age", threshold=200),
    "none": dict(mechanism="none"),
    "recovery-reinject": dict(
        mechanism="ndm", threshold=16, recovery="progressive-reinject"
    ),
    "recovery-regressive": dict(
        mechanism="ndm", threshold=16, recovery="regressive"
    ),
    "recovery-none": dict(mechanism="ndm", threshold=16, recovery="none"),
    "drain": dict(mechanism="ndm", threshold=16, drain_cycles=400),
    "long-messages": dict(mechanism="ndm", threshold=48, lengths="l"),
    "mesh": dict(mechanism="ndm", threshold=16, topology="mesh"),
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_engines_bit_identical(case):
    assert_equivalent(_config(**CASES[case]))


def test_engines_bit_identical_saturated_torus():
    """Heavier 64-node beyond-saturation run, the benchmark's regime."""
    config = _config(
        radix=8,
        mechanism="ndm",
        threshold=32,
        injection_rate=1.0,
        warmup_cycles=100,
        measure_cycles=400,
    )
    assert_equivalent(config)


def test_engines_bit_identical_saturated_16x16():
    """256-node version of the saturated regime (benchmark's 16x16 case).

    Catches equivalence bugs in costs that scale with network size —
    channel tables, mask tables, router fan-out — rather than with the
    active-message population.
    """
    config = _config(
        radix=16,
        mechanism="ndm",
        threshold=32,
        vcs_per_channel=2,
        injection_rate=0.8,
        recovery="none",
        warmup_cycles=0,
        measure_cycles=200,
    )
    assert_equivalent(config)


def test_engines_bit_identical_flowing_progressive_recovery():
    """Healthy traffic plus progressive recovery (the harness's flowing
    regime): deadlocks form, recover in place, and traffic keeps moving,
    so park/wake churn interleaves with real flit work."""
    config = _config(
        radix=8,
        mechanism="ndm",
        threshold=16,
        vcs_per_channel=3,
        injection_rate=0.5,
        recovery="progressive",
        warmup_cycles=100,
        measure_cycles=600,
    )
    assert_equivalent(config)


def test_precise_ndm_never_parks():
    """ndm-precise records per-attempt witnesses, so the event engine
    must keep re-attempting blocked headers (can_sleep_blocked=False)."""
    config = _config(mechanism="ndm-precise", threshold=16)
    sim, _ = _run(config, "event")
    assert sim.stats.engine_counters["route_parks"] == 0
    assert_equivalent(config)


def test_event_engine_actually_parks():
    """Guard against the fast path silently degrading to a full scan."""
    config = _config(
        mechanism="ndm", threshold=16, vcs_per_channel=1, injection_rate=0.6
    )
    _, stats = _run(config, "event")
    assert stats.engine_counters["route_parks"] > 0
    assert stats.engine_counters["route_parked_skips"] > 0
    assert stats.engine_counters["move_parks"] > 0
    assert stats.engine_counters["move_parked_skips"] > 0


def test_scan_engine_never_parks():
    config = _config(mechanism="ndm", threshold=16)
    _, stats = _run(config, "scan")
    assert stats.engine_counters["route_parks"] == 0
    assert stats.engine_counters["route_parked_skips"] == 0
    assert stats.engine_counters["move_parks"] == 0
    assert stats.engine_counters["move_parked_skips"] == 0


def test_perf_fields_excluded_from_comparison_form():
    config = _config(mechanism="ndm", threshold=16)
    _, stats = _run(config, "event")
    lean = stats.to_dict(include_perf=False)
    assert "engine" not in lean
    assert "phase_time" not in lean
    assert "engine_counters" not in lean
    full = stats.to_dict()
    assert full["engine"] == "event"
    assert set(full["phase_time"]) == {
        "checks",
        "probes",
        "routing",
        "movement",
        "injection",
        "generation",
    }


def test_engine_validated():
    config = _config()
    config.engine = "warp"
    with pytest.raises(ValueError, match="engine"):
        config.validate()
