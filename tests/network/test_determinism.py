"""Cross-environment determinism of a (config, seed) pair.

A run must be bit-reproducible on any host.  Before the fix, traffic
generation drew per-cycle source sets from ``numpy`` when it was
importable and from the seeded ``random.Random`` stream otherwise, so
the same (config, seed) produced *different* runs depending on whether
numpy happened to be installed — and the campaign cache, keyed only by
the config hash, would happily serve one environment's results to the
other.  Generation is now backend-free: the pure-Python Bernoulli draws
are the only path.

``test_generation_identical_without_numpy`` fails against the old code
(in this environment numpy *is* installed, so the old fast path kicks in
and diverges from the numpy-blocked subprocess) and passes with the fix.
"""

from __future__ import annotations

import ast
import hashlib
import inspect
import json
import os
import subprocess
import sys
from pathlib import Path

import repro.network.simulator as simulator_module
from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator

_CONFIG_KWARGS = dict(
    radix=4,
    dimensions=2,
    warmup_cycles=50,
    measure_cycles=300,
    seed=99,
)
_RATE = 0.3


def _digest() -> str:
    config = SimulationConfig(**_CONFIG_KWARGS)
    config.traffic.injection_rate = _RATE
    stats = Simulator(config).run()
    payload = stats.to_dict(include_events=False, include_perf=False)
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def test_same_seed_same_run():
    assert _digest() == _digest()


def test_simulator_does_not_import_numpy():
    """Generation must not depend on an optional backend."""
    source = inspect.getsource(simulator_module)
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            assert not any(a.name.split(".")[0] == "numpy" for a in node.names)
        elif isinstance(node, ast.ImportFrom):
            assert (node.module or "").split(".")[0] != "numpy"


def test_generation_identical_without_numpy():
    """The digest must match in a subprocess where numpy cannot import."""
    script = f"""
import sys

class _Block:
    def find_module(self, name, path=None):
        if name == "numpy" or name.startswith("numpy."):
            return self
    def load_module(self, name):
        raise ImportError("numpy blocked for determinism test")

sys.meta_path.insert(0, _Block())

import hashlib, json
from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator

config = SimulationConfig(**{_CONFIG_KWARGS!r})
config.traffic.injection_rate = {_RATE!r}
stats = Simulator(config).run()
payload = stats.to_dict(include_events=False, include_perf=False)
print(hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest())
"""
    src_dir = Path(simulator_module.__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(src_dir), env.get("PYTHONPATH")])
    )
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env=env,
    )
    assert result.stdout.strip() == _digest()


def _digest_under_hashseed(hashseed: str) -> str:
    """Run a saturated simulation in a subprocess with a fixed hash seed.

    The load is pushed past saturation so blocked headers actually park in
    the per-channel waiter collections — the code path whose iteration
    order used to depend on object hashes.
    """
    script = f"""
import hashlib, json
from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator

config = SimulationConfig(**{_CONFIG_KWARGS!r})
config.traffic.injection_rate = 0.6
stats = Simulator(config).run()
payload = stats.to_dict(include_events=False, include_perf=False)
print(hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest())
"""
    src_dir = Path(simulator_module.__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(src_dir), env.get("PYTHONPATH")])
    )
    env["PYTHONHASHSEED"] = hashseed
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env=env,
    )
    return result.stdout.strip()


def test_run_identical_across_hash_seeds():
    """Waiter wakeup order must not depend on PYTHONHASHSEED.

    Before waiter sets became insertion-ordered dicts, the event engine
    woke parked headers in ``set`` iteration order — i.e. object-hash
    order — so runs could diverge between interpreters with different
    hash randomization.  Two subprocesses with different explicit hash
    seeds must produce byte-identical stats.
    """
    assert _digest_under_hashseed("0") == _digest_under_hashseed("4242")
