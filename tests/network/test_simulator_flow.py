"""Flit-level flow control: bandwidth sharing, chaining, tail release."""


from repro.network.message import Message
from repro.network.simulator import Simulator
from repro.network.types import MessageStatus
from tests.conftest import small_config


def quiet_config(**overrides):
    config = small_config(**overrides)
    config.traffic.injection_rate = 0.0
    config.ground_truth_interval = 0
    return config


def send_one(sim, source, dest, length):
    m = Message(sim._next_message_id, source, dest, length, sim.cycle)
    sim._next_message_id += 1
    sim.enqueue_source(m, source)
    return m


class TestPhysicalChannelBandwidth:
    def test_one_flit_per_channel_per_cycle(self):
        """Two long worms sharing one ring channel deliver at half rate each."""
        config = quiet_config()
        sim = Simulator(config)
        topo = sim.topology
        # Both messages must cross the same single minimal channel
        # (0,0)->(1,0): sources feed it from the same node 0 via injection,
        # destinations two hops straight ahead.
        dest = topo.node_at((2, 0))
        m1 = send_one(sim, 0, dest, 30)
        m2 = send_one(sim, 0, dest, 30)
        for _ in range(400):
            sim.step()
        assert m1.status is MessageStatus.DELIVERED
        assert m2.status is MessageStatus.DELIVERED
        # Sharing the channel: the later finisher needs at least ~2x the
        # solo drain time of one message.
        solo = Simulator(config)
        s1 = send_one(solo, 0, dest, 30)
        for _ in range(400):
            solo.step()
        later = max(m1.deliver_cycle, m2.deliver_cycle)
        assert later >= s1.deliver_cycle + 20

    def test_vc_multiplexing_interleaves(self):
        """With both worms active, neither starves (round-robin-ish)."""
        config = quiet_config()
        sim = Simulator(config)
        dest = sim.topology.node_at((2, 0))
        m1 = send_one(sim, 0, dest, 40)
        m2 = send_one(sim, 0, dest, 40)
        for _ in range(60):
            sim.step()
        # Both made progress (no starvation while multiplexed).
        assert m1.flits_delivered + m1.flits_in_network() > 0
        assert m2.flits_delivered + m2.flits_in_network() > 0


class TestWormBehaviour:
    def test_worm_spans_shrink_as_tail_passes(self):
        config = quiet_config()
        sim = Simulator(config)
        dest = sim.topology.node_at((3, 0))
        m = send_one(sim, 0, dest, 6)
        max_spans = 0
        while m.status is not MessageStatus.DELIVERED and sim.cycle < 300:
            sim.step()
            max_spans = max(max_spans, len(m.spans))
        assert m.status is MessageStatus.DELIVERED
        assert max_spans >= 3  # worm stretched over several channels
        assert m.spans == []  # everything released

    def test_blocked_worm_buffers_fill(self):
        """A worm blocked behind another stops once its buffers are full."""
        config = quiet_config(vcs_per_channel=1)
        sim = Simulator(config)
        dest = sim.topology.node_at((1, 0))  # offset 1: single minimal path
        m1 = send_one(sim, 0, dest, 60)
        for _ in range(8):
            sim.step()
        m2 = send_one(sim, 0, dest, 20)
        for _ in range(40):
            sim.step()
        # m2 cannot enter the single network VC occupied by m1: its header
        # is still at the injection stage, buffers at most full.
        assert m2.status in (MessageStatus.QUEUED, MessageStatus.IN_NETWORK)
        if m2.spans:
            assert all(vc.flits <= vc.capacity for vc in m2.spans)
        assert m1.status in (MessageStatus.IN_NETWORK, MessageStatus.DELIVERED)

    def test_header_waits_for_free_vc(self):
        config = quiet_config(vcs_per_channel=1)
        sim = Simulator(config)
        dest = sim.topology.node_at((1, 0))  # offset 1: single minimal path
        m1 = send_one(sim, 0, dest, 80)
        for _ in range(10):
            sim.step()
        m2 = send_one(sim, 0, dest, 10)
        for _ in range(30):
            sim.step()
        assert m2.is_blocked() or m2.status is MessageStatus.QUEUED
        # m2 eventually delivers once m1's tail frees the channel.
        for _ in range(400):
            sim.step()
        assert m2.status is MessageStatus.DELIVERED


class TestEjection:
    def test_ejection_bandwidth_limits_hotspot(self):
        """More simultaneous senders to one node than ejection ports."""
        config = quiet_config(ejection_ports=1)
        sim = Simulator(config)
        topo = sim.topology
        hot = topo.node_at((2, 2))
        messages = []
        for src_coords in ((1, 2), (3, 2), (2, 1), (2, 3)):
            src = topo.node_at(src_coords)
            messages.append(send_one(sim, src, hot, 12))
        for _ in range(500):
            sim.step()
        assert all(m.status is MessageStatus.DELIVERED for m in messages)
        # 4 x 12 flits through one 1-flit/cycle ejection port: >= 48 cycles.
        assert max(m.deliver_cycle for m in messages) >= 48

    def test_ejection_channels_released(self):
        config = quiet_config()
        sim = Simulator(config)
        m = send_one(sim, 0, 5, 8)
        for _ in range(100):
            sim.step()
        assert m.status is MessageStatus.DELIVERED
        for router in sim.routers:
            for pc in router.ejection_pcs:
                assert pc.occupied_count == 0


class TestCrossbarInputLimit:
    def test_input_limit_slows_shared_input(self):
        """With the per-input-port crossbar, VCs of one input serialize."""

        def run(limit):
            config = quiet_config(crossbar_input_limit=limit, vcs_per_channel=3)
            sim = Simulator(config)
            topo = sim.topology
            # Two worms entering node (1,0) through the same channel
            # (0,0)->(1,0), then diverging to different destinations.
            d1 = topo.node_at((1, 1))
            d2 = topo.node_at((1, 3))
            m1 = send_one(sim, 0, d1, 24)
            m2 = send_one(sim, 0, d2, 24)
            for _ in range(400):
                sim.step()
            assert m1.status is MessageStatus.DELIVERED
            assert m2.status is MessageStatus.DELIVERED
            return max(m1.deliver_cycle, m2.deliver_cycle)

        assert run(True) >= run(False)


class TestRecoveryLane:
    def test_detected_message_delivered_via_lane(self):
        from repro.figures.scenarios import build_figure4

        scenario = build_figure4(threshold=8)
        scenario.run_until(
            lambda s: s.messages["B"].status is MessageStatus.DELIVERED,
            limit=2000,
        )
        b = scenario.messages["B"]
        assert b.status is MessageStatus.DELIVERED
        assert b.recoveries == 1
        assert scenario.sim.stats.recoveries == 1
