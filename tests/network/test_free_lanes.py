"""Unit tests for the incremental free-lane structure.

Every :class:`PhysicalChannel` maintains ``free_mask`` (bit ``i`` set iff
lane ``i`` is unoccupied) as two integer ops in VirtualChannel
allocate/release, plus a precomputed ``lanes_by_mask`` table mapping each
mask to its free-lane tuple in lane-index order.  The contract: for any
allocate/release history, ``free_lanes`` must equal what a fresh scan of
``vcs`` would collect — in the same order, because the routing phase
draws from it with ``rng.choice`` and a different order would shift the
RNG stream and break bit-identical equivalence with the scan engine.
"""

from __future__ import annotations

import random

import pytest

from repro.network.channel import MASK_TABLE_MAX_VCS, PhysicalChannel
from repro.network.config import SimulationConfig
from repro.network.message import Message
from repro.network.simulator import Simulator
from repro.network.types import PortKind


def make_pc(num_vcs: int) -> PhysicalChannel:
    return PhysicalChannel(
        index=0,
        kind=PortKind.NETWORK,
        src_node=0,
        dst_node=1,
        direction=(0, 1),
        num_vcs=num_vcs,
        buffer_depth=4,
    )


def make_message(i: int) -> Message:
    return Message(message_id=i, source=0, dest=1, length=4, gen_cycle=0)


def scan_free(pc: PhysicalChannel):
    """What the pre-change code computed every routing attempt."""
    return tuple(vc for vc in pc.vcs if vc.occupant is None)


def assert_consistent(pc: PhysicalChannel) -> None:
    free = scan_free(pc)
    assert pc.free_lanes == free
    assert pc.free_vcs() == list(free)
    assert bin(pc.free_mask).count("1") == len(free)
    assert pc.occupied_count == len(pc.vcs) - len(free)
    if pc.lanes_by_mask is not None:
        assert pc.lanes_by_mask[pc.free_mask] == free


# ----------------------------------------------------------------------
# Table construction
# ----------------------------------------------------------------------
def test_initial_state_all_free():
    pc = make_pc(3)
    assert pc.free_mask == 0b111
    assert pc.free_lanes == tuple(pc.vcs)
    assert_consistent(pc)


def test_mask_table_entries_are_in_lane_index_order():
    pc = make_pc(4)
    assert pc.lanes_by_mask is not None
    assert len(pc.lanes_by_mask) == 16
    for mask, lanes in enumerate(pc.lanes_by_mask):
        indices = [vc.index for vc in lanes]
        assert indices == [i for i in range(4) if mask & (1 << i)]
        assert indices == sorted(indices)


def test_wide_channel_skips_table_but_keeps_contract():
    pc = make_pc(MASK_TABLE_MAX_VCS + 1)
    assert pc.lanes_by_mask is None  # 2**n table would be too large
    assert_consistent(pc)
    m = make_message(0)
    pc.vcs[4].allocate(m, cycle=0)
    pc.vcs[0].allocate(make_message(1), cycle=0)
    assert_consistent(pc)
    assert [vc.index for vc in pc.free_lanes] == [1, 2, 3, 5, 6, 7, 8]
    pc.vcs[4].release(cycle=1)
    assert_consistent(pc)


# ----------------------------------------------------------------------
# Allocate / release maintenance
# ----------------------------------------------------------------------
def test_allocate_release_updates_mask():
    pc = make_pc(3)
    m0, m1 = make_message(0), make_message(1)
    pc.vcs[1].allocate(m0, cycle=0)
    assert pc.free_mask == 0b101
    assert [vc.index for vc in pc.free_lanes] == [0, 2]
    pc.vcs[0].allocate(m1, cycle=0)
    assert pc.free_mask == 0b100
    assert [vc.index for vc in pc.free_lanes] == [2]
    pc.vcs[1].release(cycle=2)
    assert pc.free_mask == 0b110
    assert [vc.index for vc in pc.free_lanes] == [1, 2]
    assert_consistent(pc)


def test_double_allocate_and_double_release_still_raise():
    pc = make_pc(2)
    pc.vcs[0].allocate(make_message(0), cycle=0)
    with pytest.raises(RuntimeError):
        pc.vcs[0].allocate(make_message(1), cycle=0)
    pc.vcs[0].release(cycle=1)
    with pytest.raises(RuntimeError):
        pc.vcs[0].release(cycle=1)
    assert_consistent(pc)


@pytest.mark.parametrize("num_vcs", [1, 2, 3, 8, 9])
def test_random_churn_keeps_mask_and_scan_identical(num_vcs):
    """Arbitrary allocate/release interleavings (including the
    out-of-order releases produced by recovery teardown) never let the
    incremental structure drift from the scan."""
    rng = random.Random(99 + num_vcs)
    pc = make_pc(num_vcs)
    next_id = 0
    for step in range(300):
        free = [vc for vc in pc.vcs if vc.occupant is None]
        held = [vc for vc in pc.vcs if vc.occupant is not None]
        if held and (not free or rng.random() < 0.5):
            # Teardown-style release: any held lane, not just the oldest.
            rng.choice(held).release(cycle=step)
        else:
            rng.choice(free).allocate(make_message(next_id), cycle=step)
            next_id += 1
        assert_consistent(pc)


# ----------------------------------------------------------------------
# End-to-end: recovery teardown in a real simulation
# ----------------------------------------------------------------------
def _post_run_consistency(recovery: str) -> None:
    config = SimulationConfig(
        radix=4,
        dimensions=2,
        vcs_per_channel=1,
        warmup_cycles=50,
        measure_cycles=400,
        seed=20,
        recovery=recovery,
    )
    config.traffic.injection_rate = 0.6
    config.detector.mechanism = "ndm"
    config.detector.threshold = 16
    sim = Simulator(config)
    stats = sim.run()
    # The regime must actually exercise teardown for the test to bite.
    if recovery != "none":
        assert stats.messages_detected > 0
    sim.check_invariants()
    for pc in sim.channels:
        assert_consistent(pc)


@pytest.mark.parametrize(
    "recovery", ["progressive", "progressive-reinject", "regressive"]
)
def test_free_lanes_survive_recovery_teardown(recovery):
    _post_run_consistency(recovery)
