"""Regression tests: the drain loop must wait for recovery traffic.

Before the fix, ``Simulator.run()`` kept draining only while
``active_messages`` or a source queue was non-empty.  Messages sitting in
the recovery-lane delivery heap (``_recovery_deliveries``) or in the
recovery re-injection queues (``recovery_queues``) were invisible to that
condition, so a run whose last in-flight messages were mid-recovery at
drain time exited early and silently dropped them (missing deliveries,
violating message conservation).  Both tests below fail against the old
condition and pass with the fixed one.
"""

from __future__ import annotations

from tests.conftest import small_config

from repro.network.message import Message
from repro.network.simulator import Simulator
from repro.network.types import MessageStatus


def _idle_config(drain_cycles: int):
    """No traffic at all: warmup 0, one measured cycle, then drain."""
    config = small_config(
        warmup_cycles=0, measure_cycles=1, drain_cycles=drain_cycles
    )
    config.traffic.injection_rate = 0.0
    return config


def test_drain_waits_for_recovery_lane_deliveries():
    sim = Simulator(_idle_config(drain_cycles=50))
    m = Message(0, 0, 3, 4, 0)
    # As ProgressiveRecovery does: worm torn down, message in the node's
    # software buffer until the recovery lane finishes at ready_cycle.
    sim.schedule_recovery_delivery(m, ready_cycle=10)
    stats = sim.run()
    assert m.status is MessageStatus.DELIVERED
    assert stats.delivered == 1
    # The run must actually have kept stepping past the measurement end.
    assert stats.cycles_run >= 10


def test_drain_waits_for_recovery_reinjection_queues():
    """A worm absorbed for re-injection just as the network empties.

    ``ProgressiveReinjection`` queues the absorbed worm during the checks
    phase; re-injection happens in the *injection* phase of a later cycle.
    If the last in-flight message delivers in between, the old drain
    condition saw an empty network and exited with the worm still queued.
    The subclass below reproduces that window deterministically: it
    enqueues the recovery message at the end of the step in which the
    network drains.
    """
    config = _idle_config(drain_cycles=200)
    boundary = config.warmup_cycles + config.measure_cycles
    m2 = Message(1, 0, 3, 4, 0)

    class _AbsorbAtDrain(Simulator):
        seeded = False

        def step(self):
            super().step()
            if (
                not self.seeded
                and self.cycle > boundary
                and not self.active_messages
            ):
                self.seeded = True
                m2.reset_for_reinjection(0, self.cycle)
                self.enqueue_recovery(m2, 0)

    sim = _AbsorbAtDrain(config)
    # One ordinary message keeps the drain loop alive until it delivers.
    m1 = Message(0, 0, 5, 4, 0)
    sim.source_queues[0].append(m1)
    sim._nodes_with_source.add(0)
    stats = sim.run()
    assert sim.seeded
    assert m1.status is MessageStatus.DELIVERED
    assert m2.status is MessageStatus.DELIVERED
    assert stats.delivered == 2


def test_drain_still_terminates_when_truly_empty():
    sim = Simulator(_idle_config(drain_cycles=500))
    stats = sim.run()
    # Nothing in flight anywhere: the drain loop must exit immediately.
    assert stats.cycles_run == 1
    assert stats.delivered == 0
