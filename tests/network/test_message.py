"""Tests for the worm/message representation."""

import pytest

from repro.network.channel import PhysicalChannel
from repro.network.message import Message, describe_path
from repro.network.types import MessageStatus, PortKind


def make_pc(index=0, kind=PortKind.NETWORK, src=0, dst=1):
    return PhysicalChannel(index, kind, src, dst, (0, +1), 2, 4)


class TestConstruction:
    def test_initial_state(self):
        m = Message(7, source=0, dest=5, length=16, gen_cycle=3)
        assert m.status is MessageStatus.QUEUED
        assert m.flits_at_source == 16
        assert m.flits_delivered == 0
        assert m.spans == []
        assert m.inject_node == 0

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            Message(0, 0, 1, 0, 0)

    def test_rejects_self_destination(self):
        with pytest.raises(ValueError):
            Message(0, 3, 3, 8, 0)

    def test_repr_is_informative(self):
        m = Message(1, 0, 5, 16, 0)
        assert "0->5" in repr(m)


class TestPositionQueries:
    def test_header_vc_none_at_source(self):
        m = Message(0, 0, 1, 4, 0)
        assert m.header_vc is None
        assert m.header_router() is None
        assert m.input_pc is None

    def test_header_router_network_channel(self):
        m = Message(0, 0, 5, 4, 0)
        pc = make_pc(src=2, dst=3)
        pc.vcs[0].allocate(m, 0)
        m.spans = [pc.vcs[0]]
        assert m.header_router() == 3
        assert m.input_pc is pc

    def test_header_router_ejection_channel(self):
        m = Message(0, 0, 5, 4, 0)
        pc = PhysicalChannel(0, PortKind.EJECTION, 5, None, None, 1, 4)
        pc.vcs[0].allocate(m, 0)
        m.spans = [pc.vcs[0]]
        assert m.header_router() == 5

    def test_flits_in_network_sums_spans(self):
        m = Message(0, 0, 5, 10, 0)
        a, b = make_pc(0), make_pc(1, src=1, dst=2)
        a.vcs[0].allocate(m, 0)
        b.vcs[0].allocate(m, 0)
        a.vcs[0].flits = 4
        b.vcs[0].flits = 2
        m.spans = [a.vcs[0], b.vcs[0]]
        assert m.flits_in_network() == 6


class TestBlockedPredicate:
    def _in_network_message(self):
        m = Message(0, 0, 5, 8, 0)
        m.status = MessageStatus.IN_NETWORK
        return m

    def test_not_blocked_before_first_attempt(self):
        m = self._in_network_message()
        assert not m.is_blocked()

    def test_blocked_after_failed_attempt(self):
        m = self._in_network_message()
        m.first_attempt_done = True
        assert m.is_blocked()

    def test_not_blocked_with_allocation(self):
        m = self._in_network_message()
        m.first_attempt_done = True
        m.allocated_vc = make_pc().vcs[0]
        assert not m.is_blocked()

    def test_not_blocked_when_queued(self):
        m = Message(0, 0, 5, 8, 0)
        m.first_attempt_done = True
        assert not m.is_blocked()


class TestResets:
    def test_reset_routing_state(self):
        m = Message(0, 0, 5, 8, 0)
        m.first_attempt_done = True
        m.blocked_since = 10
        m.feasible_pcs = (make_pc(),)
        m.reset_routing_state()
        assert not m.first_attempt_done
        assert m.blocked_since is None
        assert m.feasible_pcs == ()

    def test_reset_for_reinjection(self):
        m = Message(0, 2, 5, 8, 0)
        m.status = MessageStatus.IN_NETWORK
        m.flits_at_source = 0
        m.flits_delivered = 3
        m.marked_deadlocked = True
        m.reset_for_reinjection(node=4, cycle=100)
        assert m.status is MessageStatus.QUEUED
        assert m.inject_node == 4
        assert m.source == 2  # original source preserved
        assert m.flits_at_source == m.length
        assert m.flits_delivered == 0
        assert not m.marked_deadlocked
        assert m.gen_cycle == 0  # latency still counted from generation


class TestConservation:
    def test_conservation_holds(self):
        m = Message(0, 0, 5, 10, 0)
        pc = make_pc()
        pc.vcs[0].allocate(m, 0)
        pc.vcs[0].flits = 4
        m.spans = [pc.vcs[0]]
        m.flits_at_source = 3
        m.flits_delivered = 3
        m.check_conservation()

    def test_conservation_violation_raises(self):
        m = Message(0, 0, 5, 10, 0)
        m.flits_at_source = 3
        with pytest.raises(AssertionError):
            m.check_conservation()

    def test_describe_path(self):
        m = Message(0, 0, 5, 10, 0)
        pc = make_pc()
        pc.vcs[0].allocate(m, 0)
        pc.vcs[0].flits = 2
        m.spans = [pc.vcs[0]]
        (entry,) = describe_path(m)
        assert "2f" in entry
