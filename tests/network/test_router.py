"""Tests for router wiring and allocation bookkeeping."""

import pytest

from repro.network.simulator import Simulator
from repro.network.types import PortKind
from tests.conftest import small_config


@pytest.fixture(scope="module")
def built_sim():
    return Simulator(small_config())


class TestWiring:
    def test_every_node_has_a_router(self, built_sim):
        assert len(built_sim.routers) == built_sim.topology.num_nodes

    def test_network_outputs_match_topology_degree(self, built_sim):
        topo = built_sim.topology
        for router in built_sim.routers:
            assert len(router.output_pc_list) == len(list(topo.neighbors(router.node)))

    def test_inputs_match_outputs_globally(self, built_sim):
        total_out = sum(len(r.output_pc_list) for r in built_sim.routers)
        total_in = sum(len(r.input_pcs) for r in built_sim.routers)
        assert total_out == total_in

    def test_output_directions_consistent(self, built_sim):
        topo = built_sim.topology
        for router in built_sim.routers:
            for direction, pc in router.output_pcs.items():
                assert pc.src_node == router.node
                assert pc.dst_node == topo.neighbor(router.node, direction)
                assert pc.kind is PortKind.NETWORK

    def test_injection_and_ejection_port_counts(self, built_sim):
        config = built_sim.config
        for router in built_sim.routers:
            assert len(router.injection_pcs) == config.injection_ports
            assert len(router.ejection_pcs) == config.ejection_ports

    def test_channel_indices_unique(self, built_sim):
        indices = [pc.index for pc in built_sim.channels]
        assert len(indices) == len(set(indices))

    def test_header_input_pcs_include_injection(self, built_sim):
        router = built_sim.routers[0]
        pcs = router.header_input_pcs()
        for pc in router.injection_pcs:
            assert pc in pcs
        for pc in router.input_pcs:
            assert pc in pcs


class TestBusyCounting:
    def test_busy_count_roundtrip(self, built_sim):
        router = built_sim.routers[0]
        before = router.busy_network_vcs
        router.note_network_vc_allocated()
        assert router.busy_network_vcs == before + 1
        router.note_network_vc_released()
        assert router.busy_network_vcs == before

    def test_negative_busy_raises(self):
        sim = Simulator(small_config())
        router = sim.routers[0]
        with pytest.raises(RuntimeError):
            router.note_network_vc_released()

    def test_total_network_vcs(self, built_sim):
        router = built_sim.routers[0]
        expected = len(router.output_pc_list) * built_sim.config.vcs_per_channel
        assert router.total_network_vcs() == expected


class TestFreeInjectionVC:
    def test_returns_free_vc(self, built_sim):
        vc = built_sim.routers[0].free_injection_vc()
        assert vc is not None
        assert vc.pc.kind is PortKind.INJECTION

    def test_returns_none_when_full(self):
        sim = Simulator(small_config())
        router = sim.routers[0]

        class Fake:
            id = 0

        for pc in router.injection_pcs:
            for vc in pc.vcs:
                vc.allocate(Fake(), 0)
        assert router.free_injection_vc() is None
