"""Tests for Duato-style adaptive routing with escape channels."""

import pytest

from repro.network.routing import DuatoAdaptive, make_routing_function
from repro.network.simulator import Simulator
from repro.network.topology import KAryNCube
from tests.conftest import small_config


@pytest.fixture(scope="module")
def rf():
    return DuatoAdaptive()


@pytest.fixture(scope="module")
def topo():
    return KAryNCube(8, 2)


class TestEscapeSubFunction:
    def test_escape_direction_is_dimension_order(self, rf, topo):
        cur = topo.node_at((0, 0))
        dst = topo.node_at((3, 3))
        assert rf.escape_direction(topo, cur, dst) == (0, +1)

    def test_escape_direction_second_dim_when_first_done(self, rf, topo):
        cur = topo.node_at((3, 0))
        dst = topo.node_at((3, 3))
        assert rf.escape_direction(topo, cur, dst) == (1, +1)

    def test_dateline_class_before_wrap(self, rf, topo):
        # Travelling +1 from 6 to 2 must cross the 7->0 wrap: class 0.
        cur = topo.node_at((6, 0))
        dst = topo.node_at((2, 0))
        assert rf.escape_class(topo, cur, dst, dim=0, sign=+1) == 0

    def test_dateline_class_after_wrap(self, rf, topo):
        # Travelling +1 from 0 to 2 never wraps: class 1.
        cur = topo.node_at((0, 0))
        dst = topo.node_at((2, 0))
        assert rf.escape_class(topo, cur, dst, dim=0, sign=+1) == 1

    def test_dateline_symmetric_negative(self, rf, topo):
        cur = topo.node_at((1, 0))
        dst = topo.node_at((6, 0))  # -1 direction, wraps through 0
        assert rf.escape_class(topo, cur, dst, dim=0, sign=-1) == 0

    def test_mesh_has_single_class(self, rf):
        from repro.network.topology import Mesh

        mesh = Mesh(8, 2)
        assert rf.escape_class(mesh, 1, 5, dim=0, sign=+1) == 0


class TestAllowedVCs:
    def _pc(self, sim, coords, direction):
        node = sim.topology.node_at(coords)
        return sim.routers[node].output_pcs[direction]

    def test_adaptive_lane_always_allowed(self):
        config = small_config(radix=8, routing="duato-adaptive")
        config.detector.mechanism = "none"
        sim = Simulator(config)
        rf = sim.routing_fn
        pc = self._pc(sim, (0, 0), (1, +1))  # non-escape direction
        cur = sim.topology.node_at((0, 0))
        dst = sim.topology.node_at((3, 3))
        lanes = rf.allowed_vcs(sim.topology, pc, cur, dst)
        assert pc.vcs[2] in lanes
        assert pc.vcs[0] not in lanes  # escape lane of a non-escape PC

    def test_escape_lane_on_dimension_order_pc(self):
        config = small_config(radix=8, routing="duato-adaptive")
        config.detector.mechanism = "none"
        sim = Simulator(config)
        rf = sim.routing_fn
        pc = self._pc(sim, (0, 0), (0, +1))  # the DOR next hop
        cur = sim.topology.node_at((0, 0))
        dst = sim.topology.node_at((3, 3))
        lanes = rf.allowed_vcs(sim.topology, pc, cur, dst)
        assert pc.vcs[2] in lanes
        assert pc.vcs[1] in lanes  # class 1 (no wrap on 0 -> 3)
        assert pc.vcs[0] not in lanes

    def test_injection_ports_unrestricted(self):
        config = small_config(radix=8, routing="duato-adaptive")
        config.detector.mechanism = "none"
        sim = Simulator(config)
        rf = sim.routing_fn
        pc = sim.routers[0].injection_pcs[0]
        assert list(rf.allowed_vcs(sim.topology, pc, 0, 5)) == list(pc.vcs)


class TestDeadlockFreedom:
    @pytest.mark.parametrize("rate", [0.3, 0.7])
    def test_never_deadlocks(self, rate):
        config = small_config(routing="duato-adaptive")
        config.traffic.injection_rate = rate
        config.detector.mechanism = "none"
        config.recovery = "none"
        config.ground_truth_interval = 50
        config.warmup_cycles = 200
        config.measure_cycles = 1500
        sim = Simulator(config)
        stats = sim.run()
        assert stats.truth_sweeps_with_deadlock == 0
        assert stats.delivered_measured > 0

    def test_factory_name(self):
        assert isinstance(
            make_routing_function("duato-adaptive"), DuatoAdaptive
        )
        assert not DuatoAdaptive.deadlock_prone
        assert DuatoAdaptive.uses_vc_classes


class TestRecoveryVsAvoidance:
    def test_fully_adaptive_with_recovery_outperforms(self):
        """The paper's motivation: unrestricted routing + recovery beats
        escape-channel avoidance at moderate-high load."""
        results = {}
        for routing in ("fully-adaptive", "duato-adaptive"):
            config = small_config(radix=8, routing=routing)
            config.warmup_cycles = 400
            config.measure_cycles = 2000
            config.traffic.injection_rate = 0.6
            if routing == "duato-adaptive":
                config.detector.mechanism = "none"
                config.recovery = "none"
            stats = Simulator(config).run()
            results[routing] = stats.average_latency()
        assert results["fully-adaptive"] <= results["duato-adaptive"] * 1.1
