"""Digest-equivalence gate for the batch SoA campaign backend.

The batch backend (``repro.network.batch``) folds every detection
threshold of a campaign grid onto one shared trajectory.  Its right to
exist is *bit-identical* per-cell results: each folded cell's
``to_dict(include_perf=False)`` — detection events included — must equal
an independent ``engine="event"`` run of that cell.  These tests enforce
that over the engine-equivalence corpus, plus the planner's grouping
rules, the fixed reduction order (PYTHONHASHSEED independence) and the
``engine="batch"`` single-run path.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

import repro.network.batch as batch_module  # noqa: E402
from repro.network.batch import (  # noqa: E402
    BatchSimulator,
    batch_eligible,
    batch_group_key,
    plan_batches,
    run_batch,
    soa_digest,
    soa_snapshot,
)
from repro.network.config import SimulationConfig  # noqa: E402
from repro.network.simulator import Simulator  # noqa: E402
from tests.network.test_engine_equivalence import CASES, _config  # noqa: E402

#: The campaign threshold ladder used throughout (non-powers included).
LADDER = [4, 8, 13, 16, 32]


def _event_cells(config: SimulationConfig, thresholds):
    cells = []
    for t in thresholds:
        cell = config.replace(engine="event")
        cell.detector.threshold = t
        cells.append(Simulator(cell).run())
    return cells


def assert_batch_matches_event(config: SimulationConfig, thresholds) -> None:
    batch = run_batch(config.replace(engine="batch"), thresholds)
    event = _event_cells(config, thresholds)
    for t, b, e in zip(thresholds, batch, event):
        assert b.to_dict(include_perf=False) == e.to_dict(
            include_perf=False
        ), f"threshold {t}"


# ----------------------------------------------------------------------
# Digest equivalence over the corpus
# ----------------------------------------------------------------------

#: Equivalence-corpus cases that are batch-shareable as-is or become so
#: with recovery forced to "none" (the backend's eligibility domain).
ELIGIBLE_CASES = sorted(
    name
    for name, overrides in CASES.items()
    if overrides.get("mechanism") == "ndm"
    and not overrides.get("selective_promotion")
)


@pytest.mark.parametrize("case", ELIGIBLE_CASES)
def test_batch_cells_bit_identical_over_corpus(case):
    overrides = dict(CASES[case])
    overrides["recovery"] = "none"
    assert_batch_matches_event(_config(**overrides), LADDER)


def test_batch_cells_bit_identical_saturated_torus():
    """The benchmark's regime: 64 nodes beyond saturation."""
    config = _config(
        radix=8,
        mechanism="ndm",
        threshold=32,
        injection_rate=1.0,
        recovery="none",
        warmup_cycles=100,
        measure_cycles=400,
    )
    assert_batch_matches_event(config, [2, 8, 32, 128, 512])


def test_duplicate_and_unsorted_thresholds_align_with_input():
    config = _config(mechanism="ndm", threshold=16, recovery="none")
    thresholds = [16, 4, 16, 8]
    batch = run_batch(config.replace(engine="batch"), thresholds)
    event = _event_cells(config, thresholds)
    assert [b.to_dict(include_perf=False) for b in batch] == [
        e.to_dict(include_perf=False) for e in event
    ]
    # The two th=16 cells are the same folded object's stats.
    assert batch[0].to_dict() == batch[2].to_dict()


def test_single_cell_batch_matches_event():
    config = _config(mechanism="ndm", threshold=16, recovery="none")
    assert_batch_matches_event(config, [16])


# ----------------------------------------------------------------------
# engine="batch" as a plain per-run engine
# ----------------------------------------------------------------------

@pytest.mark.parametrize("case", sorted(CASES))
def test_batch_engine_single_run_matches_event(case):
    """A lone ``engine="batch"`` run is the event engine, for *any*
    detector — the batch kernel only changes campaign-level grouping."""
    config = _config(**CASES[case])
    stats_event = Simulator(config.replace(engine="event")).run()
    stats_batch = Simulator(config.replace(engine="batch")).run()
    assert stats_event.to_dict(include_perf=False) == stats_batch.to_dict(
        include_perf=False
    )


def test_engine_accepts_batch():
    config = _config()
    config.engine = "batch"
    config.validate()


# ----------------------------------------------------------------------
# Eligibility and planning
# ----------------------------------------------------------------------

def _eligible_config(threshold=16, **overrides):
    config = _config(mechanism="ndm", threshold=threshold, recovery="none",
                     **overrides)
    return config.replace(engine="batch")


class TestEligibility:
    def test_eligible(self):
        assert batch_eligible(_eligible_config())

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(mechanism="timeout"),
            dict(mechanism="pdm"),
            dict(selective_promotion=True),
            dict(recovery="progressive"),
        ],
    )
    def test_feedback_sources_ineligible(self, overrides):
        config = _config(
            **{"mechanism": "ndm", "threshold": 16, "recovery": "none",
               **overrides}
        )
        assert not batch_eligible(config)

    def test_batch_simulator_rejects_ineligible(self):
        config = _config(mechanism="ndm", threshold=16,
                         recovery="progressive")
        with pytest.raises(ValueError, match="not batch-shareable"):
            BatchSimulator(config, [8, 16])

    def test_group_key_ignores_threshold_only(self):
        a, b = _eligible_config(threshold=8), _eligible_config(threshold=32)
        assert batch_group_key(a) == batch_group_key(b)
        c = _eligible_config(threshold=8, seed=21)
        assert batch_group_key(a) != batch_group_key(c)


class TestPlanBatches:
    def test_groups_threshold_siblings(self):
        configs = [_eligible_config(threshold=t) for t in (4, 8, 16)]
        configs.append(_eligible_config(threshold=4, seed=21))
        groups, singles = plan_batches(configs)
        assert groups == [[0, 1, 2]]
        assert singles == [3]

    def test_non_batch_engine_stays_single(self):
        configs = [
            _eligible_config(threshold=4).replace(engine="event"),
            _eligible_config(threshold=8).replace(engine="event"),
        ]
        groups, singles = plan_batches(configs)
        assert groups == []
        assert singles == [0, 1]

    def test_lone_member_stays_single(self):
        groups, singles = plan_batches([_eligible_config()])
        assert groups == []
        assert singles == [0]

    def test_chunking_respects_max_cells(self, monkeypatch):
        monkeypatch.setattr(batch_module, "MAX_CELLS", 3)
        configs = [_eligible_config(threshold=2 + t) for t in range(7)]
        groups, singles = plan_batches(configs)
        assert groups == [[0, 1, 2], [3, 4, 5]]
        assert singles == [6]

    def test_duplicates_ride_with_their_value(self, monkeypatch):
        monkeypatch.setattr(batch_module, "MAX_CELLS", 2)
        configs = [
            _eligible_config(threshold=t) for t in (4, 4, 8, 16)
        ]
        groups, singles = plan_batches(configs)
        # 4, 4, 8 share two distinct values; 16 would open a third.
        assert groups == [[0, 1, 2]]
        assert singles == [3]


# ----------------------------------------------------------------------
# Fixed reduction order / SoA snapshot determinism
# ----------------------------------------------------------------------

def _batch_digest_under_hashseed(hashseed: str) -> str:
    """Per-cell stats + SoA snapshot digest in a fixed-hash subprocess."""
    script = """
import hashlib, json
from repro.network.batch import BatchSimulator, soa_digest, soa_snapshot
from tests.network.test_engine_equivalence import _config

config = _config(
    mechanism="ndm", threshold=16, recovery="none", injection_rate=0.6
).replace(engine="batch")
bs = BatchSimulator(config, [4, 8, 13, 16, 32])
cells = bs.run()
payload = [c.to_dict(include_events=False, include_perf=False) for c in cells]
digest = hashlib.sha256(json.dumps(payload, sort_keys=True).encode())
snapshot = soa_snapshot(bs.sim, bs.sim.cycle, thresholds=bs.thresholds)
digest.update(soa_digest(snapshot).encode())
print(digest.hexdigest())
"""
    repo_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(
            None,
            [str(repo_root / "src"), str(repo_root), env.get("PYTHONPATH")],
        )
    )
    env["PYTHONHASHSEED"] = hashseed
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env=env,
    )
    return result.stdout.strip()


def test_batch_results_identical_across_hash_seeds():
    """Cell folding and SoA reductions run in ladder/channel-index
    order, never in hash order: two interpreters with different hash
    randomization must produce byte-identical cells and snapshots."""
    assert _batch_digest_under_hashseed("0") == _batch_digest_under_hashseed(
        "4242"
    )


class TestSoASnapshot:
    def _sim(self):
        config = _config(mechanism="ndm", threshold=16, recovery="none")
        sim = Simulator(config.replace(engine="batch"))
        sim.run()
        return sim

    def test_arrays_and_digest(self):
        sim = self._sim()
        snapshot = soa_snapshot(sim, sim.cycle, thresholds=[4, 16])
        n = len(sim.channels)
        for key in ("occupied", "free_mask", "usable_mask", "inactivity"):
            assert snapshot[key].shape == (n,)
            assert snapshot[key].dtype == np.int64
        assert snapshot["gp"].shape == (n,)
        assert snapshot["dt_flags"].shape[0] == 2  # one row per threshold
        # Deterministic: same state, same digest; different cycle differs.
        again = soa_snapshot(sim, sim.cycle, thresholds=[4, 16])
        assert soa_digest(snapshot) == soa_digest(again)
        later = soa_snapshot(sim, sim.cycle + 100, thresholds=[4, 16])
        assert soa_digest(snapshot) != soa_digest(later)

    def test_no_thresholds_no_flag_matrix(self):
        sim = self._sim()
        snapshot = soa_snapshot(sim, sim.cycle)
        assert "dt_flags" not in snapshot
