"""Digest-equivalence gate for the batch SoA campaign backend.

The batch backend (``repro.network.batch``) folds every detection
threshold of a campaign grid onto one shared trajectory.  Its right to
exist is *bit-identical* per-cell results: each folded cell's
``to_dict(include_perf=False)`` — detection events included — must equal
an independent ``engine="event"`` run of that cell.  These tests enforce
that over the engine-equivalence corpus, plus the planner's grouping
rules, the fixed reduction order (PYTHONHASHSEED independence) and the
``engine="batch"`` single-run path.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

import dataclasses  # noqa: E402

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

import repro.network.batch as batch_module  # noqa: E402
from repro.core.registry import batch_shareable_names  # noqa: E402
from repro.network.batch import (  # noqa: E402
    BatchObserver,
    BatchSimulator,
    batch_eligible,
    batch_group_key,
    detector_cell_key,
    plan_batches,
    run_batch,
    run_batch_cells,
    soa_digest,
    soa_snapshot,
)
from repro.network.config import DetectorConfig, SimulationConfig  # noqa: E402
from repro.network.simulator import Simulator  # noqa: E402
from tests.network.test_engine_equivalence import CASES, _config  # noqa: E402

#: The campaign threshold ladder used throughout (non-powers included).
LADDER = [4, 8, 13, 16, 32]


def _event_cells(config: SimulationConfig, thresholds):
    cells = []
    for t in thresholds:
        cell = config.replace(engine="event")
        cell.detector.threshold = t
        cells.append(Simulator(cell).run())
    return cells


def assert_batch_matches_event(config: SimulationConfig, thresholds) -> None:
    batch = run_batch(config.replace(engine="batch"), thresholds)
    event = _event_cells(config, thresholds)
    for t, b, e in zip(thresholds, batch, event):
        assert b.to_dict(include_perf=False) == e.to_dict(
            include_perf=False
        ), f"threshold {t}"


# ----------------------------------------------------------------------
# Digest equivalence over the corpus
# ----------------------------------------------------------------------

#: Equivalence-corpus cases that are batch-shareable as-is or become so
#: with recovery forced to "none" (the backend's eligibility domain).
ELIGIBLE_CASES = sorted(
    name
    for name, overrides in CASES.items()
    if overrides.get("mechanism") == "ndm"
    and not overrides.get("selective_promotion")
)


@pytest.mark.parametrize("case", ELIGIBLE_CASES)
def test_batch_cells_bit_identical_over_corpus(case):
    overrides = dict(CASES[case])
    overrides["recovery"] = "none"
    assert_batch_matches_event(_config(**overrides), LADDER)


def test_batch_cells_bit_identical_saturated_torus():
    """The benchmark's regime: 64 nodes beyond saturation."""
    config = _config(
        radix=8,
        mechanism="ndm",
        threshold=32,
        injection_rate=1.0,
        recovery="none",
        warmup_cycles=100,
        measure_cycles=400,
    )
    assert_batch_matches_event(config, [2, 8, 32, 128, 512])


def test_duplicate_and_unsorted_thresholds_align_with_input():
    config = _config(mechanism="ndm", threshold=16, recovery="none")
    thresholds = [16, 4, 16, 8]
    batch = run_batch(config.replace(engine="batch"), thresholds)
    event = _event_cells(config, thresholds)
    assert [b.to_dict(include_perf=False) for b in batch] == [
        e.to_dict(include_perf=False) for e in event
    ]
    # The two th=16 cells are the same folded object's stats.
    assert batch[0].to_dict() == batch[2].to_dict()


def test_single_cell_batch_matches_event():
    config = _config(mechanism="ndm", threshold=16, recovery="none")
    assert_batch_matches_event(config, [16])


# ----------------------------------------------------------------------
# engine="batch" as a plain per-run engine
# ----------------------------------------------------------------------

@pytest.mark.parametrize("case", sorted(CASES))
def test_batch_engine_single_run_matches_event(case):
    """A lone ``engine="batch"`` run is the event engine, for *any*
    detector — the batch kernel only changes campaign-level grouping."""
    config = _config(**CASES[case])
    stats_event = Simulator(config.replace(engine="event")).run()
    stats_batch = Simulator(config.replace(engine="batch")).run()
    assert stats_event.to_dict(include_perf=False) == stats_batch.to_dict(
        include_perf=False
    )


def test_engine_accepts_batch():
    config = _config()
    config.engine = "batch"
    config.validate()


# ----------------------------------------------------------------------
# Eligibility and planning
# ----------------------------------------------------------------------

def _eligible_config(threshold=16, **overrides):
    params = dict(mechanism="ndm", threshold=threshold, recovery="none")
    params.update(overrides)
    return _config(**params).replace(engine="batch")


class TestEligibility:
    def test_eligible(self):
        assert batch_eligible(_eligible_config())

    @pytest.mark.parametrize(
        "mechanism",
        ["ndm", "pdm", "timeout", "source-age", "injection-stall", "probe"],
    )
    def test_every_pure_observer_mechanism_eligible(self, mechanism):
        """Trajectory sharing now folds across mechanisms, not just
        thresholds: every pure-observer detector is shareable."""
        config = _config(
            mechanism=mechanism, threshold=16, recovery="none"
        ).replace(engine="batch")
        assert batch_eligible(config)

    def test_registry_names_pure_observers(self):
        assert set(batch_shareable_names()) == {
            "ndm", "pdm", "timeout", "source-age", "injection-stall", "probe"
        }

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(mechanism="hybrid"),
            dict(mechanism="ndm-precise"),
            dict(mechanism="none"),
            dict(selective_promotion=True),
            dict(recovery="progressive"),
        ],
    )
    def test_feedback_sources_ineligible(self, overrides):
        config = _config(
            **{"mechanism": "ndm", "threshold": 16, "recovery": "none",
               **overrides}
        )
        assert not batch_eligible(config)

    def test_fault_schedules_ineligible(self):
        config = _eligible_config()
        config.faults = [dict(kind="link", cycle=10, node=0, port=0)]
        assert not batch_eligible(config)

    def test_batch_simulator_rejects_ineligible(self):
        config = _config(mechanism="ndm", threshold=16,
                         recovery="progressive")
        with pytest.raises(ValueError, match="not batch-shareable"):
            BatchSimulator(config, [8, 16])

    def test_group_key_ignores_the_detector_cell_only(self):
        a, b = _eligible_config(threshold=8), _eligible_config(threshold=32)
        assert batch_group_key(a) == batch_group_key(b)
        c = _eligible_config(threshold=8, seed=21)
        assert batch_group_key(a) != batch_group_key(c)
        # Mechanism and the probe storm-guard caps are cell identity,
        # masked out of the group key like the threshold.
        for overrides in (
            dict(mechanism="pdm"),
            dict(mechanism="timeout"),
            dict(mechanism="probe"),
        ):
            d = _eligible_config(threshold=8, **overrides)
            assert batch_group_key(a) == batch_group_key(d)
        e = _eligible_config(threshold=8, mechanism="probe")
        e.detector.probe_max_hops = 8
        assert batch_group_key(a) == batch_group_key(e)

    def test_group_key_keeps_t1(self):
        """t1 arms the shared G/P dynamics: cells disagreeing on it
        must not fold onto one trajectory."""
        a = _eligible_config(threshold=8)
        b = _eligible_config(threshold=8)
        b.detector.t1 = a.detector.t1 + 1
        assert batch_group_key(a) != batch_group_key(b)


class TestPlanBatches:
    def test_groups_threshold_siblings(self):
        configs = [_eligible_config(threshold=t) for t in (4, 8, 16)]
        configs.append(_eligible_config(threshold=4, seed=21))
        groups, singles = plan_batches(configs)
        assert groups == [[0, 1, 2]]
        assert singles == [3]

    def test_non_batch_engine_stays_single(self):
        configs = [
            _eligible_config(threshold=4).replace(engine="event"),
            _eligible_config(threshold=8).replace(engine="event"),
        ]
        groups, singles = plan_batches(configs)
        assert groups == []
        assert singles == [0, 1]

    def test_lone_member_stays_single(self):
        groups, singles = plan_batches([_eligible_config()])
        assert groups == []
        assert singles == [0]

    def test_chunking_respects_max_cells(self, monkeypatch):
        monkeypatch.setattr(batch_module, "MAX_CELLS", 3)
        configs = [_eligible_config(threshold=2 + t) for t in range(7)]
        groups, singles = plan_batches(configs)
        assert groups == [[0, 1, 2], [3, 4, 5]]
        assert singles == [6]

    def test_duplicates_ride_with_their_value(self, monkeypatch):
        monkeypatch.setattr(batch_module, "MAX_CELLS", 2)
        configs = [
            _eligible_config(threshold=t) for t in (4, 4, 8, 16)
        ]
        groups, singles = plan_batches(configs)
        # 4, 4, 8 share two distinct values; 16 would open a third.
        assert groups == [[0, 1, 2]]
        assert singles == [3]


# ----------------------------------------------------------------------
# Cross-detector trajectory sharing
# ----------------------------------------------------------------------

def _cell(**kw) -> DetectorConfig:
    base = dict(mechanism="ndm", threshold=16, t1=1)
    base.update(kw)
    return DetectorConfig(**base)


#: A deadlocking regime that is still cheap: 16 nodes, single lane,
#: beyond saturation (every mechanism family detects here).
def _mixed_config(**overrides) -> SimulationConfig:
    params = dict(
        mechanism="ndm", threshold=16, recovery="none",
        vcs_per_channel=1, injection_rate=0.8,
    )
    params.update(overrides)
    return _config(**params)


#: One group spanning every shareable family, two cells for the ladder
#: families and distinct storm-guard caps for the probe pair.
MIXED_CELLS = [
    _cell(mechanism="ndm", threshold=8),
    _cell(mechanism="ndm", threshold=16),
    _cell(mechanism="pdm", threshold=8),
    _cell(mechanism="pdm", threshold=24),
    _cell(mechanism="timeout", threshold=24),
    _cell(mechanism="timeout", threshold=64),
    _cell(mechanism="source-age", threshold=50),
    _cell(mechanism="injection-stall", threshold=40),
    _cell(mechanism="probe", threshold=16),
    _cell(mechanism="probe", threshold=16, probe_max_hops=8),
]


def _event_reference(config: SimulationConfig, cell: DetectorConfig):
    ref = config.replace(engine="event")
    ref.detector = dataclasses.replace(cell)
    return Simulator(ref).run()


class TestMixedGroups:
    @pytest.mark.parametrize("vectorize", [True, False])
    def test_mixed_cells_bit_identical(self, vectorize):
        """The tentpole gate: one shared trajectory serving every
        mechanism family reproduces each cell's event run byte for
        byte — with both the vectorized and the scalar movement phase.
        """
        config = _mixed_config().replace(engine="batch")
        bs = BatchSimulator(config, cells=MIXED_CELLS, vectorize=vectorize)
        assert bs.vectorized == vectorize  # numpy is present here
        batch = bs.run()
        detections = 0
        for cell, b in zip(MIXED_CELLS, batch):
            e = _event_reference(config, cell)
            assert b.to_dict(include_perf=False) == e.to_dict(
                include_perf=False
            ), f"{cell.mechanism}:{cell.threshold}"
            detections += b.detections
        # Regime sanity: the equality above must not be vacuous.
        assert detections > 0

    def test_run_batch_cells_aligns_with_input_order(self):
        config = _mixed_config().replace(engine="batch")
        cells = [
            _cell(mechanism="timeout", threshold=24),
            _cell(mechanism="ndm", threshold=8),
            _cell(mechanism="timeout", threshold=24),  # duplicate
        ]
        batch = run_batch_cells(config, cells)
        assert [b.to_dict(include_perf=False) for b in batch] == [
            _event_reference(config, c).to_dict(include_perf=False)
            for c in cells
        ]
        assert batch[0].to_dict() == batch[2].to_dict()

    def test_probe_counters_fold_per_cell(self):
        """Probe transports are per cell: each folded cell reports its
        own launch/hop counters, and non-probe cells report zero."""
        config = _mixed_config().replace(engine="batch")
        cells = [
            _cell(mechanism="probe", threshold=16),
            _cell(mechanism="probe", threshold=16, probe_max_hops=8),
            _cell(mechanism="ndm", threshold=8),
        ]
        batch = run_batch_cells(config, cells)
        for cell, b in zip(cells, batch):
            e = _event_reference(config, cell)
            assert b.probe_launches == e.probe_launches
            assert b.probe_hops == e.probe_hops
        assert batch[0].probe_launches > 0
        assert batch[2].probe_launches == 0

    def test_detection_events_carry_cell_mechanism(self):
        config = _mixed_config().replace(engine="batch")
        cells = [
            _cell(mechanism="timeout", threshold=24),
            _cell(mechanism="pdm", threshold=8),
        ]
        for cell, b in zip(cells, run_batch_cells(config, cells)):
            assert b.detection_events, cell.mechanism
            assert {e.mechanism for e in b.detection_events} == {
                cell.mechanism
            }

    def test_observer_rejects_unshareable_cells(self):
        with pytest.raises(ValueError, match="not batch-shareable"):
            BatchObserver([_cell(selective_promotion=True)])
        with pytest.raises(ValueError, match="not batch-shareable"):
            BatchObserver([_cell(mechanism="hybrid")])

    def test_observer_rejects_mixed_t1(self):
        with pytest.raises(ValueError, match="disagree on t1"):
            BatchObserver([_cell(threshold=8, t1=1), _cell(threshold=16, t1=2)])

    def test_selective_promotion_never_folded(self):
        """The selective ndm variant mutates waiter registries on the
        shared trajectory and is excluded at the registry level: the
        planner keeps its cells single even among shareable siblings."""
        selective = _eligible_config(threshold=8)
        selective.detector.selective_promotion = True
        assert not batch_eligible(selective)
        configs = [
            _eligible_config(threshold=8),
            _eligible_config(threshold=16),
            selective,
        ]
        groups, singles = plan_batches(configs)
        assert groups == [[0, 1]]
        assert singles == [2]


class TestMixedPlanning:
    def test_mechanisms_fold_into_one_group(self):
        configs = [
            _eligible_config(threshold=8),
            _eligible_config(threshold=8, mechanism="pdm"),
            _eligible_config(threshold=24, mechanism="timeout"),
            _eligible_config(threshold=16, mechanism="probe"),
        ]
        groups, singles = plan_batches(configs)
        assert groups == [[0, 1, 2, 3]]
        assert singles == []

    def test_chunking_counts_distinct_cells_across_mechanisms(
        self, monkeypatch
    ):
        monkeypatch.setattr(batch_module, "MAX_CELLS", 2)
        configs = [
            _eligible_config(threshold=8),
            _eligible_config(threshold=8, mechanism="pdm"),
            _eligible_config(threshold=8, mechanism="pdm"),  # duplicate
            _eligible_config(threshold=24, mechanism="timeout"),
        ]
        groups, singles = plan_batches(configs)
        # ndm:8 + pdm:8 (x2) fill the first chunk; timeout:24 is left
        # alone and falls back to a single.
        assert groups == [[0, 1, 2]]
        assert singles == [3]

    def test_cell_key_separates_probe_caps(self):
        a = _cell(mechanism="probe", threshold=16)
        b = _cell(mechanism="probe", threshold=16, probe_max_hops=8)
        c = _cell(mechanism="pdm", threshold=16)
        assert detector_cell_key(a) != detector_cell_key(b)
        assert detector_cell_key(a) != detector_cell_key(c)
        assert detector_cell_key(a) == detector_cell_key(
            dataclasses.replace(a)
        )


#: Hypothesis: any mixed bag of shareable cells folds bit-identically.
_CELL_STRATEGY = st.fixed_dictionaries(
    {
        "mechanism": st.sampled_from(batch_shareable_names()),
        "threshold": st.sampled_from([4, 8, 16, 24, 50]),
        "probe_max_hops": st.sampled_from([8, 64]),
    }
)


@given(
    cells=st.lists(_CELL_STRATEGY, min_size=1, max_size=6),
    seed=st.integers(min_value=0, max_value=2**10),
    rate=st.sampled_from([0.4, 0.8]),
)
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_mixed_groups_fold_bit_identical(cells, seed, rate):
    config = _mixed_config(seed=seed, injection_rate=rate)
    config.warmup_cycles = 50
    config.measure_cycles = 250
    batch_config = config.replace(engine="batch")
    cell_configs = [_cell(**kw) for kw in cells]
    batch = run_batch_cells(batch_config, cell_configs)
    for cell, b in zip(cell_configs, batch):
        e = _event_reference(config, cell)
        assert b.to_dict(include_perf=False) == e.to_dict(include_perf=False)


# ----------------------------------------------------------------------
# Vectorized movement phase (repro.network.vecmove)
# ----------------------------------------------------------------------

class TestVectorizedMovement:
    def test_installed_by_default_and_digest_identical(self):
        config = _mixed_config().replace(engine="batch")
        fast = BatchSimulator(config, [4, 8, 16])
        slow = BatchSimulator(config, [4, 8, 16], vectorize=False)
        assert fast.vectorized and not slow.vectorized
        assert [s.to_dict(include_perf=False) for s in fast.run()] == [
            s.to_dict(include_perf=False) for s in slow.run()
        ]

    def test_saturated_regime_digest_identical(self):
        """Heavy parking exercises the all-parked fast path and the
        keep-mask delivery compaction."""
        config = _config(
            radix=8, mechanism="ndm", threshold=16, injection_rate=1.0,
            recovery="none", warmup_cycles=100, measure_cycles=300,
        ).replace(engine="batch")
        cells = [
            _cell(mechanism="ndm", threshold=8),
            _cell(mechanism="timeout", threshold=32),
        ]
        fast = BatchSimulator(config, cells=cells).run()
        slow = BatchSimulator(config, cells=cells, vectorize=False).run()
        assert [s.to_dict(include_perf=False) for s in fast] == [
            s.to_dict(include_perf=False) for s in slow
        ]

    def test_install_helper_reports_availability(self):
        from repro.network.vecmove import (
            HAVE_VECMOVE,
            install_vectorized_movement,
        )

        assert HAVE_VECMOVE  # numpy was importorskip'd above
        config = _mixed_config().replace(engine="batch")
        bs = BatchSimulator(config, [8], vectorize=False)
        assert bs.sim._movement_impl.__func__ is type(
            bs.sim
        )._movement_phase
        assert install_vectorized_movement(bs.sim)
        assert bs.sim._movement_impl.__func__ is not type(
            bs.sim
        )._movement_phase


# ----------------------------------------------------------------------
# Fixed reduction order / SoA snapshot determinism
# ----------------------------------------------------------------------

def _batch_digest_under_hashseed(hashseed: str) -> str:
    """Per-cell stats + SoA snapshot digest in a fixed-hash subprocess."""
    script = """
import hashlib, json
from repro.network.batch import BatchSimulator, soa_digest, soa_snapshot
from tests.network.test_engine_equivalence import _config

config = _config(
    mechanism="ndm", threshold=16, recovery="none", injection_rate=0.6
).replace(engine="batch")
bs = BatchSimulator(config, [4, 8, 13, 16, 32])
cells = bs.run()
payload = [c.to_dict(include_events=False, include_perf=False) for c in cells]
digest = hashlib.sha256(json.dumps(payload, sort_keys=True).encode())
snapshot = soa_snapshot(bs.sim, bs.sim.cycle, thresholds=bs.thresholds)
digest.update(soa_digest(snapshot).encode())
print(digest.hexdigest())
"""
    repo_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(
            None,
            [str(repo_root / "src"), str(repo_root), env.get("PYTHONPATH")],
        )
    )
    env["PYTHONHASHSEED"] = hashseed
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env=env,
    )
    return result.stdout.strip()


def test_batch_results_identical_across_hash_seeds():
    """Cell folding and SoA reductions run in ladder/channel-index
    order, never in hash order: two interpreters with different hash
    randomization must produce byte-identical cells and snapshots."""
    assert _batch_digest_under_hashseed("0") == _batch_digest_under_hashseed(
        "4242"
    )


def _mixed_digest_under_hashseed(hashseed: str) -> str:
    """Mixed-mechanism per-cell stats digest in a fixed-hash subprocess."""
    script = """
import hashlib, json
from repro.network.batch import run_batch_cells
from repro.network.config import DetectorConfig
from tests.network.test_engine_equivalence import _config

config = _config(
    mechanism="ndm", threshold=16, recovery="none",
    vcs_per_channel=1, injection_rate=0.8,
).replace(engine="batch")
cells = [
    DetectorConfig(mechanism="timeout", threshold=24),
    DetectorConfig(mechanism="ndm", threshold=8),
    DetectorConfig(mechanism="pdm", threshold=8),
    DetectorConfig(mechanism="probe", threshold=16),
    DetectorConfig(mechanism="source-age", threshold=50),
    DetectorConfig(mechanism="injection-stall", threshold=40),
]
folded = run_batch_cells(config, cells)
payload = [c.to_dict(include_events=False, include_perf=False) for c in folded]
print(hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest())
"""
    repo_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(
            None,
            [str(repo_root / "src"), str(repo_root), env.get("PYTHONPATH")],
        )
    )
    env["PYTHONHASHSEED"] = hashseed
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env=env,
    )
    return result.stdout.strip()


def test_mixed_groups_identical_across_hash_seeds():
    """The cross-mechanism fold adds dict-keyed state (pending masks,
    probe units, family tables); the canonical cell order keeps every
    reduction hash-independent."""
    assert _mixed_digest_under_hashseed("0") == _mixed_digest_under_hashseed(
        "4242"
    )


class TestSoASnapshot:
    def _sim(self):
        config = _config(mechanism="ndm", threshold=16, recovery="none")
        sim = Simulator(config.replace(engine="batch"))
        sim.run()
        return sim

    def test_arrays_and_digest(self):
        sim = self._sim()
        snapshot = soa_snapshot(sim, sim.cycle, thresholds=[4, 16])
        n = len(sim.channels)
        for key in ("occupied", "free_mask", "usable_mask", "inactivity"):
            assert snapshot[key].shape == (n,)
            assert snapshot[key].dtype == np.int64
        assert snapshot["gp"].shape == (n,)
        assert snapshot["dt_flags"].shape[0] == 2  # one row per threshold
        # Deterministic: same state, same digest; different cycle differs.
        again = soa_snapshot(sim, sim.cycle, thresholds=[4, 16])
        assert soa_digest(snapshot) == soa_digest(again)
        later = soa_snapshot(sim, sim.cycle + 100, thresholds=[4, 16])
        assert soa_digest(snapshot) != soa_digest(later)

    def test_no_thresholds_no_flag_matrix(self):
        sim = self._sim()
        snapshot = soa_snapshot(sim, sim.cycle)
        assert "dt_flags" not in snapshot
