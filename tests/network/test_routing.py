"""Tests for routing functions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.routing import (
    DimensionOrder,
    TrueFullyAdaptive,
    make_routing_function,
    routing_function_names,
)
from repro.network.topology import KAryNCube, Mesh


class TestFactory:
    def test_make_fully_adaptive(self):
        assert isinstance(make_routing_function("fully-adaptive"), TrueFullyAdaptive)

    def test_make_dimension_order(self):
        assert isinstance(make_routing_function("dimension-order"), DimensionOrder)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown routing function"):
            make_routing_function("magic")

    def test_names_listed(self):
        assert set(routing_function_names()) == {
            "fully-adaptive",
            "dimension-order",
            "duato-adaptive",
        }


class TestTrueFullyAdaptive:
    def setup_method(self):
        self.topo = KAryNCube(8, 2)
        self.rf = TrueFullyAdaptive()

    def test_empty_at_destination(self):
        assert self.rf.candidates(self.topo, 5, 5) == ()

    def test_all_minimal_directions_offered(self):
        cur = self.topo.node_at((0, 0))
        dst = self.topo.node_at((2, 2))
        assert set(self.rf.candidates(self.topo, cur, dst)) == {(0, +1), (1, +1)}

    def test_single_direction_when_one_dim_left(self):
        cur = self.topo.node_at((2, 0))
        dst = self.topo.node_at((5, 0))
        assert self.rf.candidates(self.topo, cur, dst) == ((0, +1),)

    def test_deadlock_prone_flag(self):
        assert TrueFullyAdaptive.deadlock_prone

    def test_halfway_tie_offers_both(self):
        topo = KAryNCube(8, 1)
        assert set(self.rf.candidates(topo, 0, 4)) == {(0, +1), (0, -1)}

    @given(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=100)
    def test_candidates_always_minimal(self, cur, dst):
        topo = KAryNCube(8, 2)
        rf = TrueFullyAdaptive()
        base = topo.distance(cur, dst)
        for direction in rf.candidates(topo, cur, dst):
            nxt = topo.neighbor(cur, direction)
            assert topo.distance(nxt, dst) == base - 1


class TestDimensionOrder:
    def setup_method(self):
        self.topo = Mesh(4, 2)
        self.rf = DimensionOrder()

    def test_single_candidate(self):
        cur = self.topo.node_at((0, 0))
        dst = self.topo.node_at((3, 3))
        assert len(self.rf.candidates(self.topo, cur, dst)) == 1

    def test_corrects_lowest_dimension_first(self):
        cur = self.topo.node_at((0, 0))
        dst = self.topo.node_at((3, 3))
        assert self.rf.candidates(self.topo, cur, dst) == ((0, +1),)

    def test_moves_to_next_dimension_when_done(self):
        cur = self.topo.node_at((3, 0))
        dst = self.topo.node_at((3, 3))
        assert self.rf.candidates(self.topo, cur, dst) == ((1, +1),)

    def test_empty_at_destination(self):
        assert self.rf.candidates(self.topo, 7, 7) == ()

    def test_not_deadlock_prone(self):
        assert not DimensionOrder.deadlock_prone

    def test_torus_tie_break_deterministic(self):
        topo = KAryNCube(8, 1)
        assert DimensionOrder().candidates(topo, 0, 4) == ((0, +1),)

    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
    )
    @settings(max_examples=60)
    def test_follows_a_single_deterministic_path(self, cur, dst):
        topo = Mesh(4, 2)
        rf = DimensionOrder()
        node = cur
        hops = 0
        while node != dst:
            (direction,) = rf.candidates(topo, node, dst)
            node = topo.neighbor(node, direction)
            hops += 1
            assert hops <= topo.distance(cur, dst)
        assert hops == topo.distance(cur, dst)
