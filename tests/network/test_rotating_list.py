"""Unit tests for the O(1)-rotation message list.

The contract under test: :class:`RotatingList`'s *conceptual* order
(``items[rot:] + items[:rot] + tail``) must track, operation for
operation, the plain list the reference scan engine maintains with
``lst[offset:] + lst[:offset]`` slice rotations.  The simulator's phase
loops drive the structure through exactly three moves — fold staged
appends, advance the cursor on an all-parked cycle, or visit in rotated
order and adopt the survivors — so the tests exercise those moves both
in isolation and through a randomized cycle-protocol simulation checked
against the plain-list model every cycle.

The structure is content-agnostic (it never touches message attributes),
so the tests use plain integers as stand-in messages.
"""

from __future__ import annotations

import random

from repro.network.rotating import RotatingList


def make(items, rot=0, tail=()):
    rl = RotatingList()
    rl.items = list(items)
    rl.rot = rot
    rl.tail = list(tail)
    return rl


# ----------------------------------------------------------------------
# Conceptual-order views
# ----------------------------------------------------------------------
def test_empty():
    rl = RotatingList()
    assert len(rl) == 0
    assert not rl
    assert list(rl) == []
    assert rl.to_list() == []


def test_iteration_follows_conceptual_order():
    rl = make([0, 1, 2, 3, 4], rot=2, tail=[5, 6])
    expected = [2, 3, 4, 0, 1, 5, 6]
    assert rl.to_list() == expected
    assert list(rl) == expected
    assert len(rl) == 7
    assert bool(rl)


def test_append_stages_into_tail():
    rl = make([0, 1, 2], rot=1)
    rl.append(3)
    rl.append(4)
    # Physical items untouched; conceptual end extended.
    assert rl.items == [0, 1, 2]
    assert rl.tail == [3, 4]
    assert rl.to_list() == [1, 2, 0, 3, 4]


# ----------------------------------------------------------------------
# fold
# ----------------------------------------------------------------------
def test_fold_with_zero_cursor_extends_in_place():
    rl = make([0, 1, 2], rot=0, tail=[3, 4])
    items_before = rl.items
    rl.fold()
    assert rl.items is items_before  # in-place extend, no reallocation
    assert rl.items == [0, 1, 2, 3, 4]
    assert rl.rot == 0 and rl.tail == []


def test_fold_with_displaced_cursor_splices_conceptual_order():
    rl = make([0, 1, 2, 3], rot=3, tail=[4])
    conceptual = rl.to_list()
    rl.fold()
    assert rl.items == conceptual == [3, 0, 1, 2, 4]
    assert rl.rot == 0 and rl.tail == []
    assert rl.to_list() == conceptual


def test_fold_is_idempotent_on_folded_list():
    rl = make([0, 1, 2])
    rl.fold()
    assert rl.items == [0, 1, 2] and rl.rot == 0


# ----------------------------------------------------------------------
# start_index
# ----------------------------------------------------------------------
def test_start_index_wraps_physical_positions():
    rl = make([0, 1, 2, 3, 4], rot=3)
    # Conceptual order is [3, 4, 0, 1, 2]; conceptual position k lives at
    # physical index (3 + k) mod 5.
    for offset, physical in [(0, 3), (1, 4), (2, 0), (3, 1), (4, 2)]:
        assert rl.start_index(offset) == physical
        assert rl.items[rl.start_index(offset)] == rl.to_list()[offset]


# ----------------------------------------------------------------------
# The phase protocol, against the reference plain-list model
# ----------------------------------------------------------------------
def _reference_cycle(lst, cycle, drop, appends):
    """One scan-engine cycle: rotate by slicing, drop, append at end."""
    n = len(lst)
    if n:
        offset = cycle % n
        lst = lst[offset:] + lst[:offset]
    lst = [x for x in lst if x not in drop]
    return lst + appends


def _rotating_cycle(rl, cycle, parked, drop, appends):
    """The same cycle via the simulator's RotatingList moves."""
    if rl.tail:
        rl.fold()
    items = rl.items
    n = len(items)
    if n:
        start = rl.rot + cycle % n
        if start >= n:
            start -= n
        if parked:
            # All-parked fast path: the cursor advance IS the rotation.
            rl.rot = start
        else:
            order = items[start:] + items[:start] if start else items
            survivors = [x for x in order if x not in drop]
            rl.items = order if len(survivors) == len(order) else survivors
            rl.rot = 0
    for x in appends:
        rl.append(x)


def test_phase_protocol_matches_reference_model():
    """Randomized cycles of park/visit/drop/append stay list-identical."""
    rng = random.Random(1234)
    ref = []
    rl = RotatingList()
    next_id = 0
    for cycle in range(400):
        # All-parked cycles must not drop anything (parked worms stay).
        parked = ref and rng.random() < 0.3
        drop = set()
        if not parked and ref and rng.random() < 0.5:
            drop = set(rng.sample(ref, rng.randint(1, min(3, len(ref)))))
        appends = []
        if rng.random() < 0.6:
            appends = list(range(next_id, next_id + rng.randint(1, 3)))
            next_id += len(appends)
        ref = _reference_cycle(ref, cycle, drop if not parked else set(),
                               appends)
        _rotating_cycle(rl, cycle, parked, drop, appends)
        assert rl.to_list() == ref, f"diverged at cycle {cycle}"
        assert len(rl) == len(ref)


def test_long_parked_stretch_is_pure_cursor_motion():
    """Many consecutive all-parked cycles never reallocate ``items``."""
    rl = make(list(range(7)))
    ref = list(range(7))
    items_obj = rl.items
    for cycle in range(50):
        ref = _reference_cycle(ref, cycle, set(), [])
        _rotating_cycle(rl, cycle, True, set(), [])
        assert rl.items is items_obj
        assert rl.to_list() == ref
