"""Edge-case simulator tests: unusual topologies, boundaries, teardown."""


from repro.network.message import Message
from repro.network.simulator import Simulator
from repro.network.types import MessageStatus
from tests.conftest import small_config


def send_one(sim, source, dest, length):
    m = Message(sim._next_message_id, source, dest, length, sim.cycle)
    sim._next_message_id += 1
    sim.enqueue_source(m, source)
    return m


class TestUnusualTopologies:
    def test_radix2_torus_runs(self, run_sim):
        config = small_config(radix=2, dimensions=3)
        config.traffic.injection_rate = 0.2
        sim, stats = run_sim(config)
        sim.check_invariants()
        assert stats.delivered_measured > 0

    def test_one_dimensional_ring(self, run_sim):
        config = small_config(radix=8, dimensions=1)
        config.traffic.injection_rate = 0.15
        sim, stats = run_sim(config)
        sim.check_invariants()
        assert stats.delivered_measured > 0

    def test_mesh_corners_reachable(self, run_sim):
        config = small_config(topology="mesh")
        config.traffic.injection_rate = 0.15
        sim, stats = run_sim(config)
        assert stats.delivered_measured > 0

    def test_large_radix_small_dim(self, run_sim):
        config = small_config(radix=16, dimensions=1)
        config.traffic.injection_rate = 0.1
        config.warmup_cycles = 200
        config.measure_cycles = 800
        _, stats = run_sim(config)
        assert stats.delivered_measured > 0

    def test_single_vc_single_port(self, run_sim):
        config = small_config(
            vcs_per_channel=1, injection_ports=1, ejection_ports=1
        )
        config.traffic.injection_rate = 0.15
        _, stats = run_sim(config)
        assert stats.delivered_measured > 0


class TestBoundaries:
    def test_zero_warmup(self, run_sim):
        config = small_config(warmup_cycles=0)
        config.traffic.injection_rate = 0.2
        _, stats = run_sim(config)
        assert stats.injected == stats.injected_measured

    def test_tiny_measure_window(self, run_sim):
        config = small_config(warmup_cycles=10, measure_cycles=1)
        config.traffic.injection_rate = 0.2
        _, stats = run_sim(config)
        assert stats.cycles_run == 11

    def test_buffer_depth_one(self, run_sim):
        config = small_config(buffer_depth=1)
        config.traffic.injection_rate = 0.15
        sim, stats = run_sim(config)
        sim.check_invariants()
        assert stats.delivered_measured > 0

    def test_deep_buffers(self, run_sim):
        config = small_config(buffer_depth=64)
        config.traffic.injection_rate = 0.3
        sim, stats = run_sim(config)
        sim.check_invariants()
        assert stats.delivered_measured > 0

    def test_warmup_boundary_counts(self):
        """A message generated during warmup but delivered in measurement
        counts toward delivered_measured, not latency (not 'counted')."""
        config = small_config(warmup_cycles=30, measure_cycles=300)
        config.traffic.injection_rate = 0.0
        config.ground_truth_interval = 0
        sim = Simulator(config)
        m = send_one(sim, 0, 5, 64)  # long: delivery lands past warmup
        stats = sim.run()
        assert m.status is MessageStatus.DELIVERED
        assert m.deliver_cycle > 30
        assert stats.delivered_measured == 1
        assert stats.latency_count == 0  # generated before measurement


class TestStepByStepControl:
    def test_manual_stepping_equals_run(self):
        def manual():
            config = small_config()
            config.traffic.injection_rate = 0.2
            sim = Simulator(config)
            total = config.warmup_cycles + config.measure_cycles
            while sim.cycle < total:
                sim.step()
            sim.stats.cycles_run = sim.cycle
            return sim.stats

        def auto():
            config = small_config()
            config.traffic.injection_rate = 0.2
            return Simulator(config).run()

        a, b = manual(), auto()
        assert (a.delivered, a.injected, a.latency_sum) == (
            b.delivered, b.injected, b.latency_sum
        )

    def test_generation_can_be_paused(self):
        config = small_config()
        config.traffic.injection_rate = 0.3
        sim = Simulator(config)
        for _ in range(100):
            sim.step()
        generated = sim.stats.generated
        sim.generation_enabled = False
        for _ in range(100):
            sim.step()
        assert sim.stats.generated == generated


class TestRecoveryTeardownEdges:
    def test_free_worm_on_header_only_message(self):
        from repro.figures.scenarios import Scenario, place_worm, scenario_config

        scenario = Scenario(Simulator(scenario_config("none", 16)))
        sim = scenario.sim
        m = place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=4)
        sim.free_worm(m, sim.cycle)
        m.status = MessageStatus.RECOVERING  # as every recovery scheme does
        assert m.spans == []
        sim.check_invariants()

    def test_free_worm_with_pending_allocation(self):
        from repro.figures.scenarios import Scenario, place_entering, scenario_config
        from repro.figures.scenarios import channel_between

        scenario = Scenario(Simulator(scenario_config("none", 16)))
        sim = scenario.sim
        vc = channel_between(sim, (3, 0), (4, 0))
        m = place_entering(sim, (3, 0), (6, 0), length=8, first_vc=vc)
        assert m.allocated_vc is vc
        sim.free_worm(m, sim.cycle)
        m.status = MessageStatus.RECOVERING
        assert vc.occupant is None
        assert m.allocated_vc is None
        sim.check_invariants()

    def test_regressive_retry_preserves_identity(self):
        from repro.figures.scenarios import build_figure3

        scenario = build_figure3("ndm", threshold=8, recovery="regressive")
        b = scenario.messages["B"]
        original_id = b.id
        scenario.run_until(lambda s: b.retries > 0, limit=1000)
        assert b.id == original_id
        assert b.source == scenario.sim.topology.node_at((3, 1))


class TestStatsDenominators:
    def test_reinjected_message_counted_once(self):
        from repro.figures.scenarios import build_figure3

        scenario = build_figure3(
            "ndm", threshold=8, recovery="progressive-reinject"
        )
        before = scenario.sim.stats.injected
        scenario.run(1500)
        b = scenario.messages["B"]
        assert b.status is MessageStatus.DELIVERED
        assert b.recoveries == 1
        # Re-injection must not inflate the injected denominator.
        assert scenario.sim.stats.injected == before

    def test_delivered_once_despite_recovery(self):
        from repro.figures.scenarios import build_figure4

        scenario = build_figure4(threshold=8)
        scenario.run(1500)
        assert scenario.sim.stats.delivered == len(scenario.messages)
