"""Tests for k-ary n-cube and mesh topologies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.topology import KAryNCube, Mesh


# ----------------------------------------------------------------------
# Construction and coordinates
# ----------------------------------------------------------------------
class TestConstruction:
    def test_node_count_torus(self):
        assert KAryNCube(8, 3).num_nodes == 512

    def test_node_count_quick(self):
        assert KAryNCube(8, 2).num_nodes == 64

    def test_node_count_mesh(self):
        assert Mesh(4, 2).num_nodes == 16

    def test_rejects_radix_below_two(self):
        with pytest.raises(ValueError):
            KAryNCube(1, 2)

    def test_rejects_zero_dimensions(self):
        with pytest.raises(ValueError):
            KAryNCube(4, 0)

    def test_repr_mentions_radix(self):
        assert "radix=8" in repr(KAryNCube(8, 2))


class TestCoordinates:
    def test_coords_node_zero(self):
        assert KAryNCube(8, 3).coords(0) == (0, 0, 0)

    def test_coords_last_node(self):
        assert KAryNCube(8, 3).coords(511) == (7, 7, 7)

    def test_coords_dimension_zero_fastest(self):
        assert KAryNCube(8, 3).coords(1) == (1, 0, 0)

    def test_node_at_inverts_coords(self):
        topo = KAryNCube(8, 3)
        for node in range(0, topo.num_nodes, 37):
            assert topo.node_at(topo.coords(node)) == node

    def test_node_at_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            KAryNCube(8, 3).node_at((1, 2))

    def test_node_at_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            KAryNCube(8, 2).node_at((8, 0))

    @given(st.integers(min_value=0, max_value=63))
    def test_roundtrip_property(self, node):
        topo = KAryNCube(4, 3)
        assert topo.node_at(topo.coords(node)) == node


# ----------------------------------------------------------------------
# Connectivity
# ----------------------------------------------------------------------
class TestTorusConnectivity:
    def test_every_direction_has_channel(self):
        topo = KAryNCube(8, 2)
        for direction in topo.directions():
            assert topo.has_channel(0, direction)

    def test_neighbor_positive(self):
        topo = KAryNCube(8, 2)
        assert topo.coords(topo.neighbor(0, (0, +1))) == (1, 0)

    def test_neighbor_wraps_negative(self):
        topo = KAryNCube(8, 2)
        assert topo.coords(topo.neighbor(0, (0, -1))) == (7, 0)

    def test_neighbor_wraps_positive(self):
        topo = KAryNCube(8, 2)
        node = topo.node_at((7, 0))
        assert topo.coords(topo.neighbor(node, (0, +1))) == (0, 0)

    def test_degree_is_2n(self):
        topo = KAryNCube(8, 3)
        assert len(list(topo.neighbors(0))) == 6

    def test_radix2_has_single_channel_per_pair(self):
        topo = KAryNCube(2, 2)
        # Each node should have exactly one outgoing channel per dimension.
        assert len(list(topo.neighbors(0))) == 2

    def test_channels_are_symmetric(self):
        topo = KAryNCube(4, 2)
        for node in range(topo.num_nodes):
            for direction, neighbor in topo.neighbors(node):
                dim, sign = direction
                back = (dim, -sign)
                if topo.has_channel(neighbor, back):
                    assert topo.neighbor(neighbor, back) == node


class TestMeshConnectivity:
    def test_corner_has_n_channels(self):
        topo = Mesh(4, 2)
        assert len(list(topo.neighbors(0))) == 2

    def test_interior_has_2n_channels(self):
        topo = Mesh(4, 2)
        interior = topo.node_at((1, 1))
        assert len(list(topo.neighbors(interior))) == 4

    def test_no_wraparound(self):
        topo = Mesh(4, 2)
        assert not topo.has_channel(0, (0, -1))
        edge = topo.node_at((3, 0))
        assert not topo.has_channel(edge, (0, +1))

    def test_neighbor_raises_off_edge(self):
        topo = Mesh(4, 2)
        with pytest.raises(ValueError):
            topo.neighbor(0, (0, -1))


# ----------------------------------------------------------------------
# Distances
# ----------------------------------------------------------------------
class TestDistance:
    def test_self_distance_zero(self):
        assert KAryNCube(8, 2).distance(5, 5) == 0

    def test_adjacent_distance_one(self):
        topo = KAryNCube(8, 2)
        assert topo.distance(0, topo.neighbor(0, (0, +1))) == 1

    def test_wraparound_shortcut(self):
        topo = KAryNCube(8, 1)
        assert topo.distance(0, 7) == 1

    def test_half_ring(self):
        topo = KAryNCube(8, 1)
        assert topo.distance(0, 4) == 4

    def test_mesh_distance_is_manhattan(self):
        topo = Mesh(4, 2)
        assert topo.distance(topo.node_at((0, 0)), topo.node_at((3, 3))) == 6

    def test_symmetry(self):
        topo = KAryNCube(4, 3)
        for a in range(0, topo.num_nodes, 7):
            for b in range(0, topo.num_nodes, 11):
                assert topo.distance(a, b) == topo.distance(b, a)

    def test_average_distance_uniform_8ary2(self):
        # Ring of radix 8: average offset distance is 32/16 per dimension
        # over other nodes; exact value computed combinatorially: each
        # dimension contributes mean 2 over all 64 pairs minus self.
        topo = KAryNCube(8, 2)
        assert topo.average_distance() == pytest.approx(256 / 63, rel=1e-9)

    @given(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b):
        topo = KAryNCube(8, 2)
        via = 17
        assert topo.distance(a, b) <= topo.distance(a, via) + topo.distance(via, b)


# ----------------------------------------------------------------------
# Minimal directions
# ----------------------------------------------------------------------
class TestMinimalDirections:
    def test_empty_at_destination(self):
        assert KAryNCube(8, 2).minimal_directions(3, 3) == ()

    def test_single_dimension_positive(self):
        topo = KAryNCube(8, 2)
        dirs = topo.minimal_directions(topo.node_at((0, 0)), topo.node_at((2, 0)))
        assert dirs == ((0, +1),)

    def test_wraparound_direction(self):
        topo = KAryNCube(8, 2)
        dirs = topo.minimal_directions(topo.node_at((0, 0)), topo.node_at((6, 0)))
        assert dirs == ((0, -1),)

    def test_two_dimensions(self):
        topo = KAryNCube(8, 2)
        dirs = topo.minimal_directions(topo.node_at((0, 0)), topo.node_at((1, 7)))
        assert set(dirs) == {(0, +1), (1, -1)}

    def test_halfway_tie_gives_both(self):
        topo = KAryNCube(8, 1)
        dirs = topo.minimal_directions(0, 4)
        assert set(dirs) == {(0, +1), (0, -1)}

    def test_mesh_never_wraps(self):
        topo = Mesh(8, 1)
        assert topo.minimal_directions(0, 7) == ((0, +1),)

    @given(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=100)
    def test_directions_reduce_distance(self, a, b):
        topo = KAryNCube(8, 2)
        if a == b:
            return
        for direction in topo.minimal_directions(a, b):
            if not topo.has_channel(a, direction):
                continue
            nxt = topo.neighbor(a, direction)
            assert topo.distance(nxt, b) == topo.distance(a, b) - 1

    @given(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=100)
    def test_nonempty_unless_at_destination(self, a, b):
        topo = KAryNCube(8, 2)
        dirs = topo.minimal_directions(a, b)
        assert (len(dirs) > 0) == (a != b)
