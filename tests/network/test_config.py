"""Tests for simulation configuration and validation."""

import pytest

from repro.network.config import (
    DetectorConfig,
    SimulationConfig,
    TrafficConfig,
    paper_config,
    quick_config,
)
from repro.network.topology import KAryNCube, Mesh


class TestDefaults:
    def test_defaults_match_paper_model(self):
        config = SimulationConfig()
        assert config.vcs_per_channel == 3
        assert config.buffer_depth == 4
        assert config.routing == "fully-adaptive"
        assert config.detector.t1 == 1

    def test_paper_config_is_512_nodes(self):
        assert paper_config().build_topology().num_nodes == 512

    def test_quick_config_is_64_nodes(self):
        assert quick_config().build_topology().num_nodes == 64

    def test_default_validates(self):
        SimulationConfig().validate()


class TestTopologyBuilding:
    def test_builds_torus(self):
        assert isinstance(SimulationConfig(topology="torus").build_topology(), KAryNCube)

    def test_builds_mesh(self):
        assert isinstance(SimulationConfig(topology="mesh").build_topology(), Mesh)

    def test_unknown_topology_raises(self):
        with pytest.raises(ValueError, match="unknown topology"):
            SimulationConfig(topology="hypercube").build_topology()


class TestInjectionLimit:
    def test_fraction_computes_floor(self):
        config = SimulationConfig(injection_limit_fraction=0.5)
        assert config.injection_limit(18) == 9

    def test_none_disables(self):
        config = SimulationConfig(injection_limit_fraction=None)
        assert config.injection_limit(18) is None

    def test_invalid_fraction_raises(self):
        config = SimulationConfig(injection_limit_fraction=1.5)
        with pytest.raises(ValueError):
            config.injection_limit(18)

    def test_zero_fraction_raises(self):
        config = SimulationConfig(injection_limit_fraction=0.0)
        with pytest.raises(ValueError):
            config.injection_limit(18)


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("vcs_per_channel", 0),
            ("buffer_depth", 0),
            ("injection_ports", 0),
            ("ejection_ports", 0),
            ("warmup_cycles", -1),
            ("measure_cycles", 0),
            ("recovery", "teleport"),
        ],
    )
    def test_bad_field_rejected(self, field, value):
        config = SimulationConfig()
        setattr(config, field, value)
        with pytest.raises(ValueError):
            config.validate()

    def test_negative_rate_rejected(self):
        config = SimulationConfig()
        config.traffic.injection_rate = -0.1
        with pytest.raises(ValueError):
            config.validate()

    def test_zero_threshold_rejected(self):
        config = SimulationConfig()
        config.detector.threshold = 0
        with pytest.raises(ValueError):
            config.validate()

    @pytest.mark.parametrize(
        "recovery", ["progressive", "progressive-reinject", "regressive", "none"]
    )
    def test_all_recovery_schemes_accepted(self, recovery):
        SimulationConfig(recovery=recovery).validate()


class TestReplace:
    def test_replace_changes_field(self):
        clone = SimulationConfig().replace(radix=4)
        assert clone.radix == 4

    def test_replace_deep_copies_traffic(self):
        config = SimulationConfig()
        clone = config.replace()
        clone.traffic.injection_rate = 0.9
        clone.traffic.pattern_params["radius"] = 2
        assert config.traffic.injection_rate != 0.9
        assert "radius" not in config.traffic.pattern_params

    def test_replace_deep_copies_detector(self):
        config = SimulationConfig()
        clone = config.replace()
        clone.detector.threshold = 999
        assert config.detector.threshold != 999


class TestSubConfigs:
    def test_traffic_defaults(self):
        traffic = TrafficConfig()
        assert traffic.pattern == "uniform"
        assert traffic.lengths == "s"

    def test_detector_defaults(self):
        detector = DetectorConfig()
        assert detector.mechanism == "ndm"
        assert detector.threshold == 32
        assert not detector.selective_promotion


class TestSerialization:
    def test_round_trip(self):
        config = SimulationConfig(radix=8, dimensions=3, seed=42)
        config.traffic.pattern = "hot-spot"
        config.traffic.pattern_params = {"fraction": 0.05}
        config.detector.mechanism = "pdm"
        config.detector.threshold = 128
        rebuilt = SimulationConfig.from_dict(config.to_dict())
        assert rebuilt == config

    def test_to_dict_is_json_serializable(self):
        import json

        payload = json.dumps(SimulationConfig().to_dict())
        rebuilt = SimulationConfig.from_dict(json.loads(payload))
        assert rebuilt.radix == SimulationConfig().radix

    def test_from_dict_validates(self):
        payload = SimulationConfig().to_dict()
        payload["vcs_per_channel"] = 0
        with pytest.raises(ValueError):
            SimulationConfig.from_dict(payload)
