"""Injection: source queues, ports, and the injection limitation mechanism."""

import pytest

from repro.network.message import Message
from repro.network.simulator import Simulator
from repro.network.types import MessageStatus
from tests.conftest import small_config


def quiet_config(**overrides):
    config = small_config(**overrides)
    config.traffic.injection_rate = 0.0
    config.ground_truth_interval = 0
    return config


def send_one(sim, source, dest, length):
    m = Message(sim._next_message_id, source, dest, length, sim.cycle)
    sim._next_message_id += 1
    sim.enqueue_source(m, source)
    return m


class TestInjectionPorts:
    def test_parallel_injection_up_to_port_count(self):
        config = quiet_config(injection_ports=2, vcs_per_channel=1)
        sim = Simulator(config)
        m1 = send_one(sim, 0, 5, 8)
        m2 = send_one(sim, 0, 5, 8)
        m3 = send_one(sim, 0, 5, 8)
        sim.step()
        in_network = [m for m in (m1, m2, m3) if m.status is MessageStatus.IN_NETWORK]
        # 2 ports x 1 VC = at most 2 worms can hold injection channels.
        assert len(in_network) == 2

    def test_queue_drains_in_fifo_order(self):
        config = quiet_config(injection_ports=1, vcs_per_channel=1)
        sim = Simulator(config)
        first = send_one(sim, 0, 5, 8)
        second = send_one(sim, 0, 5, 8)
        for _ in range(400):
            sim.step()
        assert first.deliver_cycle < second.deliver_cycle


class TestInjectionLimitation:
    def _blocked_router_config(self):
        """1 VC per channel so a node's outputs fill quickly."""
        return quiet_config(vcs_per_channel=1, injection_ports=4)

    def test_limitation_blocks_when_outputs_busy(self):
        config = self._blocked_router_config()
        config.injection_limit_fraction = 0.25  # allow <=1 of 4 busy VCs
        sim = Simulator(config)
        topo = sim.topology
        # Two long worms out of node 0 occupy 2 network VCs (> limit).
        m1 = send_one(sim, 0, topo.node_at((2, 0)), 60)
        m2 = send_one(sim, 0, topo.node_at((0, 2)), 60)
        for _ in range(10):
            sim.step()
        m3 = send_one(sim, 0, topo.node_at((2, 2)), 8)
        for _ in range(10):
            sim.step()
        router = sim.routers[0]
        assert router.busy_network_vcs >= 2
        assert m3.status is MessageStatus.QUEUED  # throttled

    def test_no_limitation_injects_immediately(self):
        config = self._blocked_router_config()
        config.injection_limit_fraction = None
        sim = Simulator(config)
        topo = sim.topology
        send_one(sim, 0, topo.node_at((2, 0)), 60)
        send_one(sim, 0, topo.node_at((0, 2)), 60)
        for _ in range(10):
            sim.step()
        m3 = send_one(sim, 0, topo.node_at((2, 2)), 8)
        for _ in range(5):
            sim.step()
        assert m3.status is MessageStatus.IN_NETWORK

    def test_throttled_message_eventually_injected(self):
        config = self._blocked_router_config()
        config.injection_limit_fraction = 0.25
        sim = Simulator(config)
        topo = sim.topology
        m1 = send_one(sim, 0, topo.node_at((2, 0)), 20)
        m2 = send_one(sim, 0, topo.node_at((0, 2)), 20)
        m3 = send_one(sim, 0, topo.node_at((2, 2)), 8)
        for _ in range(500):
            sim.step()
        assert all(
            m.status is MessageStatus.DELIVERED for m in (m1, m2, m3)
        )

    def test_limits_computed_per_router(self):
        config = small_config(topology="mesh", injection_limit_fraction=0.5)
        sim = Simulator(config)
        # Mesh corner routers have fewer outputs than interior ones.
        corner_limit = sim.injection_limits[0]
        interior = sim.topology.node_at((1, 1))
        assert sim.injection_limits[interior] > corner_limit


class TestSourceQueueLimit:
    def test_drops_counted_when_queue_full(self, run_sim):
        config = small_config(source_queue_limit=2)
        config.traffic.injection_rate = 0.95  # far beyond saturation
        config.warmup_cycles = 100
        config.measure_cycles = 800
        _, stats = run_sim(config)
        assert stats.source_queue_drops > 0

    def test_unbounded_queue_never_drops(self, run_sim):
        config = small_config(source_queue_limit=0)
        config.traffic.injection_rate = 0.6
        config.warmup_cycles = 100
        config.measure_cycles = 500
        _, stats = run_sim(config)
        assert stats.source_queue_drops == 0


class TestGenerationProcess:
    def test_offered_load_matches_rate(self, run_sim):
        config = small_config()
        config.warmup_cycles = 200
        config.measure_cycles = 3000
        config.traffic.injection_rate = 0.2
        _, stats = run_sim(config)
        offered = stats.generated_measured * 16 / (3000 * 16)
        assert offered == pytest.approx(0.2, rel=0.15)

    def test_generated_messages_counted(self, run_sim):
        config = small_config()
        config.traffic.injection_rate = 0.2
        _, stats = run_sim(config)
        assert stats.generated > 0
        assert stats.generated >= stats.injected
