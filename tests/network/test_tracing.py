"""Tests for structured event tracing."""

import pytest

from repro.network.simulator import Simulator
from repro.network.tracing import Tracer, format_event
from tests.conftest import small_config


def traced_run(rate=0.2, cycles=400, **tracer_kwargs):
    config = small_config()
    config.traffic.injection_rate = rate
    sim = Simulator(config)
    sim.tracer = Tracer(**tracer_kwargs)
    for _ in range(cycles):
        sim.step()
    return sim


class TestTracerUnit:
    def test_record_and_query(self):
        tracer = Tracer()
        tracer.record(("inject", 5, 1, 0))
        tracer.record(("deliver", 9, 1, 3))
        tracer.record(("inject", 6, 2, 1))
        assert tracer.count("inject") == 2
        assert [e[0] for e in tracer.for_message(1)] == ["inject", "deliver"]

    def test_kind_filter(self):
        tracer = Tracer(kinds=["detect"])
        tracer.record(("inject", 1, 1, 0))
        tracer.record(("detect", 2, 1, 0, "ndm"))
        assert len(tracer) == 1
        assert tracer.events[0][0] == "detect"

    def test_capacity_bounds_memory(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            tracer.record(("inject", i, i, 0))
        assert len(tracer) == 3
        assert tracer.dropped == 7
        assert tracer.events[0][1] == 7  # oldest retained

    def test_unbounded_capacity(self):
        tracer = Tracer(capacity=0)
        for i in range(1000):
            tracer.record(("inject", i, i, 0))
        assert len(tracer) == 1000

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=-1)

    def test_clear(self):
        tracer = Tracer()
        tracer.record(("inject", 1, 1, 0))
        tracer.clear()
        assert len(tracer) == 0

    def test_format_event(self):
        text = format_event(("detect", 120, 7, 3, "ndm"))
        assert "detect" in text
        assert "msg=7" in text
        assert "120" in text


class TestSimulatorIntegration:
    def test_lifecycle_events_recorded(self):
        sim = traced_run()
        delivered = [
            m for m in range(sim._next_message_id)
            if sim.tracer.lifecycle(m)
            and sim.tracer.lifecycle(m)[-1] == "deliver"
        ]
        assert delivered
        # Each delivered message was injected before it was delivered.
        mid = delivered[0]
        kinds = sim.tracer.lifecycle(mid)
        assert kinds.index("inject") < kinds.index("deliver")

    def test_route_events_have_channel(self):
        sim = traced_run()
        routes = sim.tracer.of_kind("route")
        assert routes
        for event in routes[:20]:
            assert isinstance(event[4], int)  # channel index

    def test_deliver_count_matches_stats(self):
        sim = traced_run()
        assert sim.tracer.count("deliver") == sim.stats.delivered

    def test_inject_count_matches_stats(self):
        sim = traced_run()
        assert sim.tracer.count("inject") == sim.stats.injected

    def test_detection_events_traced(self):
        from repro.figures.scenarios import build_figure3

        scenario = build_figure3("ndm", threshold=8, recovery="progressive")
        scenario.sim.tracer = Tracer()
        scenario.run(600)
        assert scenario.sim.tracer.count("detect") == 1
        assert scenario.sim.tracer.count("recover") == 1

    def test_no_tracer_no_overhead_path(self):
        config = small_config()
        config.traffic.injection_rate = 0.2
        sim = Simulator(config)
        assert sim.tracer is None
        for _ in range(100):
            sim.step()  # must not raise


class TestEvictionAndFiltering:
    """Bounded-capacity eviction and kinds-whitelist behaviour in depth."""

    def test_eviction_keeps_newest_in_order(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.record(("inject", i, i, 0))
        assert [e[1] for e in tracer.events] == [6, 7, 8, 9]
        assert tracer.dropped == 6

    def test_filtered_events_do_not_consume_capacity(self):
        tracer = Tracer(capacity=2, kinds=["detect"])
        for i in range(50):
            tracer.record(("inject", i, i, 0))  # all filtered out
        tracer.record(("detect", 100, 1, 0, "ndm"))
        tracer.record(("detect", 101, 2, 0, "ndm"))
        assert len(tracer) == 2
        assert tracer.dropped == 0  # filtering is not dropping

    def test_filtered_events_not_counted_as_dropped(self):
        tracer = Tracer(capacity=1, kinds=["deliver"])
        tracer.record(("inject", 1, 1, 0))
        tracer.record(("deliver", 2, 1, 3))
        tracer.record(("deliver", 3, 2, 4))  # evicts the first deliver
        assert tracer.dropped == 1
        assert tracer.events[0][1] == 3

    def test_multi_kind_whitelist(self):
        tracer = Tracer(kinds=("inject", "deliver"))
        tracer.record(("inject", 1, 1, 0))
        tracer.record(("route", 2, 1, 0, 3))
        tracer.record(("block", 3, 1, 0))
        tracer.record(("deliver", 4, 1, 2))
        assert [e[0] for e in tracer.events] == ["inject", "deliver"]

    def test_queries_after_eviction(self):
        tracer = Tracer(capacity=3)
        tracer.record(("inject", 0, 7, 0))  # will be evicted
        tracer.record(("route", 1, 7, 0, 2))
        tracer.record(("block", 2, 7, 0))
        tracer.record(("deliver", 3, 7, 1))
        assert tracer.count("inject") == 0
        assert tracer.lifecycle(7) == ["route", "block", "deliver"]

    def test_clear_resets_dropped(self):
        tracer = Tracer(capacity=1)
        tracer.record(("inject", 0, 0, 0))
        tracer.record(("inject", 1, 1, 0))
        assert tracer.dropped == 1
        tracer.clear()
        assert tracer.dropped == 0
        tracer.record(("inject", 2, 2, 0))
        assert len(tracer) == 1

    def test_simulator_with_kind_filter_records_subset(self):
        full = traced_run()
        filtered = traced_run(kinds=["deliver"])
        assert filtered.tracer.count("deliver") > 0
        assert filtered.tracer.count("inject") == 0
        assert filtered.tracer.count("route") == 0
        # same workload/seed: the filtered trace sees every delivery
        assert filtered.tracer.count("deliver") == full.tracer.count("deliver")

    def test_simulator_with_bounded_capacity(self):
        sim = traced_run(capacity=16)
        assert len(sim.tracer) == 16
        assert sim.tracer.dropped > 0
        # retained tail is the most recent slice, still in cycle order
        cycles = [e[1] for e in sim.tracer.events]
        assert cycles == sorted(cycles)
