"""Basic simulator behaviour: delivery, latency, conservation, determinism."""

import pytest

from repro.network.simulator import Simulator
from repro.network.types import MessageStatus
from tests.conftest import small_config


def single_message_config(**overrides):
    """A configuration that generates no traffic (messages placed by hand)."""
    config = small_config(**overrides)
    config.traffic.injection_rate = 0.0
    config.ground_truth_interval = 0
    return config


def send_one(sim, source, dest, length):
    """Enqueue one message at a node's source queue."""
    from repro.network.message import Message

    m = Message(sim._next_message_id, source, dest, length, sim.cycle)
    sim._next_message_id += 1
    sim.enqueue_source(m, source)
    return m


class TestSingleMessageDelivery:
    def test_message_delivered(self):
        sim = Simulator(single_message_config())
        m = send_one(sim, 0, 5, 8)
        for _ in range(200):
            sim.step()
        assert m.status is MessageStatus.DELIVERED
        assert m.flits_delivered == m.length

    def test_all_channels_freed_after_delivery(self):
        sim = Simulator(single_message_config())
        send_one(sim, 0, 5, 8)
        for _ in range(200):
            sim.step()
        for pc in sim.channels:
            assert pc.occupied_count == 0

    def test_no_load_latency_close_to_distance_plus_length(self):
        sim = Simulator(single_message_config())
        dest = sim.topology.node_at((2, 2))
        m = send_one(sim, 0, dest, 8)
        for _ in range(200):
            sim.step()
        latency = m.deliver_cycle - m.gen_cycle
        ideal = sim.topology.distance(0, dest) + m.length
        # 1-cycle-per-hop pipeline with injection/routing overhead.
        assert ideal <= latency <= ideal + 12

    def test_longer_message_takes_longer(self):
        times = []
        for length in (4, 32):
            sim = Simulator(single_message_config())
            m = send_one(sim, 0, 5, length)
            for _ in range(300):
                sim.step()
            times.append(m.deliver_cycle)
        assert times[1] > times[0]

    def test_single_flit_message(self):
        sim = Simulator(single_message_config())
        m = send_one(sim, 0, 1, 1)
        for _ in range(50):
            sim.step()
        assert m.status is MessageStatus.DELIVERED

    def test_message_longer_than_path_buffers(self):
        sim = Simulator(single_message_config())
        m = send_one(sim, 0, 1, 100)
        for _ in range(300):
            sim.step()
        assert m.status is MessageStatus.DELIVERED


class TestConservationInvariants:
    def test_invariants_hold_throughout_run(self):
        config = small_config()
        config.traffic.injection_rate = 0.3
        sim = Simulator(config)
        for _ in range(300):
            sim.step()
            if sim.cycle % 50 == 0:
                sim.check_invariants()

    def test_flit_accounting_at_end(self, run_sim):
        config = small_config()
        config.traffic.injection_rate = 0.2
        sim, stats = run_sim(config)
        sim.check_invariants()
        assert stats.delivered <= stats.generated
        assert stats.flits_delivered > 0


class TestDeterminism:
    def test_same_seed_same_stats(self):
        def run():
            config = small_config()
            config.traffic.injection_rate = 0.25
            return Simulator(config).run()

        a, b = run(), run()
        assert a.delivered == b.delivered
        assert a.injected == b.injected
        assert a.latency_sum == b.latency_sum
        assert a.detections == b.detections

    def test_different_seed_differs(self):
        def run(seed):
            config = small_config(seed=seed)
            config.traffic.injection_rate = 0.25
            return Simulator(config).run()

        a, b = run(1), run(2)
        assert (a.delivered, a.latency_sum) != (b.delivered, b.latency_sum)


class TestMeasurementWindow:
    def test_measured_counts_below_totals(self, run_sim):
        config = small_config()
        config.traffic.injection_rate = 0.2
        _, stats = run_sim(config)
        assert stats.injected_measured <= stats.injected
        assert stats.delivered_measured <= stats.delivered

    def test_zero_rate_runs_clean(self, run_sim):
        config = small_config()
        config.traffic.injection_rate = 0.0
        _, stats = run_sim(config)
        assert stats.generated == 0
        assert stats.throughput() == 0.0

    def test_drain_phase_empties_network(self):
        config = small_config()
        config.traffic.injection_rate = 0.2
        config.drain_cycles = 3000
        sim = Simulator(config)
        sim.run()
        assert sim.message_count_in_network() == 0

    def test_cycles_run_recorded(self, run_sim):
        config = small_config()
        _, stats = run_sim(config)
        assert stats.cycles_run == config.warmup_cycles + config.measure_cycles


class TestThroughputTracksOfferedLoad:
    @pytest.mark.parametrize("rate", [0.05, 0.15, 0.3])
    def test_accepted_matches_offered_below_saturation(self, rate, run_sim):
        config = small_config()
        config.warmup_cycles = 300
        config.measure_cycles = 1500
        config.traffic.injection_rate = rate
        _, stats = run_sim(config)
        assert stats.throughput() == pytest.approx(rate, rel=0.25)

    def test_latency_grows_with_load(self, run_sim):
        lats = []
        for rate in (0.05, 0.45):
            config = small_config()
            config.warmup_cycles = 300
            config.measure_cycles = 1500
            config.traffic.injection_rate = rate
            _, stats = run_sim(config)
            lats.append(stats.average_latency())
        assert lats[1] > lats[0]
