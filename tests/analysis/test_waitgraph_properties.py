"""Property-based consistency between the wait graph and the fixpoint oracle."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.deadlock import find_deadlocked
from repro.analysis.waitgraph import build_wait_graph
from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator

SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

params_strategy = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=2**16),
        "rate": st.floats(min_value=0.2, max_value=0.9),
        "vcs": st.integers(min_value=1, max_value=3),
        "cycles": st.integers(min_value=100, max_value=400),
    }
)


def build_sim(params) -> Simulator:
    config = SimulationConfig(
        radix=4,
        dimensions=2,
        vcs_per_channel=params["vcs"],
        warmup_cycles=0,
        measure_cycles=10,
        seed=params["seed"],
        ground_truth_interval=0,
    )
    config.traffic.injection_rate = params["rate"]
    config.detector.mechanism = "none"
    config.recovery = "none"
    sim = Simulator(config)
    for _ in range(params["cycles"]):
        sim.step()
    return sim


class TestWaitGraphProperties:
    @given(params_strategy)
    @SLOW
    def test_knot_equals_fixpoint(self, params):
        sim = build_sim(params)
        graph = build_wait_graph(sim.active_messages)
        fixpoint_ids = {m.id for m in find_deadlocked(sim.active_messages)}
        assert graph.knot_members() == fixpoint_ids

    @given(params_strategy)
    @SLOW
    def test_knot_members_have_no_free_alternatives(self, params):
        sim = build_sim(params)
        graph = build_wait_graph(sim.active_messages)
        for message_id in graph.knot_members():
            assert graph.free_alternatives[message_id] == 0

    @given(params_strategy)
    @SLOW
    def test_edges_point_at_real_occupants(self, params):
        sim = build_sim(params)
        graph = build_wait_graph(sim.active_messages)
        for edges in graph.edges.values():
            for edge in edges:
                pc = sim.channels[edge.channel_index]
                assert pc.vcs[edge.vc_index].occupant is edge.holder

    @given(params_strategy)
    @SLOW
    def test_knot_is_cyclic_in_graph(self, params):
        """Every nonempty knot contains at least one directed cycle."""
        sim = build_sim(params)
        graph = build_wait_graph(sim.active_messages)
        knot = graph.knot_members()
        if not knot:
            return
        digraph = graph.to_networkx().subgraph(knot)
        import networkx

        assert not networkx.is_directed_acyclic_graph(digraph)
