"""Tests for per-channel utilization analysis."""

import pytest

from repro.analysis.channels import (
    hottest_nodes,
    inactivity_histogram,
    network_occupancy,
    occupancy_by_node,
    snapshot_channels,
    stalled_channels,
)
from repro.network.simulator import Simulator
from tests.conftest import small_config


def loaded_sim(rate=0.4, cycles=300, **overrides):
    config = small_config(**overrides)
    config.traffic.injection_rate = rate
    sim = Simulator(config)
    for _ in range(cycles):
        sim.step()
    return sim


class TestSnapshots:
    def test_every_channel_snapshotted(self):
        sim = loaded_sim()
        snaps = snapshot_channels(sim)
        assert len(snaps) == len(sim.channels)

    def test_occupancy_fraction(self):
        sim = loaded_sim()
        for snap in snapshot_channels(sim):
            assert 0.0 <= snap.occupancy <= 1.0

    def test_buffered_flits_match_vcs(self):
        sim = loaded_sim()
        for snap, pc in zip(snapshot_channels(sim), sim.channels):
            assert snap.buffered_flits == sum(vc.flits for vc in pc.vcs)

    def test_idle_network_all_free(self):
        sim = loaded_sim(rate=0.0, cycles=50)
        assert all(s.occupied_vcs == 0 for s in snapshot_channels(sim))


class TestOccupancyMetrics:
    def test_network_occupancy_range(self):
        sim = loaded_sim()
        assert 0.0 < network_occupancy(sim) < 1.0

    def test_idle_network_zero(self):
        sim = loaded_sim(rate=0.0, cycles=50)
        assert network_occupancy(sim) == 0.0

    def test_occupancy_by_node_covers_all_nodes(self):
        sim = loaded_sim()
        occ = occupancy_by_node(sim)
        assert set(occ) == set(range(sim.topology.num_nodes))

    def test_hottest_nodes_sorted(self):
        sim = loaded_sim()
        top = hottest_nodes(sim, count=4)
        values = [v for _, v in top]
        assert values == sorted(values, reverse=True)
        assert len(top) == 4

    def test_hotspot_pattern_heats_hot_node_region(self):
        config = small_config()
        config.traffic.pattern = "hot-spot"
        config.traffic.pattern_params = {"fraction": 0.6, "hot_node": 5}
        config.traffic.injection_rate = 0.5
        sim = Simulator(config)
        for _ in range(500):
            sim.step()
        occ = occupancy_by_node(sim)
        neighbors = [n for _, n in sim.topology.neighbors(5)]
        hot_region = max(occ[n] for n in neighbors + [5])
        others = [
            v for node, v in occ.items()
            if node != 5 and node not in neighbors
        ]
        assert hot_region >= max(others) * 0.5  # hot region among the hottest


class TestStallAnalysis:
    def test_no_stalls_when_idle(self):
        sim = loaded_sim(rate=0.0, cycles=50)
        assert stalled_channels(sim, threshold=1) == []

    def test_deadlock_scenario_stalls(self):
        from repro.figures.scenarios import build_figure3

        scenario = build_figure3("none")
        scenario.run(80)
        stalls = stalled_channels(scenario.sim, threshold=32)
        assert len(stalls) >= 4  # the four frozen cycle channels

    def test_histogram_keys_bucketed(self):
        sim = loaded_sim()
        histogram = inactivity_histogram(sim, bucket=4, cap=64)
        assert all(key % 4 == 0 for key in histogram)
        assert sum(histogram.values()) > 0

    def test_histogram_bucket_validation(self):
        sim = loaded_sim(rate=0.0, cycles=10)
        with pytest.raises(ValueError):
            inactivity_histogram(sim, bucket=0)

    def test_histogram_cap_absorbs_tail(self):
        from repro.figures.scenarios import build_figure3

        scenario = build_figure3("none")
        scenario.run(300)
        histogram = inactivity_histogram(scenario.sim, bucket=8, cap=64)
        assert max(histogram) <= 64
        assert histogram.get(64, 0) >= 4  # long-frozen deadlock channels
