"""Tests for the saturation-point estimator."""

import pytest

from repro.analysis.saturation import SaturationResult, find_saturation
from tests.conftest import small_config


def probe_config():
    config = small_config()
    config.warmup_cycles = 300
    config.measure_cycles = 1500
    config.detector.mechanism = "none"
    config.ground_truth_interval = 0
    return config


# Short probe windows on a 16-node network are statistically noisy; a
# looser tracking tolerance keeps these tests robust.
TOLERANCE = 0.15


class TestFindSaturation:
    @pytest.fixture(scope="class")
    def uniform_result(self) -> SaturationResult:
        return find_saturation(
            probe_config(), low=0.1, steps=4, tolerance=TOLERANCE
        )

    def test_saturation_in_plausible_band(self, uniform_result):
        # 4-ary 2-cube uniform: average distance 2, 4 channels/node, so
        # the theoretical limit is ~2 flits/cycle/node; adaptive wormhole
        # reaches a substantial fraction of it.
        assert 0.5 < uniform_result.saturation_rate < 2.2

    def test_throughput_consistent(self, uniform_result):
        assert uniform_result.saturation_throughput <= 2.2
        assert uniform_result.saturation_throughput > 0.4

    def test_samples_recorded(self, uniform_result):
        assert len(uniform_result.samples) >= 4
        for rate, thr in uniform_result.samples:
            assert thr <= rate + 0.05

    def test_low_starting_point_saturated(self):
        """If even the starting rate saturates, report it directly."""
        config = probe_config()
        config.traffic.pattern = "hot-spot"
        config.traffic.pattern_params = {"fraction": 0.9}
        config.ejection_ports = 1
        result = find_saturation(config, low=0.8, steps=2, tolerance=TOLERANCE)
        assert result.saturation_rate == 0.8

    def test_sending_fraction_respected(self):
        """Permutations with fixed points still track below saturation."""
        config = probe_config()
        config.radix = 8  # 64 nodes: power of two for bit patterns
        config.traffic.pattern = "butterfly"
        result = find_saturation(config, low=0.1, steps=3, tolerance=TOLERANCE)
        # Butterfly sends from half the nodes; accepted throughput at the
        # found point is about half the offered rate, yet the search must
        # not bail out at the first sample.
        assert result.saturation_rate > 0.1
