"""Tests for the channel wait-for graph."""

from repro.analysis.waitgraph import (
    build_wait_graph,
    describe_deadlock,
    tree_depth_histogram,
)
from repro.figures.scenarios import build_figure2, build_figure3


class TestBuildWaitGraph:
    def test_empty_when_nothing_blocked(self):
        scenario = build_figure2("none")
        scenario.sim.free_worm(scenario.messages["B"], scenario.sim.cycle)
        scenario.sim.free_worm(scenario.messages["C"], scenario.sim.cycle)
        scenario.sim.free_worm(scenario.messages["D"], scenario.sim.cycle)
        graph = build_wait_graph([])
        assert graph.blocked_count() == 0

    def test_figure2_chain_structure(self):
        scenario = build_figure2("none")
        scenario.run(4)
        graph = build_wait_graph(scenario.sim.active_messages)
        names = {m.id: n for n, m in scenario.messages.items()}
        b = scenario.messages["B"]
        c = scenario.messages["C"]
        d = scenario.messages["D"]
        assert graph.holders_of(c) == {b.id}
        assert graph.holders_of(d) == {c.id}
        assert graph.holders_of(b) == {scenario.messages["A"].id}
        assert names  # names resolvable

    def test_figure3_cycle_structure(self):
        scenario = build_figure3("none")
        scenario.run(10)
        graph = build_wait_graph(scenario.sim.active_messages)
        b = scenario.messages["B"]
        e = scenario.messages["E"]
        assert graph.holders_of(b) == {e.id}

    def test_free_alternatives_counted(self):
        scenario = build_figure2("none")
        scenario.run(4)
        graph = build_wait_graph(scenario.sim.active_messages)
        # Single-VC scenario channels: no free alternatives anywhere.
        assert all(v == 0 for v in graph.free_alternatives.values())


class TestCycleAnalysis:
    def test_no_cycle_in_figure2(self):
        scenario = build_figure2("none")
        scenario.run(4)
        graph = build_wait_graph(scenario.sim.active_messages)
        assert graph.candidate_cycles() == []
        assert graph.knot_members() == set()

    def test_cycle_found_in_figure3(self):
        scenario = build_figure3("none")
        scenario.run(10)
        graph = build_wait_graph(scenario.sim.active_messages)
        cycles = graph.candidate_cycles()
        assert len(cycles) == 1
        assert len(cycles[0]) == 4

    def test_knot_matches_fixpoint(self):
        scenario = build_figure3("none")
        scenario.run(10)
        graph = build_wait_graph(scenario.sim.active_messages)
        expected = {m.id for n, m in scenario.messages.items() if n != "A"}
        assert graph.knot_members() == expected

    def test_networkx_graph_shape(self):
        scenario = build_figure3("none")
        scenario.run(10)
        graph = build_wait_graph(scenario.sim.active_messages).to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 4


class TestDiagnostics:
    def test_describe_deadlock_lines(self):
        scenario = build_figure3("none")
        scenario.run(10)
        graph = build_wait_graph(scenario.sim.active_messages)
        names = {m.id: n for n, m in scenario.messages.items()}
        lines = describe_deadlock(graph, names)
        assert len(lines) == 4
        assert any("B" in line and "waits on" in line for line in lines)

    def test_tree_depth_histogram_chain(self):
        scenario = build_figure2("none")
        scenario.run(4)
        graph = build_wait_graph(scenario.sim.active_messages)
        histogram = tree_depth_histogram(graph)
        # D->C->B chain: depths 0 (B: holder A not blocked), 1 (C), 2 (D).
        assert histogram == {0: 1, 1: 1, 2: 1}

    def test_tree_depth_histogram_cycle_saturates(self):
        scenario = build_figure3("none")
        scenario.run(10)
        graph = build_wait_graph(scenario.sim.active_messages)
        histogram = tree_depth_histogram(graph)
        assert histogram == {3: 4}  # each member sees the 3 others
