"""Tests for the ground-truth deadlock analyzer."""

from repro.analysis.deadlock import find_deadlocked, waiting_chain
from repro.figures.scenarios import (
    Scenario,
    build_figure2,
    build_figure3,
    place_worm,
    scenario_config,
)
from repro.network.simulator import Simulator


def quiet_scenario(**kwargs) -> Scenario:
    return Scenario(Simulator(scenario_config("none", 16, **kwargs)))


class TestFindDeadlocked:
    def test_empty_network(self):
        scenario = quiet_scenario()
        assert find_deadlocked(scenario.sim.active_messages) == set()

    def test_single_blocked_message_not_deadlocked(self):
        scenario = quiet_scenario()
        sim = scenario.sim
        place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=60, parked=True)
        scenario.run(2)
        b = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=16)
        scenario.run(5)
        assert b.is_blocked()
        # b waits on a non-blocked (parked counts as advancing) holder.
        assert find_deadlocked(sim.active_messages) == set()

    def test_blocked_tree_is_not_deadlock(self):
        scenario = build_figure2("none")
        scenario.run(5)
        assert find_deadlocked(scenario.sim.active_messages) == set()

    def test_cycle_is_deadlock(self):
        scenario = build_figure3("none")
        scenario.run(30)
        deadlocked = find_deadlocked(scenario.sim.active_messages)
        names = sorted(scenario.name_of(m.id) for m in deadlocked)
        assert names == ["B", "C", "D", "E"]

    def test_deadlock_plus_tree_branch(self):
        """A message blocked on a deadlocked one is itself doomed."""
        scenario = build_figure3("none")
        scenario.run(30)
        sim = scenario.sim
        # G enters at (2,1), goes +x to d=(3,1), then wants -y across
        # B's held channel ch(d->a): it waits on the deadlock forever.
        g = place_worm(sim, (2, 1), [(0, +1)], (3, 0), length=16)
        scenario.run(10)
        deadlocked = find_deadlocked(sim.active_messages)
        assert g in deadlocked
        assert len(deadlocked) == 5

    def test_recovery_clears_deadlock(self):
        scenario = build_figure3("ndm", threshold=8, recovery="progressive")
        scenario.run(400)
        assert find_deadlocked(scenario.sim.active_messages) == set()

    def test_free_alternative_escapes(self):
        """A blocked message with any free feasible VC is never deadlocked."""
        config = scenario_config("none", 16)
        config.vcs_per_channel = 2
        scenario = Scenario(Simulator(config))
        sim = scenario.sim
        place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=60, parked=True)
        scenario.run(2)
        b = place_worm(sim, (3, 1), [(1, -1)], (4, 0), length=16)
        scenario.run(3)
        # The second VC of ch(a->b) is free: b is not even blocked.
        assert not b.is_blocked() or not find_deadlocked(sim.active_messages)


class TestWaitingChain:
    def test_chain_follows_holders(self):
        scenario = build_figure2("none")
        scenario.run(5)
        d = scenario.messages["D"]
        chain = waiting_chain(d)
        names = [scenario.name_of(m.id) for m in chain]
        assert names[:3] == ["D", "C", "B"]

    def test_chain_detects_cycle(self):
        scenario = build_figure3("none")
        scenario.run(30)
        b = scenario.messages["B"]
        chain = waiting_chain(b)
        ids = [m.id for m in chain]
        assert len(ids) != len(set(ids))  # closed a loop

    def test_chain_stops_at_advancing_holder(self):
        scenario = build_figure2("none")
        scenario.run(5)
        b = scenario.messages["B"]
        chain = waiting_chain(b)
        assert chain[-1] is scenario.messages["A"]

    def test_unblocked_message_chain_is_singleton(self):
        scenario = quiet_scenario()
        sim = scenario.sim
        m = place_worm(sim, (3, 0), [(0, +1)], (6, 0), length=16)
        assert waiting_chain(m) == [m]
