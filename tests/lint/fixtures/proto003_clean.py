"""Clean: a pure deadline hook and a deterministic probe phase.

``blocked_deadline`` computes from channel counters only (locals are
fine — no detector state is touched); ``probe_phase`` may mutate
detector-private transport state as long as it stays clock- and
RNG-free.
"""

from repro.core.detector import DeadlockDetector


class SteadyDetector(DeadlockDetector):
    name = "steady"
    has_probe_phase = True

    def blocked_deadline(self, sim, message, cycle):
        worst = None
        for pc in message.feasible_pcs:
            deadline = pc.inactivity_deadline(self.threshold)
            if deadline is not None and (worst is None or deadline > worst):
                worst = deadline
        return worst

    def probe_phase(self, sim, cycle):
        for session in self.sessions:
            session.hops += 1
        return None
