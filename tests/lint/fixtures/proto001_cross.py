"""Cross-file fixture: subclasses whose base lives in proto001_base."""

from proto001_base import RemoteBase


class CrossDetector(RemoteBase):
    """Clean: inherits blocked_deadline and name across files."""

    def on_blocked_attempt(self, message, cycle):
        return None


class CrossPoller(RemoteBase):  # expect: PROTO001
    """Offending: periodic_check without needs_periodic_check = True."""

    def periodic_check(self, cycle):
        return None
