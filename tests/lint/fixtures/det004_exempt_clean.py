"""Clean fixture: the batch backend's scoped DET004 waiver, done right.

Mirrors ``repro.network.batch``: a kernel-package module may import
numpy only under an explicit file-wide disable that names DET004 and is
paired with a digest-equivalence gate (see docs/performance.md).  The
import is also optional, so numpy-less hosts keep working.
"""
# repro-lint: disable-file=DET004

try:
    import numpy as np
except ImportError:
    np = None

HAVE_NUMPY = np is not None


def counters(k: int) -> object:
    if np is None:
        raise RuntimeError("requires numpy")
    return np.zeros(k, dtype=np.int64)
