"""Clean fixture: the batch backend's scoped DET004 waiver, done right.

Mirrors ``repro.network.batch``: a kernel-package module may import
numpy only under a *line-scoped* disable naming DET004, with a rationale
after `` - `` (here, as in batch.py, the EFF003 shared-trajectory rule
proves the use is integer-SoA-only).  The import is also optional, so
numpy-less hosts keep working.
"""

try:
    import numpy as np  # repro-lint: disable=DET004 - integer SoA only; EFF003 enforces this
except ImportError:
    np = None

HAVE_NUMPY = np is not None


def counters(k: int) -> object:
    if np is None:
        raise RuntimeError("requires numpy")
    return np.zeros(k, dtype=np.int64)
