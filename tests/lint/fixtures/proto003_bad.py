"""Offending: deadline/probe hooks breaking purity.

``blocked_deadline`` results are cached by the event engine as lower
bounds on the detection cycle; a hook that mutates state or draws
randomness makes the cached value unsound (the re-computed deadline can
move earlier).  ``probe_phase`` may mutate detector state, but drawing
randomness there desynchronizes the three engines' trajectories.
"""

from repro.core.detector import DeadlockDetector


class DriftingDetector(DeadlockDetector):
    name = "drifting"
    has_probe_phase = True

    def blocked_deadline(self, sim, message, cycle):
        self._cache[message.id] = cycle  # expect: PROTO003
        jitter = sim.rng.random()  # expect: PROTO003
        return cycle + int(jitter * 4)

    def probe_phase(self, sim, cycle):
        limit = self.rng.randrange(8)  # expect: PROTO003
        return limit
