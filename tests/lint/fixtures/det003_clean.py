"""Clean fixture: deterministic iteration patterns."""

from typing import Dict, Set


class Channel:
    waiters: Set["Message"]
    route_waiters: Dict["Message", None]

    def wake_sorted(self) -> None:
        for waiter in sorted(self.waiters, key=id):
            waiter.retry()

    def wake_ordered(self) -> None:
        # Insertion-ordered dict iteration is deterministic.
        for waiter in self.route_waiters:
            waiter.retry()


def int_sets() -> None:
    nodes = set(range(8))
    for node in nodes:
        print(node)
    ids = {1, 2, 3}
    for i in ids:
        print(i)


def int_keyed_dict() -> None:
    table: Dict[int, str] = {}
    for node in table.keys():
        print(node)
