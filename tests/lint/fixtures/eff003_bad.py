"""Offending: a shared-trajectory observer leaking per-cell state.

A batch observer rides one trajectory shared by every threshold cell;
anything it writes to the shared network objects is visible to all
cells, so only the G/P flag and the wake surface are allowed.  Bumping
a message's detection counter or a channel's flit counter would make
the shared run threshold-dependent.
"""


class CellObserver:
    shares_trajectory = True

    def on_event(self, message, cycle):
        self._mask |= 1
        message.gp = "G"
        message.retries += 1  # expect: EFF003

    def _spill(self, pc, cycle):
        pc.last_flit_cycle = cycle  # expect: EFF003
