"""Clean: floats stay in telemetry; behavioural writes re-quantize.

``int(...)`` is the sanctioned boundary (descent stops there), and a
comparison result is a bool, so threshold tests over float telemetry
may drive integral behavioural state.
"""


class Throttle:
    def tune(self, pc, window):
        share = self.hits / window
        self.ema = 0.9 * self.ema + 0.1 * share
        pc.i_threshold = int(share * 100)
        pc.counter_lag += self.hits // window
        flag = share > 2.0
        pc.first_attempt_done = flag
