# repro-lint: disable-file=DET001
"""A file-wide disable covers every occurrence of the code."""

import time


def first() -> float:
    return time.time()


def second() -> float:
    return time.time()
