"""Offending fixture: wall-clock reads inside a hot-path module."""

import time
from datetime import datetime
from time import time as now  # expect: DET001


def stamp() -> float:
    return time.time()  # expect: DET001


def label() -> str:
    return str(datetime.now())  # expect: DET001


def epoch() -> float:
    return now()  # expect: DET001
