"""Clean: the same lane release, with the wake on the path.

``release`` discharges its obligation through ``_wake_waiters`` — the
analyzer propagates the wake bit through the same-class call, so the
release writes are covered on every path.
"""


class Lane:
    def release(self):
        self.occupant = None
        self.free_mask |= 1 << self.index
        self.flits = 0
        self._wake_waiters()

    def _wake_waiters(self):
        for m in self.waiters:
            if m.route_asleep:
                m.route_asleep = False

    def allocate(self, message):
        self.free_mask &= ~(1 << self.index)
        self.occupant = message
