"""Offending: a swapped-in movement phase exceeding the phase contract.

Naming a method ``_movement_phase`` opts it into the movement-phase
write contract (park/gp/occupancy/counters/worm/lifecycle) no matter
which class hosts it — that is how the vectorized replacement stays
held to the same rules as the simulator's scalar phase.  Marking a
message detected or rewriting its routing bookkeeping is checks/routing
territory and must fire even from a helper.
"""


class VectorizedMovement:
    def _movement_phase(self, cycle):
        for m in self.order:
            m.move_asleep = True
            m.marked_deadlocked = True  # expect: EFF001
            self._reset(m, cycle)

    def _reset(self, m, cycle):
        m.blocked_since = cycle  # expect: EFF001
