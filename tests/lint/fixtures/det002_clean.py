"""Clean fixture: a seeded random.Random instance threaded explicitly."""

import random
from random import Random


def draw(seed: int) -> float:
    rng = Random(seed)
    return rng.random()


def draw_via_module(seed: int) -> float:
    rng = random.Random(seed)
    return rng.random()
