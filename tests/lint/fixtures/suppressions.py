"""Every violation in this fixture is covered by a disable comment."""

import time


def stamp() -> float:
    return time.time()  # repro-lint: disable=DET001


def above() -> float:
    # repro-lint: disable=DET001,DET003
    return time.time()
