"""Clean fixture: monotonic telemetry clocks are allowed in hot paths."""

import time
from time import perf_counter


def elapsed(start: float) -> float:
    return time.perf_counter() - start


def tick() -> float:
    return perf_counter()


def budget() -> float:
    return time.process_time()
