"""Offending: a vectorized movement module importing numpy unscoped.

The vectorized movement phase lives in a kernel package, where DET004
bans numpy outright unless the import line itself carries a scoped
waiver with a rationale.  A bare import (even inside the optional
try/except) and a ``from numpy import ...`` both fire; the digest-gated
rationale belongs on the import line, not in the docstring.
"""

try:
    import numpy as np  # expect: DET004
except ImportError:
    np = None

from numpy import int64  # expect: DET004


class VectorizedMovement:
    def __init__(self, sim):
        self.sim = sim
        self._asleep = np.zeros(1024, dtype=bool)
        self._ids = np.empty(0, dtype=int64)
