"""Offending fixture: detector subclasses violating the event contract."""

from repro.core.detector import DeadlockDetector


class SilentDetector(DeadlockDetector):  # expect: PROTO001
    """Overrides on_blocked_attempt but the event engine would sleep."""

    name = "silent"

    def on_blocked_attempt(self, message, cycle):
        return None


class PollingDetector(DeadlockDetector):  # expect: PROTO001
    """Overrides periodic_check without opting into periodic wakeups."""

    name = "polling"

    def blocked_deadline(self, message, cycle):
        return cycle + 8

    def periodic_check(self, cycle):
        return None


class NamelessDetector(DeadlockDetector):  # expect: PROTO001
    """Concrete detector that never overrides the abstract name."""

    can_sleep_blocked = False

    def on_blocked_attempt(self, message, cycle):
        return None
