"""Offending fixture: numpy inside a simulation-kernel package."""

import numpy  # expect: DET004
import numpy.linalg  # expect: DET004
from numpy import asarray  # expect: DET004


def as_vector(values: list) -> object:
    return asarray(values)
