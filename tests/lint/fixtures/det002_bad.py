"""Offending fixture: module-level RNG state."""

import random

import numpy
from random import randrange  # expect: DET002


def draw() -> float:
    return random.random()  # expect: DET002


def shuffle(items: list) -> None:
    random.shuffle(items)  # expect: DET002


def noisy() -> object:
    return numpy.random.rand(4)  # expect: DET002


def pick() -> int:
    return randrange(8)
