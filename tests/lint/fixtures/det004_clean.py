"""Clean fixture: the simulation kernel stays pure python."""

from typing import List


def mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0
