"""Offending: lane release without a reachable event-engine wake.

This is the PR 2 drain-termination bug class in miniature: freeing a
lane (``occupant = None``, OR-ing the free mask) can make a parked
header routable, so the event engine must be told — and here no wake
call is reachable from ``release``.  ``allocate`` writes the same
attributes in the parking direction (AND-ing bits out, occupant set to
a message) and correctly carries no obligation.
"""


class Lane:
    def release(self):
        self.occupant = None  # expect: EFF002
        self.free_mask |= 1 << self.index  # expect: EFF002
        self.flits = 0

    def allocate(self, message):
        self.free_mask &= ~(1 << self.index)
        self.occupant = message
