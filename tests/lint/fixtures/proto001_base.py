"""Cross-file fixture: a detector base linted as a separate module."""

from repro.core.detector import DeadlockDetector


class RemoteBase(DeadlockDetector):
    """Provides the deadline and name for subclasses in other files."""

    name = "remote"

    def blocked_deadline(self, message, cycle):
        return cycle + 16
