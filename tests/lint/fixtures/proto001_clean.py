"""Clean fixture: detector subclasses honouring the event contract."""

from repro.core.detector import DeadlockDetector


class DeadlineDetector(DeadlockDetector):
    """Blocked hook paired with a wakeup deadline."""

    name = "deadline"

    def on_blocked_attempt(self, message, cycle):
        return None

    def blocked_deadline(self, message, cycle):
        return cycle + 32


class EagerBase(DeadlockDetector):
    """Intermediate base that forbids sleeping through blocks."""

    name = "eager"
    can_sleep_blocked = False


class EagerDetector(EagerBase):
    """Inherits can_sleep_blocked = False through a same-module base."""

    def on_blocked_attempt(self, message, cycle):
        return None


class TickingDetector(DeadlockDetector):
    """Periodic hook paired with the opt-in flag."""

    name = "ticking"
    needs_periodic_check = True

    def blocked_deadline(self, message, cycle):
        return cycle + 8

    def periodic_check(self, cycle):
        return None


class Unrelated:
    """Same method names outside the detector hierarchy are ignored."""

    def on_blocked_attempt(self, message, cycle):
        return None
