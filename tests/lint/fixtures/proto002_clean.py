"""Clean fixture: serializers and PERF_FIELDS name declared fields only."""

from typing import Any, Dict


class TidyStats:
    cycles: int = 0
    engine: str = "scan"
    phase_time: float = 0.0

    PERF_FIELDS = ("engine", "phase_time")

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {}
        payload["cycles"] = self.cycles
        payload["engine"] = self.engine
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TidyStats":
        stats = cls()
        stats.cycles = data.get("cycles", 0)
        stats.phase_time = data.pop("phase_time", 0.0)
        return stats
