"""Offending fixture: hash-ordered iteration in an order-sensitive module."""

from typing import Dict, Set


class Channel:
    waiters: Set["Message"]

    def wake_all(self) -> None:
        for waiter in self.waiters:  # expect: DET003
            waiter.retry()

    def snapshot(self) -> None:
        for waiter in list(self.waiters):  # expect: DET003
            waiter.poke()


def drain() -> None:
    parked = {object(), object()}
    for item in parked:  # expect: DET003
        item.drop()


def scan_keys() -> None:
    table: Dict[str, int] = {}
    for key in table.keys():  # expect: DET003
        print(key)


def comprehension() -> list:
    blocked: Set["Message"] = set()
    return [m for m in blocked]  # expect: DET003
