"""Clean: the vectorized movement module's scoped DET004 waiver.

Mirrors ``repro.network.vecmove``: the numpy import is optional (the
scalar phase stays the fallback on numpy-less hosts) and carries a
line-scoped waiver naming DET004 with the digest-gated rationale — the
arrays are integer/bool id mirrors only, and the batch equivalence
suite asserts the vectorized phase bit-identical to the scalar one.
"""

try:
    import numpy as np  # repro-lint: disable=DET004 - integer/bool id mirrors only; digest-gated vs the scalar phase
except ImportError:
    np = None

HAVE_VECMOVE = np is not None


class VectorizedMovement:
    def __init__(self, sim):
        if np is None:
            raise RuntimeError("requires numpy")
        self.sim = sim
        self._asleep = np.zeros(1024, dtype=bool)
        self._ids = np.empty(0, dtype=np.int64)
