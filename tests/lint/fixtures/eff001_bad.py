"""Offending: phase methods writing outside their declared contract.

The generation phase may only touch message lifecycle state, and the
injection phase adds park/occupancy/worm — neither may reach routing
bookkeeping or detection counters (see PHASE_EFFECTS next to
CycleKernel).  The second violation is indirect: the phase stays clean
syntactically but calls a helper that performs the write, which the
call-graph propagation must surface at the helper's line.
"""


class LeakySimulator:
    def _generation_phase(self, cycle):
        for m in self.pending:
            m.status = "active"
            m.blocked_since = cycle  # expect: EFF001

    def _injection_phase(self, cycle):
        self._bump(self.head)

    def _bump(self, m):
        m.times_detected += 1  # expect: EFF001
