"""Clean: phase methods staying inside their declared contracts.

Same shape as the offending fixture — including the indirect write
through a helper — but every transitive write lands in a group the
phase's contract allows (lifecycle for generation; worm/lifecycle for
injection).
"""


class TidySimulator:
    def _generation_phase(self, cycle):
        for m in self.pending:
            m.status = "active"
            m.inject_cycle = cycle

    def _injection_phase(self, cycle):
        self._bump(self.head)

    def _bump(self, m):
        m.ever_injected = True
        m.flits_at_source = 4
