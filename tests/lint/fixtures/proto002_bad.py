"""Offending fixture: stats serialization drifting from declared fields."""

from typing import Any, Dict


class BogusStats:
    cycles: int = 0
    engine: str = "scan"

    PERF_FIELDS = (
        "engine",
        "phase_tme",  # expect: PROTO002
    )

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {}
        payload["cycles"] = self.cycles
        payload["latency"] = 0.0  # expect: PROTO002
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BogusStats":
        stats = cls()
        stats.engine = data["engine"]
        stats.cycles = data.pop("ghost", 0)  # expect: PROTO002
        return stats
