"""Clean: a swapped-in movement phase inside the phase contract.

Same shape as the offending fixture — a non-simulator class hosting
``_movement_phase``, mirroring ``repro.network.vecmove`` — but every
domain write lands in a group the movement contract allows: the park
flag when a worm freezes, lifecycle when one delivers.  The numpy id
mirrors are private observer state, outside the effect domain.
"""


class VectorizedMovement:
    def _movement_phase(self, cycle):
        for m in self.order:
            if self._frozen(m, cycle):
                m.move_asleep = True
            else:
                self._drop(m)

    def _frozen(self, m, cycle):
        return not m.spans

    def _drop(self, m):
        m.in_active = False
