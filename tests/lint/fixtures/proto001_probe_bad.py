"""Offending fixture: probe-phase detectors violating the event contract."""

from repro.core.detector import DeadlockDetector


class PhantomProbe(DeadlockDetector):  # expect: PROTO001
    """Overrides probe_phase but the simulator would never run it."""

    name = "phantom-probe"

    def probe_phase(self, cycle):
        return []


class IdleProbe(DeadlockDetector):  # expect: PROTO001
    """Opts into the probe phase without supplying any probe logic."""

    name = "idle-probe"
    has_probe_phase = True


class NamelessProbe(DeadlockDetector):  # expect: PROTO001
    """Concrete probe detector that never overrides the abstract name."""

    has_probe_phase = True

    def probe_phase(self, cycle):
        return []
