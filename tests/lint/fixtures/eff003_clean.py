"""Clean: a shared-trajectory observer keeping cell state private.

Per-cell results live in observer-local SoA state (masks, counter
arrays) — invisible to the effect domain — and the only shared writes
are the G/P flag and the wake surface that promotions must drive.
"""


class CellObserver:
    shares_trajectory = True

    def on_event(self, message, cycle):
        self._mask |= 1
        self._detections[3] += 1
        message.gp = "G"

    def _wake(self, pc):
        for m in pc.header_waiters:
            if m.route_asleep:
                m.route_asleep = False
