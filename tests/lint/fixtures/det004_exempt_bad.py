"""Offending fixture: botched attempts at the batch backend's waiver.

A line waiver only covers its own line (the second import still fires),
and an exemption is only as good as the exact code it names (the third
import's waiver names the wrong rule).
"""

import numpy as np  # repro-lint: disable=DET004 - integer SoA only
from numpy import int64  # expect: DET004
import numpy.linalg  # repro-lint: disable=DET003 - wrong code  # expect: DET004


def counters(k: int) -> object:
    return np.zeros(k, dtype=int64)
