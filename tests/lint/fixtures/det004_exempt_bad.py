"""Offending fixture: a botched attempt at the batch backend's waiver.

The file-wide disable names the wrong rule code, so the numpy imports in
this kernel-scoped module still fire — an exemption is only as good as
the exact code it names.
"""
# repro-lint: disable-file=DET003

import numpy  # expect: DET004
from numpy import int64  # expect: DET004


def counters(k: int) -> object:
    return numpy.zeros(k, dtype=int64)
