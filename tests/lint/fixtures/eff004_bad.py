"""Offending: float arithmetic flowing into behavioural fields.

``rate`` is tainted by true division, and writing it (or a float
literal) into channel counters makes the digest host-dependent.  The
``ok`` method shows the untainted counterparts: floor division stays
integral, and floats confined to telemetry attributes are invisible.
"""


class Throttle:
    def tune(self, pc, window):
        rate = self.hits / window
        pc.i_threshold = rate * 4  # expect: EFF004
        pc.counter_lag += 0.5  # expect: EFF004

    def ok(self, pc, window):
        pc.i_threshold = self.hits // window
        self.ema = self.hits / window
