"""Clean fixture: probe-phase detectors honouring the event contract."""

from repro.core.detector import DeadlockDetector


class ChasingDetector(DeadlockDetector):
    """Probe hook paired with the opt-in flag (and a name)."""

    name = "chasing"
    has_probe_phase = True

    def probe_phase(self, cycle):
        return []


class ProbeBase(DeadlockDetector):
    """Intermediate base providing the probe machinery."""

    name = "probe-base"
    has_probe_phase = True

    def probe_phase(self, cycle):
        return []


class TunedProbe(ProbeBase):
    """Inherits probe_phase through a same-module base: flag is satisfied."""

    name = "tuned-probe"
