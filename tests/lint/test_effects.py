"""Unit tests for the effect engine (summary construction, propagation).

These exercise the dataflow layer directly — aliasing, augmented
assignment, self-method dispatch, cross-module propagation, unknown-call
widening, obligation classification — plus the two repo-level gates the
tentpole promises: zero EFF/PROTO003 findings on ``src/``, and the
seeded-regression proof that stripping the PR 2 drain-fix wake loop from
``PhysicalChannel.note_released`` trips EFF002.
"""

import re
from pathlib import Path

from repro.lint import lint_file, run_lint
from repro.lint.effects import build_effect_index
from repro.lint.findings import format_text
from repro.lint.module import ModuleInfo

REPO_ROOT = Path(__file__).resolve().parents[2]


def index_of(*sources_and_names):
    modules = [
        ModuleInfo(f"{name.rsplit('.', 1)[-1]}.py", source, name)
        for source, name in sources_and_names
    ]
    return build_effect_index(modules)


def test_alias_writes_resolve_to_the_aliased_attribute():
    index = index_of(
        (
            "class C:\n"
            "    def park(self, pc):\n"
            "        waiters = pc.route_waiters = {}\n"
            "        waiters[self.key] = None\n"
            "        box = self.wake_box\n"
            "        box[0] -= 1\n",
            "repro.network.mod",
        )
    )
    summary = index.summary("repro.network.mod.C.park")
    writes = {(w.attr, w.kind) for w in summary.writes}
    # The chained assignment writes route_waiters; both the subscript
    # through the local alias and the box decrement land on the
    # underlying attributes, not the local names.
    assert ("route_waiters", "assign") in writes
    assert ("route_waiters", "subscript") in writes
    assert ("wake_box", "subscript") in writes


def test_augmented_assignment_direction_drives_obligations():
    index = index_of(
        (
            "class Lane:\n"
            "    def free(self):\n"
            "        self.free_mask |= 1\n"
            "    def take(self):\n"
            "        self.free_mask &= ~1\n",
            "repro.network.mod",
        )
    )
    (free_site,) = index.summary("repro.network.mod.Lane.free").writes
    assert (free_site.kind, free_site.op) == ("aug", "BitOr")
    assert free_site.obligation == "vc-release"
    (take_site,) = index.summary("repro.network.mod.Lane.take").writes
    assert (take_site.kind, take_site.op) == ("aug", "BitAnd")
    assert take_site.obligation is None


def test_module_const_aliases_classify_gp_promotion():
    index = index_of(
        (
            "from repro.network.types import GPState\n"
            "\n"
            "_G = GPState.GENERATE\n"
            "_P = GPState.PROPAGATE\n"
            "\n"
            "class Obs:\n"
            "    def promote(self, pc):\n"
            "        pc.gp = _G\n"
            "    def demote(self, pc):\n"
            "        pc.gp = _P\n",
            "repro.network.mod",
        )
    )
    (promote,) = index.summary("repro.network.mod.Obs.promote").writes
    assert promote.value_repr == "GPState.GENERATE"
    assert promote.obligation == "gp-promotion"
    (demote,) = index.summary("repro.network.mod.Obs.demote").writes
    assert demote.obligation is None


def test_self_method_dispatch_propagates_writes_and_wake():
    index = index_of(
        (
            "class Lane:\n"
            "    def release(self):\n"
            "        self.occupant = None\n"
            "        self._wake()\n"
            "    def _wake(self):\n"
            "        for m in self.waiters:\n"
            "            m.route_asleep = False\n",
            "repro.network.mod",
        )
    )
    release = index.summary("repro.network.mod.Lane.release")
    assert "repro.network.mod.Lane._wake" in release.calls
    assert not release.wakes  # no *direct* wake ...
    assert release.trans_wake  # ... but one is reachable
    assert set(release.trans_writes) == {"occupant", "route_asleep"}


def test_cross_module_propagation_records_the_origin():
    index = index_of(
        (
            "def drain(pc):\n"
            "    pc.active_since = 0\n",
            "repro.network.helper",
        ),
        (
            "from repro.network.helper import drain\n"
            "\n"
            "class C:\n"
            "    def run(self, pc):\n"
            "        drain(pc)\n",
            "repro.network.mod",
        ),
    )
    run = index.summary("repro.network.mod.C.run")
    origin = run.trans_writes["active_since"]
    assert origin[0] == "repro.network.helper"
    assert origin[1] == "repro.network.helper.drain"
    assert origin[2] == 2  # the write's own line in the helper module


def test_unknown_calls_widen_without_inventing_effects():
    index = index_of(
        (
            "class C:\n"
            "    def go(self, helper):\n"
            "        helper.mystery()\n"
            "        self.status = 'x'\n",
            "repro.network.mod",
        )
    )
    go = index.summary("repro.network.mod.C.go")
    assert go.unknown_calls == 1
    assert go.trans_unknown
    # The unresolved call contributes nothing: only the provable write
    # survives, which is what keeps the rules false-positive-free.
    assert set(go.trans_writes) == {"status"}
    assert not go.trans_wake


def test_mutator_method_on_attribute_receiver_is_a_write():
    index = index_of(
        (
            "class C:\n"
            "    def clear(self, pc):\n"
            "        pc.route_waiters.clear()\n",
            "repro.network.mod",
        )
    )
    (site,) = index.summary("repro.network.mod.C.clear").writes
    assert (site.attr, site.kind) == ("route_waiters", "mutcall")


def test_rng_and_wallclock_sites_are_recorded():
    index = index_of(
        (
            "import time\n"
            "\n"
            "class C:\n"
            "    def jitter(self, sim):\n"
            "        return sim.rng.random()\n"
            "    def stamp(self):\n"
            "        return time.monotonic()\n",
            "repro.network.mod",
        )
    )
    assert index.summary("repro.network.mod.C.jitter").trans_rng is not None
    assert (
        index.summary("repro.network.mod.C.stamp").trans_wallclock is not None
    )


def test_constructors_have_empty_summaries():
    index = index_of(
        (
            "class C:\n"
            "    def __init__(self):\n"
            "        self.occupant = None\n",
            "repro.network.mod",
        )
    )
    init = index.summary("repro.network.mod.C.__init__")
    # __init__ runs before any waiter exists; its writes are
    # definitionally in-contract and carry no wake obligation.
    assert init.writes == []


# ----------------------------------------------------------------------
# Repo-level gates
# ----------------------------------------------------------------------
def test_src_tree_has_zero_effect_findings():
    result = run_lint([REPO_ROOT / "src" / "repro"])
    effect_findings = [
        f
        for f in result.findings
        if f.code.startswith("EFF") or f.code == "PROTO003"
    ]
    assert effect_findings == [], format_text(effect_findings)


_WAKE_LOOP = re.compile(
    r"\n        # A freed lane may let a parked header route on its next"
    r" attempt\.\n(?:.*\n)*? *box\[0\] -= 1\n",
)


def test_stripping_the_drain_fix_wake_trips_eff002(tmp_path):
    """Seeded regression: the analyzer catches the PR 2 bug class.

    ``VirtualChannel.release`` discharges its wake obligation through
    ``pc.note_released``; removing note_released's waiter wake loop (the
    PR 2 drain-termination fix) must surface as EFF002 on the release
    writes.
    """
    source = (REPO_ROOT / "src/repro/network/channel.py").read_text()
    assert _WAKE_LOOP.search(source), "wake loop not found in channel.py"
    broken = _WAKE_LOOP.sub("\n", source)
    assert broken != source
    path = tmp_path / "channel.py"
    path.write_text(broken)
    result = lint_file(path, module_name="repro.network.channel")
    eff002 = [f for f in result.findings if f.code == "EFF002"]
    assert {f.message.split("'")[1] for f in eff002} == {
        "occupant",
        "free_mask",
    }, format_text(result.findings)
    # The pristine file stays clean: the wake loop is load-bearing.
    pristine = tmp_path / "pristine.py"
    pristine.write_text(source)
    clean = lint_file(pristine, module_name="repro.network.channel")
    assert [f for f in clean.findings if f.code == "EFF002"] == []
