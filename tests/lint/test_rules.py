"""Fixture-corpus tests: every rule fires with exact code and line number.

Offending fixtures mark each expected finding with a trailing
``# expect: CODE`` comment; the tests recover ``(line, code)`` pairs from
those markers and require the lint findings to match them exactly.  Clean
fixtures must produce no findings at all.
"""

import re
from pathlib import Path

import pytest

from repro.lint import lint_file, run_lint
from repro.lint.findings import format_text

FIXTURES = Path(__file__).parent / "fixtures"

_EXPECT = re.compile(r"#\s*expect:\s*([A-Z]+\d+)")


def expected(path: Path):
    """``(line, code)`` pairs declared by ``# expect:`` markers."""
    pairs = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        match = _EXPECT.search(line)
        if match:
            pairs.append((lineno, match.group(1)))
    return sorted(pairs)


BAD_CASES = [
    ("det001_bad.py", "repro.network.det001_bad"),
    ("det002_bad.py", "repro.analysis.det002_bad"),
    ("det003_bad.py", "repro.network.det003_bad"),
    ("det004_bad.py", "repro.traffic.det004_bad"),
    ("det004_exempt_bad.py", "repro.network.det004_exempt_bad"),
    ("det004_vecmove_bad.py", "repro.network.det004_vecmove_bad"),
    ("eff001_bad.py", "repro.network.eff001_bad"),
    ("eff001_vecmove_bad.py", "repro.network.eff001_vecmove_bad"),
    ("eff002_bad.py", "repro.network.eff002_bad"),
    ("eff003_bad.py", "repro.network.eff003_bad"),
    ("eff004_bad.py", "repro.network.eff004_bad"),
    ("proto001_bad.py", "repro.core.proto001_bad"),
    ("proto001_probe_bad.py", "repro.core.proto001_probe_bad"),
    ("proto002_bad.py", "repro.metrics.proto002_bad"),
    ("proto003_bad.py", "repro.core.proto003_bad"),
]

CLEAN_CASES = [
    ("det001_clean.py", "repro.network.det001_clean"),
    ("det002_clean.py", "repro.analysis.det002_clean"),
    ("det003_clean.py", "repro.network.det003_clean"),
    ("det004_clean.py", "repro.traffic.det004_clean"),
    ("det004_exempt_clean.py", "repro.network.det004_exempt_clean"),
    ("det004_vecmove_clean.py", "repro.network.det004_vecmove_clean"),
    ("eff001_clean.py", "repro.network.eff001_clean"),
    ("eff001_vecmove_clean.py", "repro.network.eff001_vecmove_clean"),
    ("eff002_clean.py", "repro.network.eff002_clean"),
    ("eff003_clean.py", "repro.network.eff003_clean"),
    ("eff004_clean.py", "repro.network.eff004_clean"),
    ("proto001_clean.py", "repro.core.proto001_clean"),
    ("proto001_probe_clean.py", "repro.core.proto001_probe_clean"),
    ("proto002_clean.py", "repro.metrics.proto002_clean"),
    ("proto003_clean.py", "repro.core.proto003_clean"),
]


@pytest.mark.parametrize("fixture,module_name", BAD_CASES)
def test_bad_fixture_detected_with_exact_code_and_line(fixture, module_name):
    path = FIXTURES / fixture
    marks = expected(path)
    assert marks, f"{fixture} declares no # expect: markers"
    result = lint_file(path, module_name=module_name)
    actual = sorted((f.line, f.code) for f in result.findings)
    assert actual == marks, format_text(result.findings)


@pytest.mark.parametrize("fixture,module_name", CLEAN_CASES)
def test_clean_fixture_produces_no_findings(fixture, module_name):
    path = FIXTURES / fixture
    result = lint_file(path, module_name=module_name)
    assert result.findings == [], format_text(result.findings)
    assert result.ok


def test_scoped_rules_skip_out_of_scope_modules():
    # The same offending sources are silent outside their rule's scope.
    numpy_fixture = FIXTURES / "det004_bad.py"
    result = lint_file(numpy_fixture, module_name="repro.analysis.det004_bad")
    assert result.findings == [], format_text(result.findings)
    clock_fixture = FIXTURES / "det001_bad.py"
    result = lint_file(clock_fixture, module_name="repro.figures.det001_bad")
    assert result.findings == [], format_text(result.findings)


def test_proto001_resolves_inheritance_across_files():
    paths = [FIXTURES / "proto001_base.py", FIXTURES / "proto001_cross.py"]
    result = run_lint(paths)
    cross = FIXTURES / "proto001_cross.py"
    assert sorted(
        (Path(f.path).name, f.line, f.code) for f in result.findings
    ) == [("proto001_cross.py", line, code) for line, code in expected(cross)]


def test_inline_disable_suppresses_own_and_next_line():
    result = lint_file(
        FIXTURES / "suppressions.py",
        module_name="repro.network.suppressions",
    )
    assert result.findings == [], format_text(result.findings)


def test_file_wide_disable_suppresses_everywhere():
    result = lint_file(
        FIXTURES / "suppress_file.py",
        module_name="repro.network.suppress_file",
    )
    assert result.findings == [], format_text(result.findings)


def test_disable_comments_are_load_bearing(tmp_path):
    source = (FIXTURES / "suppressions.py").read_text()
    stripped = re.sub(r"#\s*repro-lint:[^\n]*", "", source)
    path = tmp_path / "mod.py"
    path.write_text(stripped)
    result = lint_file(path, module_name="repro.network.mod")
    assert [f.code for f in result.findings] == ["DET001", "DET001"]


def test_syntax_errors_are_reported_not_raised(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def f(:\n")
    result = lint_file(path)
    assert not result.ok
    assert result.findings[0].code == "SYNTAX"


def test_repro_source_tree_is_lint_clean():
    repo_root = Path(__file__).resolve().parents[2]
    result = run_lint([repo_root / "src" / "repro"])
    assert result.ok, format_text(result.findings)
    assert result.files_checked > 50
