"""CLI and registry behaviour: exit codes, JSON output, rule catalog."""

import json

import pytest

from repro import cli as umbrella
from repro.lint.cli import main as lint_main
from repro.lint.registry import Rule, all_rules, get_rule, register_rule

# PROTO002 applies repo-wide, so a bare temporary file trips it without
# needing a module-name override.
CLI_BAD = '''\
class Stats:
    engine: str = "scan"

    PERF_FIELDS = ("engine", "missing")

    def to_dict(self):
        return {}
'''


def test_cli_exit_one_and_json_output(tmp_path, capsys):
    bad = tmp_path / "stats.py"
    bad.write_text(CLI_BAD)
    assert lint_main([str(bad), "--format=json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 1
    finding = payload[0]
    assert finding["code"] == "PROTO002"
    assert finding["line"] == 4
    assert finding["path"] == str(bad)
    assert "missing" in finding["message"]
    assert finding["hint"]


def test_cli_exit_zero_on_clean_file(tmp_path, capsys):
    clean = tmp_path / "ok.py"
    clean.write_text("x = 1\n")
    assert lint_main([str(clean)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s) in 1 file" in out


def test_cli_verbose_shows_autofix_hint(tmp_path, capsys):
    bad = tmp_path / "stats.py"
    bad.write_text(CLI_BAD)
    assert lint_main([str(bad), "--verbose"]) == 1
    out = capsys.readouterr().out
    assert "PROTO002" in out
    assert "hint:" in out


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.code in out


def test_umbrella_cli_routes_lint(tmp_path, capsys):
    clean = tmp_path / "ok.py"
    clean.write_text("x = 1\n")
    assert umbrella.main(["lint", str(clean)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_rule_catalog_complete_and_documented():
    codes = [rule.code for rule in all_rules()]
    assert codes == sorted(codes)
    assert set(codes) == {
        "DET001",
        "DET002",
        "DET003",
        "DET004",
        "PROTO001",
        "PROTO002",
    }
    for rule in all_rules():
        assert rule.summary
        assert rule.hint
    assert get_rule("DET003").code == "DET003"


def test_register_rule_rejects_duplicate_codes():
    with pytest.raises(ValueError):

        @register_rule
        class Duplicate(Rule):  # noqa: F811 - intentionally clashing
            code = "DET001"
            summary = "duplicate"
            hint = "duplicate"
