"""CLI and registry behaviour: exit codes, output formats, rule catalog."""

import json
import shutil
import subprocess

import pytest

from repro import cli as umbrella
from repro.lint.cli import main as lint_main
from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules, get_rule, register_rule

# PROTO002 applies repo-wide, so a bare temporary file trips it without
# needing a module-name override.
CLI_BAD = '''\
class Stats:
    engine: str = "scan"

    PERF_FIELDS = ("engine", "missing")

    def to_dict(self):
        return {}
'''


def test_cli_exit_one_and_json_output(tmp_path, capsys):
    bad = tmp_path / "stats.py"
    bad.write_text(CLI_BAD)
    assert lint_main([str(bad), "--format=json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 1
    finding = payload[0]
    assert finding["code"] == "PROTO002"
    assert finding["line"] == 4
    assert finding["path"] == str(bad)
    assert "missing" in finding["message"]
    assert finding["hint"]


def test_cli_exit_zero_on_clean_file(tmp_path, capsys):
    clean = tmp_path / "ok.py"
    clean.write_text("x = 1\n")
    assert lint_main([str(clean)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s) in 1 file" in out


def test_cli_verbose_shows_autofix_hint(tmp_path, capsys):
    bad = tmp_path / "stats.py"
    bad.write_text(CLI_BAD)
    assert lint_main([str(bad), "--verbose"]) == 1
    out = capsys.readouterr().out
    assert "PROTO002" in out
    assert "hint:" in out


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.code in out


def test_umbrella_cli_routes_lint(tmp_path, capsys):
    clean = tmp_path / "ok.py"
    clean.write_text("x = 1\n")
    assert umbrella.main(["lint", str(clean)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_rule_catalog_complete_and_documented():
    codes = [rule.code for rule in all_rules()]
    assert codes == sorted(codes)
    assert set(codes) == {
        "DET001",
        "DET002",
        "DET003",
        "DET004",
        "EFF001",
        "EFF002",
        "EFF003",
        "EFF004",
        "PROTO001",
        "PROTO002",
        "PROTO003",
    }
    for rule in all_rules():
        assert rule.summary
        assert rule.hint
    assert get_rule("DET003").code == "DET003"


def test_cli_json_round_trips_through_finding_schema(tmp_path, capsys):
    # The JSON format is a stable contract: every emitted object must
    # reconstruct a Finding exactly (no extra or missing fields).
    bad = tmp_path / "stats.py"
    bad.write_text(CLI_BAD)
    assert lint_main([str(bad), "--format=json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    findings = [Finding(**item) for item in payload]
    assert [f.code for f in findings] == ["PROTO002"]
    assert json.loads(
        json.dumps([item for item in payload], sort_keys=True)
    ) == payload


def test_cli_sarif_output(tmp_path, capsys):
    bad = tmp_path / "stats.py"
    bad.write_text(CLI_BAD)
    assert lint_main([str(bad), "--format=sarif"]) == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in log["$schema"]
    (run,) = log["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert {r["id"] for r in driver["rules"]} == {
        r.code for r in all_rules()
    }
    (result,) = run["results"]
    assert result["ruleId"] == "PROTO002"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == str(bad)
    assert location["region"]["startLine"] == 4
    assert location["region"]["startColumn"] >= 1  # SARIF is 1-based


def test_cli_changed_scopes_to_git_diff(tmp_path, capsys, monkeypatch):
    if shutil.which("git") is None:
        pytest.skip("git unavailable")

    def git(*argv):
        subprocess.run(
            ["git", *argv], cwd=tmp_path, check=True, capture_output=True
        )

    git("init")
    git("config", "user.email", "lint@test")
    git("config", "user.name", "lint test")
    bad = tmp_path / "stats.py"
    bad.write_text(CLI_BAD)
    git("add", "-A")
    git("commit", "-m", "seed")
    monkeypatch.chdir(tmp_path)
    # Committed offender + one fresh clean file: --changed sees only the
    # fresh file, a full run still fails on the committed one.
    (tmp_path / "fresh.py").write_text("x = 1\n")
    assert lint_main([str(tmp_path), "--changed"]) == 0
    assert "in 1 file" in capsys.readouterr().out
    assert lint_main([str(tmp_path)]) == 1
    capsys.readouterr()
    # Modifying the offender puts it back in scope.
    bad.write_text(CLI_BAD + "\n")
    assert lint_main([str(tmp_path), "--changed"]) == 1
    capsys.readouterr()


def test_cli_changed_falls_back_outside_git(tmp_path, capsys, monkeypatch):
    bad = tmp_path / "stats.py"
    bad.write_text(CLI_BAD)
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path))
    monkeypatch.setenv("GIT_DIR", str(tmp_path / "nonexistent.git"))
    assert lint_main([str(tmp_path), "--changed"]) == 1
    capsys.readouterr()


def test_register_rule_rejects_duplicate_codes():
    with pytest.raises(ValueError):

        @register_rule
        class Duplicate(Rule):  # noqa: F811 - intentionally clashing
            code = "DET001"
            summary = "duplicate"
            hint = "duplicate"
