"""End-to-end smoke and behaviour tests across the whole stack."""

import pytest

from repro import SimulationConfig, Simulator
from repro.core.registry import detector_names
from repro.traffic.patterns import pattern_names


def run_config(**kwargs):
    config = SimulationConfig(
        radix=4,
        dimensions=2,
        warmup_cycles=150,
        measure_cycles=600,
        seed=21,
    )
    config.traffic.injection_rate = 0.4
    for key, value in kwargs.items():
        if key.startswith("traffic_"):
            setattr(config.traffic, key[len("traffic_"):], value)
        elif key.startswith("detector_"):
            setattr(config.detector, key[len("detector_"):], value)
        else:
            setattr(config, key, value)
    sim = Simulator(config)
    stats = sim.run()
    sim.check_invariants()
    return sim, stats


class TestEveryDetector:
    @pytest.mark.parametrize("mechanism", detector_names())
    def test_runs_clean(self, mechanism):
        _, stats = run_config(detector_mechanism=mechanism)
        assert stats.delivered_measured > 0

    @pytest.mark.parametrize("mechanism", ["ndm", "pdm", "timeout"])
    def test_detections_consistent(self, mechanism):
        _, stats = run_config(
            detector_mechanism=mechanism, detector_threshold=8
        )
        assert stats.messages_detected <= stats.detections
        assert (
            stats.true_detections
            + stats.false_detections
            + stats.unclassified_detections
            == stats.detections
        )


class TestEveryPattern:
    @pytest.mark.parametrize("pattern", pattern_names())
    def test_runs_clean(self, pattern):
        kwargs = {"traffic_pattern": pattern, "traffic_injection_rate": 0.15}
        if pattern in ("bit-reversal", "perfect-shuffle", "butterfly",
                       "transpose", "complement"):
            kwargs["radix"] = 4  # 16 = 2**4 nodes
        _, stats = run_config(**kwargs)
        assert stats.delivered_measured > 0

    def test_hotspot_concentrates_traffic(self):
        sim, stats = run_config(
            traffic_pattern="hot-spot",
            traffic_pattern_params={"fraction": 0.5, "hot_node": 0},
            traffic_injection_rate=0.1,
        )
        assert stats.delivered_measured > 0


class TestEverySize:
    @pytest.mark.parametrize("size", ["s", "l", "L", "sl"])
    def test_runs_clean(self, size):
        _, stats = run_config(
            traffic_lengths=size, traffic_injection_rate=0.2,
            measure_cycles=900,
        )
        assert stats.delivered_measured > 0


class TestRoutingBaselines:
    def test_dimension_order_never_deadlocks_on_mesh(self):
        _, stats = run_config(
            topology="mesh",
            routing="dimension-order",
            detector_mechanism="none",
            recovery="none",
            traffic_injection_rate=0.25,
            ground_truth_interval=50,
        )
        assert stats.truth_sweeps_with_deadlock == 0
        assert stats.delivered_measured > 0

    def test_adaptive_beats_deterministic_latency(self):
        lat = {}
        for routing in ("fully-adaptive", "dimension-order"):
            _, stats = run_config(routing=routing, traffic_injection_rate=0.5,
                                  measure_cycles=1200)
            lat[routing] = stats.average_latency()
        assert lat["fully-adaptive"] <= lat["dimension-order"] * 1.35


class TestStress:
    def test_oversaturated_with_recovery_stays_live(self):
        _, stats = run_config(
            traffic_injection_rate=1.2,
            detector_threshold=16,
            measure_cycles=1200,
            injection_limit_fraction=0.65,
        )
        # The network keeps delivering under 2x saturation overload.
        assert stats.throughput() > 0.3

    def test_single_vc_network_deadlocks_and_recovers(self):
        """1 VC per channel deadlocks easily; detection+recovery keeps
        every message flowing."""
        sim, stats = run_config(
            vcs_per_channel=1,
            traffic_injection_rate=0.5,
            detector_threshold=16,
            measure_cycles=2500,
            ground_truth_interval=100,
        )
        assert stats.delivered_measured > 0
        # Whatever was detected, nothing may remain deadlocked at the end.
        from repro.analysis.deadlock import find_deadlocked

        leftover = find_deadlocked(sim.active_messages)
        assert len(leftover) == 0 or stats.detections > 0

    def test_no_recovery_oversaturated_eventually_wedges(self):
        sim, stats = run_config(
            vcs_per_channel=1,
            traffic_injection_rate=0.8,
            detector_mechanism="none",
            recovery="none",
            injection_limit_fraction=None,
            measure_cycles=2500,
            ground_truth_interval=100,
        )
        # With no escape mechanism the single-VC adaptive network reaches
        # a true deadlock (this is why recovery is needed at all).
        assert stats.truth_sweeps_with_deadlock > 0
