"""Property-based tests over randomized configurations (hypothesis)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SimulationConfig, Simulator
from repro.analysis.deadlock import find_deadlocked
from repro.network.types import MessageStatus

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


config_strategy = st.fixed_dictionaries(
    {
        "radix": st.sampled_from([4, 8]),
        "dimensions": st.sampled_from([1, 2]),
        "vcs_per_channel": st.integers(min_value=1, max_value=3),
        "buffer_depth": st.integers(min_value=1, max_value=6),
        "injection_ports": st.integers(min_value=1, max_value=3),
        "rate": st.floats(min_value=0.02, max_value=0.5),
        "length": st.sampled_from(["s", "l", "sl"]),
        "mechanism": st.sampled_from(["ndm", "pdm", "timeout", "none"]),
        "threshold": st.sampled_from([4, 16, 64]),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


def build(params) -> Simulator:
    config = SimulationConfig(
        radix=params["radix"],
        dimensions=params["dimensions"],
        vcs_per_channel=params["vcs_per_channel"],
        buffer_depth=params["buffer_depth"],
        injection_ports=params["injection_ports"],
        warmup_cycles=50,
        measure_cycles=250,
        seed=params["seed"],
        ground_truth_interval=0,
    )
    config.traffic.injection_rate = params["rate"]
    config.traffic.lengths = params["length"]
    config.detector.mechanism = params["mechanism"]
    config.detector.threshold = params["threshold"]
    return Simulator(config)


class TestConservationProperties:
    @given(config_strategy)
    @SLOW
    def test_invariants_after_random_run(self, params):
        sim = build(params)
        sim.run()
        sim.check_invariants()

    @given(config_strategy)
    @SLOW
    def test_flit_ledger_balances(self, params):
        sim = build(params)
        stats = sim.run()
        in_flight = sum(
            m.flits_in_network()
            for m in sim.active_messages
            if m.status is MessageStatus.IN_NETWORK
        )
        assert stats.delivered <= stats.injected + 1
        assert in_flight >= 0

    @given(config_strategy)
    @SLOW
    def test_detection_counters_consistent(self, params):
        stats = build(params).run()
        assert stats.messages_detected <= stats.detections
        assert stats.detections_measured <= stats.detections
        assert stats.recoveries + stats.aborts <= stats.detections


class TestMonitorProperties:
    @given(config_strategy)
    @SLOW
    def test_inactivity_never_negative(self, params):
        sim = build(params)
        for _ in range(150):
            sim.step()
        cycle = sim.cycle
        for pc in sim.channels:
            assert pc.inactivity(cycle) >= 0

    @given(config_strategy)
    @SLOW
    def test_occupancy_counts_match_reality(self, params):
        sim = build(params)
        for _ in range(200):
            sim.step()
        for pc in sim.channels:
            actual = sum(1 for vc in pc.vcs if vc.occupant is not None)
            assert pc.occupied_count == actual


class TestDeterminismProperty:
    @given(config_strategy)
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_replay_identical(self, params):
        a = build(params).run()
        b = build(params).run()
        assert a.delivered == b.delivered
        assert a.detections == b.detections
        assert a.latency_sum == b.latency_sum


class TestGroundTruthProperties:
    @given(config_strategy)
    @SLOW
    def test_deadlocked_set_is_closed(self, params):
        """Every feasible VC of a deadlocked message is held inside the set."""
        sim = build(params)
        for _ in range(250):
            sim.step()
        deadlocked = find_deadlocked(sim.active_messages)
        for m in deadlocked:
            for pc in m.feasible_pcs:
                for vc in pc.vcs:
                    assert vc.occupant is not None
                    assert vc.occupant in deadlocked

    @given(config_strategy)
    @SLOW
    def test_non_blocked_messages_never_deadlocked(self, params):
        sim = build(params)
        for _ in range(250):
            sim.step()
        deadlocked = find_deadlocked(sim.active_messages)
        for m in deadlocked:
            assert m.is_blocked()
