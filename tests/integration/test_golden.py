"""Golden-run regression: pin the exact behaviour of a fixed-seed run.

A cycle-accurate simulator's value rests on its behaviour being stable
under refactoring.  This test replays a fixed scenario (seeded, pure-
Python RNG path) and compares a digest of the full event stream against a
recorded value.  If an intentional model change breaks it, re-record by
running the test with ``--update-golden`` semantics: print the new digest
(shown in the assertion message) and update the constant.
"""

import hashlib

from repro.network.simulator import Simulator
from repro.network.tracing import Tracer
from tests.conftest import small_config

#: sha256 over the traced event stream of the fixed run below.
GOLDEN_DIGEST = (
    "c7d186f1599a4d4fe6dbf2ec47a5d35ee74cd0422339a79f8bc0eb13a4bcb198"
)


def fixed_run():
    config = small_config(seed=424242)
    config.traffic.injection_rate = 0.35
    config.traffic.lengths = "sl"
    config.detector.mechanism = "ndm"
    config.detector.threshold = 16
    config.warmup_cycles = 0
    config.measure_cycles = 600
    sim = Simulator(config)
    sim._gen_rng = None  # force the pure-Python generation path
    sim.tracer = Tracer(capacity=0)
    sim.run()
    return sim


def digest_of(sim) -> str:
    payload = "\n".join(repr(e) for e in sim.tracer.events)
    return hashlib.sha256(payload.encode()).hexdigest()


class TestGoldenRun:
    def test_event_stream_reproducible_within_session(self):
        a, b = fixed_run(), fixed_run()
        assert digest_of(a) == digest_of(b)

    def test_event_stream_matches_golden_digest(self):
        sim = fixed_run()
        digest = digest_of(sim)
        assert digest == GOLDEN_DIGEST, (
            "behaviour of the fixed-seed run changed; if intentional, "
            f"update GOLDEN_DIGEST to {digest!r}"
        )

    def test_event_stream_stats_stable(self):
        """Coarse golden values: these pin the run's aggregate behaviour
        (update deliberately if the model changes)."""
        sim = fixed_run()
        stats = sim.stats
        assert stats.generated == 93
        assert stats.injected == 93
        assert stats.delivered == 79
        assert stats.detections == 0

    def test_event_ordering_causal(self):
        sim = fixed_run()
        for message_id in range(0, sim._next_message_id, 7):
            kinds = sim.tracer.lifecycle(message_id)
            if "deliver" in kinds and "inject" in kinds:
                assert kinds.index("inject") < kinds.index("deliver")
