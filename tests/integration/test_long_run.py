"""Long-run stability: sustained saturation with full invariant checking."""

import pytest

from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator


@pytest.mark.parametrize("mechanism", ["ndm", "pdm"])
def test_sustained_saturation_stays_consistent(mechanism):
    """10k cycles at saturation on the 64-node torus: invariants hold at
    every checkpoint, the network keeps delivering, and every detection is
    eventually followed by the recovered message's delivery."""
    config = SimulationConfig(
        radix=8, dimensions=2, warmup_cycles=0, measure_cycles=10,
        seed=1234,
    )
    config.traffic.injection_rate = 0.74
    config.traffic.lengths = "sl"
    config.detector.mechanism = mechanism
    config.detector.threshold = 16
    config.ground_truth_interval = 500

    sim = Simulator(config)
    deliveries_at = []
    for checkpoint in range(10):
        for _ in range(1000):
            sim.step()
        sim.check_invariants()
        deliveries_at.append(sim.stats.delivered)

    # Progress never stalls across any 1k-cycle window.
    for before, after in zip(deliveries_at, deliveries_at[1:]):
        assert after > before

    # Recovery keeps up with detection: marked messages do not accumulate.
    stats = sim.stats
    assert stats.recoveries == stats.detections
    in_recovery = len(sim._recovery_deliveries)
    assert in_recovery < 100


def test_sustained_oversaturation_with_queue_cap():
    """Bounded source queues: the simulator survives 3x overload without
    growing state (messages are dropped at the source instead)."""
    config = SimulationConfig(
        radix=4, dimensions=2, warmup_cycles=0, measure_cycles=10,
        seed=99, source_queue_limit=4,
    )
    config.traffic.injection_rate = 3.0
    config.detector.threshold = 16

    sim = Simulator(config)
    for _ in range(5000):
        sim.step()
    sim.check_invariants()
    assert sim.stats.source_queue_drops > 0
    queued = sum(len(q) for q in sim.source_queues)
    assert queued <= 4 * sim.topology.num_nodes
