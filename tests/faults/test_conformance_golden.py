"""Golden conformance corpus: pinned FP/FN/latency verdicts per detector.

``golden_conformance.json`` records, for ten seeded fault schedules and
every detector, the behavioural digest of the graded run and its
conformance verdict (true/false positives, misses, detection latency).
The corpus pins two things at once:

* the *simulator* — any behavioural change under faults moves a digest;
* the *grading* — any change to the oracle or the latency bookkeeping
  moves a verdict even if the run itself is unchanged.

If an intentional model change breaks it, regenerate the file with the
snippet in its ``regenerate`` field and review the verdict diff like any
other golden update.
"""

import json
from pathlib import Path

import pytest

from repro.faults.conformance import graded_run, make_cases, quick_base_config

GOLDEN_PATH = Path(__file__).parent / "golden_conformance.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())
DETECTORS = ("ndm", "pdm", "timeout", "probe")


def rebuild_config(case, detector):
    base = quick_base_config()
    config = base.replace(
        seed=case["seed"],
        engine="event",
        faults=[dict(f) for f in case["faults"]],
    )
    config.detector.mechanism = detector
    return config


class TestCorpusShape:
    def test_ten_schedules_recorded(self):
        assert len(GOLDEN["cases"]) == 10

    def test_schedules_match_generator(self):
        """The recorded schedules are exactly what make_cases produces."""
        base = quick_base_config()
        assert base.to_dict() == GOLDEN["base_config"]
        generated = make_cases(base, len(GOLDEN["cases"]))
        recorded = [
            {"id": c["id"], "seed": c["seed"], "faults": c["faults"]}
            for c in GOLDEN["cases"]
        ]
        assert generated == recorded

    def test_corpus_exercises_both_outcome_kinds(self):
        """The corpus would be toothless without both TPs and FPs in it."""
        ndm = [c["detectors"]["ndm"]["conformance"] for c in GOLDEN["cases"]]
        assert sum(v["true_positives"] for v in ndm) > 0
        assert sum(v["false_positives"] for v in ndm) > 0

    def test_probe_has_zero_false_negatives_across_corpus(self):
        """The issue's acceptance bar: 0 FN for the probe family, with
        actual detections to show the cells are not vacuous."""
        probe = [
            c["detectors"]["probe"]["conformance"] for c in GOLDEN["cases"]
        ]
        assert sum(v["missed"] for v in probe) == 0
        assert sum(v["true_positives"] for v in probe) > 0

    def test_probe_is_precise_across_corpus(self):
        """Edge-chasing proves its cycles: no false positives either."""
        probe = [
            c["detectors"]["probe"]["conformance"] for c in GOLDEN["cases"]
        ]
        assert sum(v["false_positives"] for v in probe) == 0


@pytest.mark.parametrize("case", GOLDEN["cases"], ids=lambda c: c["id"])
@pytest.mark.parametrize("detector", DETECTORS)
def test_verdict_matches_golden(case, detector):
    config = rebuild_config(case, detector)
    stats, digest = graded_run(config)
    recorded = case["detectors"][detector]
    assert stats.fault_conformance() == recorded["conformance"], (
        f"conformance verdict for {case['id']}/{detector} changed; "
        "if intentional, regenerate tests/faults/golden_conformance.json"
    )
    assert digest == recorded["digest"], (
        f"behaviour of {case['id']}/{detector} changed; if intentional, "
        "regenerate tests/faults/golden_conformance.json"
    )
