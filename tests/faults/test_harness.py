"""Conformance-harness plumbing: report shape, caching, CLI entry point."""

import json

import pytest

from repro.faults import cli as faults_cli
from repro.faults.conformance import (
    graded_run,
    make_cases,
    quick_base_config,
    run_conformance,
)


def small_run(**kwargs):
    base = quick_base_config()
    base.measure_cycles = 200
    base.drain_cycles = 400
    return run_conformance(
        base_config=base,
        cases=make_cases(base, 2),
        detectors=("ndm",),
        **kwargs,
    )


class TestReport:
    def test_engines_match_and_shape(self):
        report = small_run()
        assert report["engines_match"] is True
        (entry,) = report["detectors"].values()
        assert len(entry["cases"]) == 2
        for case in entry["cases"]:
            assert case["engines_match"] is True
            assert case["true_positives"] >= 0
            assert case["false_positives"] >= 0
        totals = entry["totals"]
        assert totals["true_positives"] == sum(
            c["true_positives"] for c in entry["cases"]
        )

    def test_cache_round_trip(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = small_run(cache_dir=cache_dir)
        second = small_run(cache_dir=cache_dir)  # all cells from cache
        assert first == second

    def test_manifest_records_every_cell(self, tmp_path):
        manifest = tmp_path / "manifest.jsonl"
        small_run(manifest_path=str(manifest))
        records = [
            json.loads(line)
            for line in manifest.read_text().splitlines()
            if line.strip()
        ]
        cells = [r for r in records if r.get("kind") == "cell"]
        # 1 detector x 2 schedules x 2 engines
        assert len(cells) == 4
        assert {c["engine"] for c in cells} == {"scan", "event"}


class TestGradedRun:
    def test_rejects_config_without_event_classification(self):
        import pytest

        config = quick_base_config()
        config.ground_truth_on_detection = False
        with pytest.raises(ValueError, match="ground_truth_on_detection"):
            graded_run(config)

    def test_oracle_fields_flow_into_stats_dict(self):
        base = quick_base_config()
        base.measure_cycles = 200
        base.drain_cycles = 400
        config = base.replace(seed=1, faults=[
            {"kind": "link-down", "start": 10, "end": 120, "channel": 2,
             "lane": None, "node": None, "lag": 0},
        ])
        stats, digest = graded_run(config)
        payload = stats.to_dict(include_perf=False)
        assert payload["fault_edges"] == stats.fault_edges == 2
        assert "oracle_true_positive_events" in payload
        assert len(digest) == 64


class TestCli:
    def test_conformance_quick_writes_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        rc = faults_cli.main(
            [
                "conformance",
                "--quick",
                "--schedules", "1",
                "--detectors", "ndm",
                "--out", str(out),
            ]
        )
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["engines_match"] is True
        assert "ndm" in report["detectors"]
        stdout = capsys.readouterr().out
        assert "engine digests match: True" in stdout

    def test_conformance_rejects_unknown_detector(self):
        with pytest.raises(SystemExit) as excinfo:
            faults_cli.main(
                [
                    "conformance",
                    "--quick",
                    "--schedules", "1",
                    "--detectors", "ndm,bogus",
                ]
            )
        message = str(excinfo.value)
        assert "bogus" in message
        assert "ndm" in message  # valid choices listed

    def test_conformance_rejects_empty_detector_list(self):
        with pytest.raises(SystemExit, match="at least one"):
            faults_cli.main(
                ["conformance", "--quick", "--detectors", " , "]
            )

    def test_conformance_accepts_probe_detector_name(self):
        # Validation must accept every registered name, including the
        # probe family added by this PR (parse only — no run here).
        from repro.faults.cli import parse_detectors

        assert parse_detectors("probe,ndm") == ["probe", "ndm"]
