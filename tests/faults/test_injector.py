"""FaultInjector edge application against live channel state.

These tests drive an idle simulator (zero injection rate) cycle by cycle
and watch the fault fields on :class:`PhysicalChannel` — the single
source of truth every simulation phase reads.
"""

import pytest

from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator
from repro.network.tracing import Tracer


def quiet_sim(faults, **overrides) -> Simulator:
    """A 4x4 torus with no traffic: only the fault schedule acts."""
    config = SimulationConfig(
        radix=4,
        dimensions=2,
        vcs_per_channel=2,
        warmup_cycles=0,
        measure_cycles=100,
        seed=1,
        ground_truth_interval=0,
        faults=faults,
    )
    config.traffic.injection_rate = 0.0
    for key, value in overrides.items():
        setattr(config, key, value)
    return Simulator(config)


def step_to(sim: Simulator, cycle: int) -> None:
    """Advance until the edges *of* ``cycle`` have been applied."""
    while sim.cycle <= cycle:
        sim.step()


FULL = 0b11  # all-lanes usable_mask for vcs_per_channel=2


class TestLinkDown:
    def test_window_downs_and_heals(self):
        fault = {"kind": "link-down", "start": 2, "end": 5, "channel": 3}
        sim = quiet_sim([fault])
        pc = sim.channels[3]
        step_to(sim, 1)
        assert pc.usable_mask == FULL and not pc.fault_down
        step_to(sim, 2)
        assert pc.usable_mask == 0 and pc.fault_down
        step_to(sim, 4)
        assert pc.usable_mask == 0
        step_to(sim, 5)
        assert pc.usable_mask == FULL and not pc.fault_down
        assert sim.stats.fault_edges == 2

    def test_overlapping_windows_refcount(self):
        faults = [
            {"kind": "link-down", "start": 2, "end": 10, "channel": 3},
            {"kind": "link-down", "start": 5, "end": 7, "channel": 3},
        ]
        sim = quiet_sim(faults)
        pc = sim.channels[3]
        step_to(sim, 7)  # inner window ended; outer still covers
        assert pc.fault_down
        step_to(sim, 9)
        assert pc.fault_down
        step_to(sim, 10)
        assert not pc.fault_down and pc.usable_mask == FULL

    def test_out_of_range_channel_rejected(self):
        sim_channels = len(quiet_sim(None).channels)
        fault = {
            "kind": "link-down", "start": 0, "end": 5,
            "channel": sim_channels,
        }
        with pytest.raises(ValueError, match="channels"):
            quiet_sim([fault])


class TestVcStuck:
    def test_only_target_lane_masked(self):
        fault = {
            "kind": "vc-stuck", "start": 1, "end": 4, "channel": 6, "lane": 1,
        }
        sim = quiet_sim([fault])
        pc = sim.channels[6]
        step_to(sim, 1)
        assert pc.stuck_mask == 0b10
        assert pc.usable_mask == 0b01
        assert [vc.index for vc in pc.usable_free_lanes()] == [0]
        step_to(sim, 4)
        assert pc.stuck_mask == 0 and pc.usable_mask == FULL

    def test_out_of_range_lane_rejected(self):
        fault = {
            "kind": "vc-stuck", "start": 0, "end": 5, "channel": 0, "lane": 2,
        }
        with pytest.raises(ValueError, match="lanes"):
            quiet_sim([fault])


class TestRouterStall:
    def test_all_driven_channels_down(self):
        fault = {"kind": "router-stall", "start": 3, "end": 8, "node": 5}
        sim = quiet_sim([fault])
        router = sim.routers[5]
        targets = (
            list(router.output_pc_list)
            + list(router.ejection_pcs)
            + list(router.injection_pcs)
        )
        step_to(sim, 3)
        assert targets and all(pc.fault_down for pc in targets)
        untouched = [pc for pc in sim.channels if pc not in targets]
        assert all(not pc.fault_down for pc in untouched)
        step_to(sim, 8)
        assert all(not pc.fault_down for pc in targets)

    def test_out_of_range_node_rejected(self):
        fault = {"kind": "router-stall", "start": 0, "end": 5, "node": 16}
        with pytest.raises(ValueError, match="nodes"):
            quiet_sim([fault])


class TestCounterFaults:
    def test_lag_applied_once_and_cleared_by_flit(self):
        fault = {
            "kind": "counter-lag", "start": 2, "end": 3, "channel": 4, "lag": 9,
        }
        sim = quiet_sim([fault])
        pc = sim.channels[4]
        step_to(sim, 2)
        assert pc.counter_lag == 9
        pc.note_occupied(sim.cycle)  # counter only advances while occupied
        pc.record_flit(sim.cycle + 1)  # the next flit clears the lag
        assert pc.counter_lag == 0

    def test_lag_delays_inactivity_reading(self):
        fault = {
            "kind": "counter-lag", "start": 5, "end": 6, "channel": 4, "lag": 6,
        }
        sim = quiet_sim([fault])
        pc = sim.channels[4]
        pc.note_occupied(0)
        step_to(sim, 5)
        # Without the fault the reading at cycle 10 would be 10 cycles.
        assert pc.inactivity(10) == 4
        # The lag only postpones the threshold crossing, never advances it.
        assert pc.inactivity_deadline(8) == 0 + 8 + 1 + 6

    def test_freeze_holds_reading_while_occupied_then_resumes(self):
        fault = {
            "kind": "counter-freeze", "start": 6, "end": 12, "channel": 4,
        }
        sim = quiet_sim([fault])
        pc = sim.channels[4]
        pc.note_occupied(5)
        step_to(sim, 11)
        # Reading at window entry (cycle 6) was 1; it held there all window.
        assert pc.inactivity(11) == 1
        step_to(sim, 14)
        assert pc.inactivity(14) == 4  # resumed advancing after the thaw

    def test_freeze_is_inert_while_unoccupied(self):
        fault = {
            "kind": "counter-freeze", "start": 2, "end": 20, "channel": 4,
        }
        sim = quiet_sim([fault])
        pc = sim.channels[4]
        step_to(sim, 15)
        assert pc.counter_lag == 0


class TestObservability:
    def test_edges_traced(self):
        faults = [
            {"kind": "link-down", "start": 2, "end": 5, "channel": 3},
            {"kind": "counter-lag", "start": 4, "end": 5, "channel": 0,
             "lag": 2},
        ]
        sim = quiet_sim(faults)
        sim.tracer = Tracer(capacity=0)
        step_to(sim, 6)
        events = sim.tracer.of_kind("fault")
        assert ("fault", 2, -1, 3, "link-down", 0) in events
        assert ("fault", 4, -1, 0, "counter-lag", 2) in events
        assert ("fault", 5, -1, 3, "link-up", 0) in events
        assert sim.stats.fault_edges == len(events) == 3

    def test_invariants_hold_through_edges(self):
        faults = [
            {"kind": "link-down", "start": 1, "end": 4, "channel": 2},
            {"kind": "vc-stuck", "start": 2, "end": 6, "channel": 2,
             "lane": 0},
        ]
        sim = quiet_sim(faults)
        for _ in range(10):
            sim.step()
            sim.check_invariants()
