"""Wedge-then-heal drain regression.

The latent bug class this pins down: a run whose network is wedged by a
fault when measurement ends must still terminate once the fault heals
mid-drain.  The failure mode is engine-specific — the event engine parks
blocked headers and frozen worms with a proof they cannot act, and a
heal edge invalidates that proof from the *outside* (no VC release, no
counter resume, no promotion fires).  Without the injector's
``wake_all_parked`` on every fault edge, the parked worms sleep through
the heal and the drain loop spins to its cycle cap with flits stranded.

The schedule downs four links for the whole measurement window and the
first 200 drain cycles; traffic piles up behind them, then the heal
releases it.  Recovery is off, so the *only* way the network empties is
fault-blocked worms resuming on their own.
"""

from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator
from repro.network.types import MessageStatus

HEAL_CYCLE = 400
DRAIN_LIMIT = 3000

FAULTS = [
    {"kind": "link-down", "start": 20, "end": HEAL_CYCLE, "channel": ch}
    for ch in (0, 5, 11, 17)
]


def build_config(engine: str) -> SimulationConfig:
    config = SimulationConfig(
        radix=4,
        dimensions=2,
        vcs_per_channel=2,
        warmup_cycles=0,
        measure_cycles=200,
        drain_cycles=DRAIN_LIMIT,
        seed=5,
        engine=engine,
        ground_truth_interval=0,
        recovery="none",
        faults=[dict(f) for f in FAULTS],
    )
    config.traffic.injection_rate = 0.25
    config.detector.mechanism = "ndm"
    config.detector.threshold = 16
    return config


def test_network_is_actually_wedged_mid_drain():
    """Sanity: without this, the regression test would assert nothing."""
    sim = Simulator(build_config("event"))
    while sim.cycle < HEAL_CYCLE - 10:
        sim.step()
    stuck = [
        m
        for m in sim.active_messages
        if m.status is MessageStatus.IN_NETWORK
    ]
    assert len(stuck) >= 5


def test_heal_drains_fully_on_both_engines():
    runs = {}
    for engine in ("scan", "event"):
        sim = Simulator(build_config(engine))
        stats = sim.run()
        assert not sim.active_messages
        assert stats.delivered == stats.injected
        # Termination must come from the heal, not the drain cycle cap.
        assert HEAL_CYCLE < stats.cycles_run < HEAL_CYCLE + 300
        runs[engine] = stats.to_dict(include_perf=False)
    assert runs["scan"] == runs["event"]


def test_event_engine_invariants_through_the_heal():
    sim = Simulator(build_config("event"))
    while sim.active_messages or sim.cycle < HEAL_CYCLE + 1:
        sim.step()
        if sim.cycle % 10 == 0 or HEAL_CYCLE - 2 <= sim.cycle <= HEAL_CYCLE + 5:
            sim.check_invariants()
        assert sim.cycle < 200 + DRAIN_LIMIT
