"""FaultSpec validation, serialization round-trips and schedule generation."""

import pytest

from repro.faults.spec import (
    FAULT_KINDS,
    FaultSpec,
    random_faults,
    validate_fault_dicts,
)


class TestValidation:
    def test_all_kinds_accept_a_wellformed_spec(self):
        wellformed = {
            "link-down": FaultSpec("link-down", 0, 10, channel=3),
            "vc-stuck": FaultSpec("vc-stuck", 5, 6, channel=0, lane=1),
            "router-stall": FaultSpec("router-stall", 2, 9, node=7),
            "counter-freeze": FaultSpec("counter-freeze", 1, 4, channel=2),
            "counter-lag": FaultSpec("counter-lag", 3, 4, channel=1, lag=8),
        }
        assert sorted(wellformed) == sorted(FAULT_KINDS)
        for spec in wellformed.values():
            spec.validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("bit-flip", 0, 1, channel=0).validate()

    @pytest.mark.parametrize("start,end", [(5, 5), (5, 3), (-1, 4)])
    def test_degenerate_window_rejected(self, start, end):
        with pytest.raises(ValueError, match="window"):
            FaultSpec("link-down", start, end, channel=0).validate()

    def test_channel_kinds_need_channel(self):
        for kind in ("link-down", "vc-stuck", "counter-freeze", "counter-lag"):
            with pytest.raises(ValueError, match="channel"):
                FaultSpec(kind, 0, 1, lane=0, lag=1).validate()

    def test_vc_stuck_needs_lane(self):
        with pytest.raises(ValueError, match="lane"):
            FaultSpec("vc-stuck", 0, 1, channel=0).validate()

    def test_router_stall_needs_node(self):
        with pytest.raises(ValueError, match="node"):
            FaultSpec("router-stall", 0, 1).validate()

    def test_counter_lag_needs_positive_lag(self):
        with pytest.raises(ValueError, match="lag"):
            FaultSpec("counter-lag", 0, 1, channel=0, lag=0).validate()


class TestSerialization:
    def test_round_trip(self):
        spec = FaultSpec("vc-stuck", 10, 20, channel=4, lane=2)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_validates(self):
        payload = FaultSpec("link-down", 0, 5, channel=1).to_dict()
        payload["end"] = 0
        with pytest.raises(ValueError):
            FaultSpec.from_dict(payload)

    def test_validate_fault_dicts_rejects_non_dict(self):
        with pytest.raises(ValueError, match="dicts"):
            validate_fault_dicts([("link-down", 0, 5)])

    def test_validate_fault_dicts_accepts_generated(self):
        validate_fault_dicts(
            random_faults(
                seed=3, num_channels=10, num_nodes=4, num_vcs=2, horizon=100
            )
        )


class TestRandomFaults:
    KW = dict(num_channels=48, num_nodes=16, num_vcs=3, horizon=500)

    def test_deterministic_per_seed(self):
        assert random_faults(seed=7, **self.KW) == random_faults(
            seed=7, **self.KW
        )

    def test_seeds_differ(self):
        assert random_faults(seed=1, **self.KW) != random_faults(
            seed=2, **self.KW
        )

    def test_targets_within_network(self):
        for seed in range(20):
            for payload in random_faults(seed=seed, count=8, **self.KW):
                spec = FaultSpec.from_dict(payload)
                assert spec.end <= self.KW["horizon"]
                if spec.channel is not None:
                    assert spec.channel < self.KW["num_channels"]
                if spec.lane is not None:
                    assert spec.lane < self.KW["num_vcs"]
                if spec.node is not None:
                    assert spec.node < self.KW["num_nodes"]

    def test_trivial_network_rejected(self):
        with pytest.raises(ValueError):
            random_faults(
                seed=0, num_channels=0, num_nodes=1, num_vcs=1, horizon=10
            )
