"""Property-based tests of the fault subsystem (hypothesis).

The properties the subsystem promises, explored over random topologies,
loads, detectors and fault schedules:

* the scan and event engines produce bit-identical behaviour under any
  schedule (``to_dict(include_perf=False)`` equality);
* simulator invariants hold on *every* cycle while faults fire;
* flits are conserved: faults block and delay worms but never destroy
  flits, so per-message conservation and the delivery ledger hold at
  drain;
* runs are deterministic: the same (config, schedule) replays exactly.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.conformance import channel_count
from repro.faults.spec import random_faults
from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator
from repro.network.types import MessageStatus

SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

params_strategy = st.fixed_dictionaries(
    {
        "dimensions": st.sampled_from([1, 2]),
        "vcs_per_channel": st.integers(min_value=1, max_value=2),
        "rate": st.floats(min_value=0.05, max_value=0.5),
        "mechanism": st.sampled_from(["ndm", "pdm", "timeout", "probe"]),
        "recovery": st.sampled_from(["progressive", "none"]),
        "threshold": st.sampled_from([8, 16]),
        "seed": st.integers(min_value=0, max_value=2**16),
        "fault_seed": st.integers(min_value=0, max_value=2**16),
        "fault_count": st.integers(min_value=1, max_value=6),
    }
)


def build_config(params, engine: str = "event") -> SimulationConfig:
    config = SimulationConfig(
        radix=4,
        dimensions=params["dimensions"],
        vcs_per_channel=params["vcs_per_channel"],
        warmup_cycles=30,
        measure_cycles=170,
        drain_cycles=300,
        seed=params["seed"],
        engine=engine,
        ground_truth_interval=0,
        recovery=params["recovery"],
    )
    config.traffic.injection_rate = params["rate"]
    config.detector.mechanism = params["mechanism"]
    config.detector.threshold = params["threshold"]
    config.faults = random_faults(
        seed=params["fault_seed"],
        num_channels=channel_count(config),
        num_nodes=config.build_topology().num_nodes,
        num_vcs=config.vcs_per_channel,
        horizon=config.warmup_cycles + config.measure_cycles,
        count=params["fault_count"],
        max_window=100,
    )
    return config


class TestEngineEquivalence:
    @given(params_strategy)
    @SLOW
    def test_scan_and_event_bit_identical(self, params):
        runs = {}
        for engine in ("scan", "event"):
            sim = Simulator(build_config(params, engine))
            stats = sim.run()
            runs[engine] = (
                stats.to_dict(include_perf=False),
                sorted(m.id for m in sim.active_messages),
            )
        assert runs["scan"] == runs["event"]


class TestInvariantsUnderFaults:
    @given(params_strategy)
    @SLOW
    def test_invariants_hold_every_cycle(self, params):
        sim = Simulator(build_config(params))
        for _ in range(200):
            sim.step()
            sim.check_invariants()

    @given(params_strategy)
    @SLOW
    def test_usable_mask_restored_after_all_windows(self, params):
        config = build_config(params)
        sim = Simulator(config)
        sim.run()
        # A fully drained run can stop before late windows close; step the
        # clock past the last end edge so every heal has fired.
        last_end = max(f["end"] for f in config.faults)
        while sim.cycle <= last_end:
            sim.step()
        for pc in sim.channels:
            assert not pc.fault_down
            assert pc.stuck_mask == 0
            assert pc.usable_mask == (1 << len(pc.vcs)) - 1


class TestConservation:
    @given(params_strategy)
    @SLOW
    def test_no_lost_flits_at_drain(self, params):
        sim = Simulator(build_config(params))
        stats = sim.run()
        for message in sim.active_messages:
            message.check_conservation()
        in_network = [
            m
            for m in sim.active_messages
            if m.status is MessageStatus.IN_NETWORK
        ]
        # Every injected message is either delivered, aborted by regressive
        # recovery (none here), or still accounted for in the network.
        assert stats.delivered + len(in_network) >= stats.injected
        if not sim.active_messages:
            assert stats.delivered == stats.injected


class TestDeterminism:
    @given(params_strategy)
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_replay_identical(self, params):
        a = Simulator(build_config(params)).run()
        b = Simulator(build_config(params)).run()
        assert a.to_dict(include_perf=False) == b.to_dict(include_perf=False)
        assert a.fault_edges == b.fault_edges
