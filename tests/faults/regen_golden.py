"""Regenerate ``golden_conformance.json`` after an intentional model change.

    PYTHONPATH=src python tests/faults/regen_golden.py

Review the resulting verdict diff like any other golden update.
"""

import json
from pathlib import Path

from repro.faults.conformance import graded_run, make_cases, quick_base_config


def main() -> None:
    base = quick_base_config()
    cases = make_cases(base, 10)
    golden = {
        "regenerate": "PYTHONPATH=src python tests/faults/regen_golden.py",
        "base_config": base.to_dict(),
        "cases": [],
    }
    for case in cases:
        entry = {
            "id": case["id"],
            "seed": case["seed"],
            "faults": case["faults"],
            "detectors": {},
        }
        for detector in ("ndm", "pdm", "timeout", "probe"):
            config = base.replace(
                seed=case["seed"],
                engine="event",
                faults=[dict(f) for f in case["faults"]],
            )
            config.detector.mechanism = detector
            stats, digest = graded_run(config)
            entry["detectors"][detector] = {
                "digest": digest,
                "conformance": stats.fault_conformance(),
            }
        golden["cases"].append(entry)
    path = Path(__file__).parent / "golden_conformance.json"
    path.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path} ({len(golden['cases'])} cases)")


if __name__ == "__main__":
    main()
