"""Property-based tests of the probe detector family (hypothesis).

The guarantees the issue demands of the probe subsystem, explored over
random topologies, loads, fault schedules and probe configurations:

* **no probe storms** — outstanding probes per initiator never exceed
  ``max_outstanding + 1`` (the +1 is the single returning probe allowed
  to bypass the cap), on every single cycle;
* **no false negatives** — any message the fault-aware oracle holds as
  truly deadlocked at end of run was detected at least once, under
  default caps (an explicit tiny ``max_hops`` legitimately forfeits
  long cycles, so the guarantee is stated for the default knobs);
* **engine equality** — scan and event runs are bit-identical for every
  probe configuration, including non-default hop/outstanding caps;
* **precision** — probe detections are never graded as false positives
  by the conformance oracle (edge-chasing proves its cycles).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.deadlock import find_deadlocked
from repro.faults.conformance import channel_count, graded_run
from repro.faults.spec import random_faults
from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator

SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

params_strategy = st.fixed_dictionaries(
    {
        "dimensions": st.sampled_from([1, 2]),
        "vcs_per_channel": st.integers(min_value=1, max_value=2),
        "rate": st.floats(min_value=0.1, max_value=0.5),
        "threshold": st.sampled_from([4, 8, 16]),
        "max_hops": st.sampled_from([2, 8, 64]),
        "max_outstanding": st.sampled_from([1, 4, 64]),
        "seed": st.integers(min_value=0, max_value=2**16),
        "fault_seed": st.integers(min_value=0, max_value=2**16),
        "fault_count": st.integers(min_value=1, max_value=6),
    }
)


def build_config(params, engine: str = "event") -> SimulationConfig:
    config = SimulationConfig(
        radix=4,
        dimensions=params["dimensions"],
        vcs_per_channel=params["vcs_per_channel"],
        warmup_cycles=30,
        measure_cycles=170,
        drain_cycles=300,
        seed=params["seed"],
        engine=engine,
        ground_truth_interval=100,
        recovery="progressive",
    )
    config.traffic.injection_rate = params["rate"]
    config.detector.mechanism = "probe"
    config.detector.threshold = params["threshold"]
    config.detector.probe_max_hops = params["max_hops"]
    config.detector.probe_max_outstanding = params["max_outstanding"]
    config.faults = random_faults(
        seed=params["fault_seed"],
        num_channels=channel_count(config),
        num_nodes=config.build_topology().num_nodes,
        num_vcs=config.vcs_per_channel,
        horizon=config.warmup_cycles + config.measure_cycles,
        count=params["fault_count"],
        max_window=100,
    )
    return config


class TestNoProbeStorms:
    @given(params_strategy)
    @SLOW
    def test_outstanding_bounded_every_cycle(self, params):
        sim = Simulator(build_config(params))
        transport = sim.detector.transport
        cap = transport.max_outstanding + 1
        for _ in range(300):
            sim.step()
            for session in transport.sessions.values():
                assert len(session.probes) <= cap
        assert sim.stats.probe_peak_outstanding <= cap

    @given(params_strategy)
    @SLOW
    def test_sessions_bounded_by_blocked_messages(self, params):
        sim = Simulator(build_config(params))
        transport = sim.detector.transport
        for _ in range(300):
            sim.step()
            blocked = sum(1 for m in sim.active_messages if m.is_blocked())
            assert len(transport.sessions) <= max(blocked, 0)


class TestNoFalseNegatives:
    @given(params_strategy)
    @SLOW
    def test_default_caps_catch_every_oracle_deadlock(self, params):
        # The FN guarantee is stated for the default caps: a tiny
        # explicit max_hops legitimately forfeits cycles longer than the
        # cap (counted in probe_dropped_hops instead).
        config = build_config(params)
        config.detector.probe_max_hops = 64
        config.detector.probe_max_outstanding = 64
        stats, _ = graded_run(config)
        assert stats.oracle_missed_messages == 0

    @given(params_strategy)
    @SLOW
    def test_probe_detections_are_never_false_positives(self, params):
        config = build_config(params)
        stats, _ = graded_run(config)
        assert stats.oracle_false_positive_events == 0


class TestEngineEquality:
    @given(params_strategy)
    @SLOW
    def test_scan_and_event_bit_identical_for_all_probe_configs(self, params):
        runs = {}
        for engine in ("scan", "event"):
            sim = Simulator(build_config(params, engine))
            stats = sim.run()
            runs[engine] = (
                stats.to_dict(include_perf=False),
                sorted(m.id for m in sim.active_messages),
            )
        assert runs["scan"] == runs["event"]


class TestDeadEndSelfDetection:
    @given(params_strategy)
    @SLOW
    def test_end_state_has_no_unmarked_wedged_messages(self, params):
        # After a full run (drain included), anything the fault-aware
        # oracle still classifies as deadlocked must carry a detection —
        # the cycle case via returning probes, the fault-wedged dead-end
        # case via launch-time self-detection.
        config = build_config(params)
        config.detector.probe_max_hops = 64
        config.detector.probe_max_outstanding = 64
        sim = Simulator(config)
        sim.run()
        final = find_deadlocked(sim.active_messages, honor_faults=True)
        for m in final:
            assert m.times_detected > 0
