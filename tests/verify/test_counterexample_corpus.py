"""Counterexample corpus regression: every stored refutation still bites.

Like ``tests/faults/golden_conformance.json``, the JSON files under
``tests/verify/counterexamples/`` pin sweep-found refutations as
permanent regression tests: each one is replayed against the live
simulator and must still reproduce its violation.  If a mechanism change
legitimately fixes one (e.g. the NDM grows a fault-aware path that
detects permanent link-down wedges), delete the stale file, drop the
cell from ``EXPECTED_REFUTED`` and update docs/verification.md — the
failure message of this test is the reminder.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.verify.checker import Violation, explore
from repro.verify.counterexample import (
    ReplayMismatch,
    check_counterexample,
    iter_corpus,
    load_counterexample,
    write_counterexample,
)
from repro.verify.library import refutation_selftest_case, ring2_linkdown
from repro.verify.scenario import VerifyCase

CORPUS_DIR = Path(__file__).parent / "counterexamples"
CORPUS = list(iter_corpus(CORPUS_DIR))


def test_corpus_is_seeded() -> None:
    """The machinery must never run on an empty directory unnoticed."""
    assert CORPUS, f"no counterexample files under {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path", CORPUS, ids=[p.stem for p in CORPUS]
)
def test_stored_counterexample_still_reproduces(path: Path) -> None:
    case, violation = load_counterexample(path)
    check_counterexample(case, violation)


def test_round_trip_through_json(tmp_path: Path) -> None:
    verdict = explore(refutation_selftest_case())
    assert verdict.violation is not None
    out = tmp_path / "selftest.json"
    write_counterexample(verdict, out)
    case, violation = load_counterexample(out)
    assert case == verdict.case
    assert violation == verdict.violation
    check_counterexample(case, violation)


def test_stale_counterexample_is_rejected() -> None:
    """A violation claimed against a mechanism that detects must fail."""
    verdict = explore(refutation_selftest_case())
    assert verdict.violation is not None
    detecting = VerifyCase(scenario=ring2_linkdown(), mechanism="timeout")
    with pytest.raises(ReplayMismatch):
        check_counterexample(detecting, verdict.violation)


def test_malformed_liveness_counterexample_is_rejected() -> None:
    bogus = Violation(
        kind="false-negative",
        detail="missing loop",
        trace=((),),
        loop=None,
        message_id=0,
    )
    with pytest.raises(ReplayMismatch):
        check_counterexample(refutation_selftest_case(), bogus)
