"""Checker unit and sweep tests: enumeration, verdicts, self-tests."""

from __future__ import annotations

from typing import List

import pytest

from repro.verify.checker import explore
from repro.verify.choices import ChoiceError, ChoiceLog, next_vector
from repro.verify.cli import EXPECTED_REFUTED, sweep, unexpected_outcomes
from repro.verify.counterexample import check_counterexample
from repro.verify.driver import Instance
from repro.verify.encode import digest, encode_state
from repro.verify.library import (
    MECHANISM_GRID,
    all_cases,
    refutation_selftest_case,
    ring2_basic,
    ring2_linkdown,
    ring2_vcstuck,
    ring3_basic,
)
from repro.verify.oracle import (
    dependency_edges,
    has_dependency_cycle,
    statically_deadlock_free,
)
from repro.verify.scenario import VerifyCase


# ----------------------------------------------------------------------
# Choice enumeration primitives
# ----------------------------------------------------------------------
def test_odometer_enumerates_mixed_domains() -> None:
    domains = [2, 3]
    seen: List[List[int]] = []
    vector: List[int] | None = []
    while vector is not None:
        padded = vector + [0] * (len(domains) - len(vector))
        seen.append(padded)
        vector = next_vector(padded, domains)
    assert seen == [
        [0, 0], [0, 1], [0, 2], [1, 0], [1, 1], [1, 2],
    ]


def test_odometer_empty_domain_list_is_single_leaf() -> None:
    assert next_vector([], []) is None


def test_choice_log_pads_and_validates() -> None:
    log = ChoiceLog([1])
    assert log.draw(3) == 1
    assert log.draw(2) == 0  # past the script: padded zero
    assert log.domains == [3, 2]
    assert log.vector() == [1, 0]
    with pytest.raises(ChoiceError):
        ChoiceLog([5]).draw(2)


# ----------------------------------------------------------------------
# Static oracle
# ----------------------------------------------------------------------
def test_static_oracle_clears_one_hop_rings() -> None:
    for scenario in (ring2_basic(), ring3_basic()):
        case = VerifyCase(scenario=scenario)
        assert statically_deadlock_free(case), scenario.name


def test_static_oracle_flags_ring4_cross() -> None:
    from repro.verify.library import ring4_cross

    case = VerifyCase(scenario=ring4_cross())
    edges = dependency_edges(case.scenario, case.build_config())
    assert has_dependency_cycle(edges)
    assert not statically_deadlock_free(case)


# ----------------------------------------------------------------------
# Exhaustive enumeration: fixpoints and pinned verdicts
# ----------------------------------------------------------------------
@pytest.mark.parametrize(("mechanism", "selective"), MECHANISM_GRID)
def test_ring2_basic_proved_at_fixpoint(
    mechanism: str, selective: bool
) -> None:
    case = VerifyCase(
        scenario=ring2_basic(),
        mechanism=mechanism,
        selective_promotion=selective,
    )
    verdict = explore(case)
    assert verdict.verdict == "proved"
    assert verdict.stopped_on == ""
    # Delivery-only scenario: no reachable state is ever truly deadlocked.
    assert verdict.max_undetected_span == 0
    assert verdict.states == 22
    assert verdict.edges == 23


@pytest.mark.parametrize(("mechanism", "selective"), MECHANISM_GRID)
def test_ring3_basic_proved_at_fixpoint(
    mechanism: str, selective: bool
) -> None:
    case = VerifyCase(
        scenario=ring3_basic(),
        mechanism=mechanism,
        selective_promotion=selective,
    )
    verdict = explore(case)
    assert verdict.verdict == "proved"
    assert verdict.stopped_on == ""
    assert verdict.max_undetected_span == 0
    assert verdict.states == 42


def test_permanent_wedge_splits_the_mechanisms() -> None:
    """The honest known split on a permanent link-down wedge.

    The counter-based mechanisms watch inactivity counters that a dead,
    unoccupied channel never advances — provably blind here — while the
    blocked-header timeout and the probe's dead-end self-detection must
    flag the wedge within a small bound.
    """
    scenario = ring2_linkdown()
    for mechanism, expect in (
        ("ndm", "refuted"),
        ("pdm", "refuted"),
        ("timeout", "proved"),
        ("probe", "proved"),
    ):
        verdict = explore(VerifyCase(scenario=scenario, mechanism=mechanism))
        assert verdict.verdict == expect, mechanism
        if expect == "refuted":
            assert verdict.violation is not None
            assert verdict.violation.kind == "false-negative"
            assert verdict.violation.loop is not None
            check_counterexample(verdict.case, verdict.violation)
        else:
            # Eventual detection, within a small measured bound.
            assert 0 < verdict.max_undetected_span <= 5


def test_refutation_selftest_fires() -> None:
    """The null detector must refute, or the proofs are vacuous."""
    verdict = explore(refutation_selftest_case())
    assert verdict.verdict == "refuted"
    assert verdict.violation is not None
    assert verdict.violation.kind == "false-negative"
    check_counterexample(verdict.case, verdict.violation)


def test_collision_cross_check_validates_encoding() -> None:
    """Re-expanding every dedupe hit must find no behavioural divergence.

    ``ring2-vcstuck`` has the densest quotient of the fast grid (extra
    lanes mean real arbitration); an unsound clamp or a missed field in
    the encoding surfaces here as ``EncodingUnsound``.
    """
    case = VerifyCase(scenario=ring2_vcstuck(), mechanism="ndm")
    verdict = explore(case, collision_checks=10_000)
    assert verdict.verdict == "proved"


def test_encoding_is_stable_across_instances() -> None:
    case = VerifyCase(scenario=ring2_basic(), mechanism="ndm")
    assert digest(encode_state(Instance(case))) == digest(
        encode_state(Instance(case))
    )


# ----------------------------------------------------------------------
# The gating sweep: every fast cell matches its expected verdict
# ----------------------------------------------------------------------
def test_fast_sweep_matches_expected_verdicts() -> None:
    verdicts = sweep(slow=False)
    assert unexpected_outcomes(verdicts) == []
    labels = {v.case.label() for v in verdicts}
    # ISSUE acceptance: at least one 2-node and one 3-node configuration
    # per mechanism/promotion cell, enumerated to fixpoint.
    for mechanism, selective in MECHANISM_GRID:
        suffix = (
            f"{mechanism}/selective"
            if selective
            else (f"{mechanism}/simple" if mechanism == "ndm" else mechanism)
        )
        assert f"ring2-basic/{suffix}" in labels
        assert f"ring3-basic/{suffix}" in labels
    for v in verdicts:
        assert v.verdict != "inconclusive"
        if v.case.label() in EXPECTED_REFUTED:
            assert v.verdict == "refuted"
        else:
            assert v.verdict == "proved"


def test_grid_labels_are_unique() -> None:
    cases = all_cases(slow=True)
    labels = [case.label() for case in cases]
    assert len(labels) == len(set(labels))
