"""Selective-promotion coverage: the Figures 3/4 family, exhaustively.

``ring2-promotion`` ports the paper's selective-promotion scenario shape
(a worm stalled mid-transfer, the I-flag set/reset path, promotion on
resume) onto a 2-node configuration small enough to enumerate fully.
These tests prove the G/P invariants over *every* adversary schedule of
that family — not just the sampled trajectories of the figure
experiments — and assert the state space actually exercises the
promotion machinery, so the proof is not vacuous.
"""

from __future__ import annotations

import pytest

from repro.network.types import GPState
from repro.verify.checker import explore
from repro.verify.driver import Instance
from repro.verify.library import ring2_promotion
from repro.verify.scenario import VerifyCase


@pytest.mark.parametrize("selective", [False, True], ids=["simple", "selective"])
def test_promotion_family_proved_exhaustively(selective: bool) -> None:
    case = VerifyCase(
        scenario=ring2_promotion(),
        mechanism="ndm",
        selective_promotion=selective,
    )
    verdict = explore(case)
    assert verdict.verdict == "proved", (
        verdict.violation.detail if verdict.violation else ""
    )
    assert verdict.stopped_on == ""
    # The transient wedge is undetected for a bounded window only.
    assert 0 < verdict.max_undetected_span <= case.threshold + 2


@pytest.mark.parametrize("selective", [False, True], ids=["simple", "selective"])
def test_promotion_family_exercises_rule_sites(selective: bool) -> None:
    """Coverage guard: G flags (and selective waiters) must actually occur.

    The exhaustive proof above audits every G/P write through
    ``RecordingNDM``; this test pins that there *are* such writes on the
    canonical path, so a scenario regression (e.g. a fault window that no
    longer stalls the worm) cannot quietly turn the proof vacuous.
    """
    case = VerifyCase(
        scenario=ring2_promotion(),
        mechanism="ndm",
        selective_promotion=selective,
    )
    inst = Instance(case)
    g_events = 0
    g_states = 0
    waiter_states = 0
    for _ in range(14):
        inst.step_cycle()
        g_events += sum(1 for _, is_g in inst.detector.events if is_g)
        g_states += sum(
            1 for pc in inst.sim.channels if pc.gp is GPState.GENERATE
        )
        waiter_states += sum(1 for pc in inst.sim.channels if pc.waiters)
    assert inst.all_delivered()
    assert g_events > 0, "no G transitions recorded: the proof is vacuous"
    assert g_states > 0
    if selective:
        assert waiter_states > 0, "selective waiter maps never populated"
