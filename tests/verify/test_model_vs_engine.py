"""Model-vs-engine conformance: verifier paths replayed on both engines.

The checker's soundness rests on the claim that a choice trace is a
*complete* account of a run's nondeterminism: replaying the same trace
must reproduce the same behaviour — on the event engine the checker
drives, and equally on the scan engine, whose parked-message skips are
required to preserve the RNG stream.  Hypothesis picks adversary paths
the same way the checker's enumeration does (domains discovered by
replay, values drawn from the example stream), then replays each path on
both engines asserting identical behavioural digests after every cycle.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verify.driver import Instance
from repro.verify.encode import behavioural_digest
from repro.verify.library import (
    ring2_pair,
    ring2_vcstuck,
    ring3_basic,
    ring4_cross,
)
from repro.verify.scenario import VerifyCase, VerifyScenario

MECHANISMS: Tuple[Tuple[str, bool], ...] = (
    ("ndm", False),
    ("ndm", True),
    ("pdm", False),
    ("timeout", False),
    ("probe", False),
)

MAX_CYCLES = 24


def build_trace(
    case: VerifyCase, draws: Iterator[int], cycles: int
) -> List[Tuple[int, ...]]:
    """An adversary path chosen by ``draws``, domains discovered by replay.

    Mirrors the checker's successor generation: a cycle's later choice
    domains depend on its earlier choices, so the vector is grown one
    position at a time, re-replaying the prefix until it covers every
    domain the cycle serves.
    """
    trace: List[Tuple[int, ...]] = []
    for _ in range(cycles):
        vector: List[int] = []
        while True:
            scout = Instance(case)
            scout.run_trace(trace)
            log = scout.step_cycle(vector)
            if len(vector) >= len(log.domains):
                trace.append(tuple(log.vector()))
                break
            vector.append(next(draws) % log.domains[len(vector)])
        if scout.all_delivered():
            break
    return trace


def scenario_for(name: str) -> VerifyScenario:
    return {
        "ring2-pair": ring2_pair(),
        "ring2-vcstuck": ring2_vcstuck(),
        "ring3-basic": ring3_basic(),
        "ring4-cross": ring4_cross(),
    }[name]


@pytest.mark.parametrize(("mechanism", "selective"), MECHANISMS)
@given(
    name=st.sampled_from(
        ["ring2-pair", "ring2-vcstuck", "ring3-basic", "ring4-cross"]
    ),
    raw=st.lists(st.integers(min_value=0, max_value=997), max_size=64),
)
@settings(max_examples=20)
def test_event_and_scan_agree_on_verifier_paths(
    mechanism: str, selective: bool, name: str, raw: List[int]
) -> None:
    case = VerifyCase(
        scenario=scenario_for(name),
        mechanism=mechanism,
        selective_promotion=selective,
        probe_max_hops=8,
        probe_max_outstanding=4,
    )
    draws = iter(raw + [0] * 512)
    trace = build_trace(case, draws, MAX_CYCLES)
    event = Instance(case, engine="event")
    scan = Instance(case, engine="scan")
    for cycle, vector in enumerate(trace):
        log_event = event.step_cycle(vector)
        log_scan = scan.step_cycle(vector)
        assert log_event.domains == log_scan.domains, (
            f"choice domains diverged at cycle {cycle}"
        )
        assert behavioural_digest(event) == behavioural_digest(scan), (
            f"behavioural state diverged at cycle {cycle}"
        )


@pytest.mark.parametrize(("mechanism", "selective"), MECHANISMS)
def test_replay_is_deterministic(mechanism: str, selective: bool) -> None:
    """The same trace replayed twice gives identical full encodings."""
    case = VerifyCase(
        scenario=ring2_vcstuck(),
        mechanism=mechanism,
        selective_promotion=selective,
    )
    trace = build_trace(case, iter([3, 1, 4, 1, 5, 9, 2, 6] * 16), 12)
    first = Instance(case)
    second = Instance(case)
    from repro.verify.encode import digest, encode_state

    for vector in trace:
        first.step_cycle(vector)
        second.step_cycle(vector)
        assert digest(encode_state(first)) == digest(encode_state(second))
