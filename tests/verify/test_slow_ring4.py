"""Slow tier: the 4-node true-routing-deadlock sweep (``pytest -m slow``).

``ring4-cross`` is the only scenario in the grid with a genuine,
fault-free routing deadlock (opposite pairs on a 4-ring, both directions
minimal).  It is the strongest form of the paper's 0-FN claim — and the
cell where the probe mechanism's victim-based detection honestly fails
without a recovery scheme (see docs/verification.md).
"""

from __future__ import annotations

import pytest

from repro.verify.checker import explore
from repro.verify.cli import unexpected_outcomes
from repro.verify.counterexample import check_counterexample
from repro.verify.library import cases_for, ring4_cross

pytestmark = pytest.mark.slow


def test_ring4_cross_verdicts() -> None:
    results = {
        case.label(): explore(case, max_states=500_000)
        for case in cases_for(ring4_cross())
    }
    for label in (
        "ring4-cross/ndm/simple",
        "ring4-cross/ndm/selective",
        "ring4-cross/pdm",
    ):
        verdict = results[label]
        assert verdict.verdict == "proved", label
        # A true deadlock forms and is detected within a small bound.
        assert 0 < verdict.max_undetected_span <= 5
    timeout = results["ring4-cross/timeout"]
    assert timeout.verdict == "proved"
    probe = results["ring4-cross/probe"]
    assert probe.verdict == "refuted"
    assert probe.violation is not None
    assert probe.violation.kind == "false-negative"
    assert probe.violation.loop is not None
    check_counterexample(probe.case, probe.violation)


def test_full_slow_sweep_matches_expectations() -> None:
    from repro.verify.cli import sweep

    assert unexpected_outcomes(sweep(slow=True)) == []
