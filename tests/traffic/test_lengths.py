"""Tests for message length specifications."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic.lengths import (
    BimodalLength,
    FixedLength,
    PAPER_SIZES,
    UniformLength,
    make_length_spec,
)


@pytest.fixture
def rng():
    return random.Random(5)


class TestFixed:
    def test_draws_constant(self, rng):
        spec = FixedLength(16)
        assert all(spec.draw(rng) == 16 for _ in range(10))

    def test_mean(self):
        assert FixedLength(64).mean() == 64.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            FixedLength(0)


class TestBimodal:
    def test_only_two_lengths(self, rng):
        spec = BimodalLength(short=16, long=64, short_fraction=0.6)
        assert {spec.draw(rng) for _ in range(200)} == {16, 64}

    def test_mean_matches_mix(self):
        spec = BimodalLength(16, 64, 0.6)
        assert spec.mean() == pytest.approx(0.6 * 16 + 0.4 * 64)

    def test_fraction_statistics(self, rng):
        spec = BimodalLength(16, 64, 0.6)
        shorts = sum(1 for _ in range(5000) if spec.draw(rng) == 16)
        assert 0.55 < shorts / 5000 < 0.65

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            BimodalLength(16, 64, 1.5)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            BimodalLength(0, 64, 0.5)


class TestUniformRange:
    def test_within_bounds(self, rng):
        spec = UniformLength(4, 10)
        for _ in range(200):
            assert 4 <= spec.draw(rng) <= 10

    def test_mean(self):
        assert UniformLength(4, 10).mean() == 7.0

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            UniformLength(10, 4)


class TestPaperNames:
    @pytest.mark.parametrize(
        "name,expected_mean",
        [("s", 16), ("l", 64), ("L", 256), ("sl", 35.2)],
    )
    def test_paper_shorthands(self, name, expected_mean):
        assert make_length_spec(name).mean() == pytest.approx(expected_mean)

    def test_paper_sizes_documented(self):
        assert set(PAPER_SIZES) == {"s", "l", "L", "sl"}

    def test_explicit_specs(self):
        assert make_length_spec("fixed", flits=7).mean() == 7
        assert make_length_spec("bimodal", short=2, long=4,
                                short_fraction=0.5).mean() == 3
        assert make_length_spec("uniform", low=2, high=4).mean() == 3

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown length spec"):
            make_length_spec("xl")

    @given(st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=30)
    def test_fixed_mean_equals_value(self, flits):
        assert FixedLength(flits).mean() == flits
