"""Tests for the workload glue (rate conversion, generation draws)."""

import random

import pytest

from repro.network.config import TrafficConfig
from repro.network.topology import KAryNCube
from repro.traffic.workload import Workload


@pytest.fixture
def topo():
    return KAryNCube(8, 2)


def make_workload(topo, rate=0.32, lengths="s", pattern="uniform", **params):
    config = TrafficConfig(
        pattern=pattern,
        pattern_params=params,
        lengths=lengths,
        injection_rate=rate,
    )
    return Workload(config, topo)


class TestGenerationProbability:
    def test_rate_divided_by_mean_length(self, topo):
        wl = make_workload(topo, rate=0.32, lengths="s")
        assert wl.generation_probability == pytest.approx(0.32 / 16)

    def test_sl_uses_mixture_mean(self, topo):
        wl = make_workload(topo, rate=0.352, lengths="sl")
        assert wl.generation_probability == pytest.approx(0.352 / 35.2)

    def test_rate_beyond_one_message_per_cycle_rejected(self, topo):
        with pytest.raises(ValueError, match="exceeds one message per cycle"):
            make_workload(topo, rate=20.0, lengths="s")

    def test_zero_rate_never_generates(self, topo):
        wl = make_workload(topo, rate=0.0)
        rng = random.Random(1)
        assert all(wl.maybe_generate(0, rng) is None for _ in range(100))


class TestMaybeGenerate:
    def test_returns_dest_and_length(self, topo):
        wl = make_workload(topo, rate=16.0 * 0.9, lengths="s")  # p = 0.9
        rng = random.Random(3)
        draws = [wl.maybe_generate(4, rng) for _ in range(50)]
        hits = [d for d in draws if d is not None]
        assert hits
        for dest, length in hits:
            assert dest != 4
            assert length == 16

    def test_generation_rate_statistics(self, topo):
        wl = make_workload(topo, rate=1.6, lengths="s")  # p = 0.1
        rng = random.Random(4)
        hits = sum(
            1 for _ in range(10_000) if wl.maybe_generate(0, rng) is not None
        )
        assert 0.08 < hits / 10_000 < 0.12

    def test_fixed_point_sources_silent(self, topo):
        wl = make_workload(topo, rate=15.9, lengths="s", pattern="butterfly")
        rng = random.Random(5)
        # Node 0 is a butterfly fixed point (MSB == LSB == 0).
        assert all(wl.maybe_generate(0, rng) is None for _ in range(50))

    def test_describe_mentions_pattern_and_rate(self, topo):
        wl = make_workload(topo, rate=0.25)
        text = wl.describe()
        assert "uniform" in text
        assert "0.25" in text
