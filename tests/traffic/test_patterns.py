"""Tests for traffic destination patterns."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.topology import KAryNCube
from repro.traffic.patterns import (
    BitReversalPattern,
    ButterflyPattern,
    ComplementPattern,
    HotSpotPattern,
    LocalityPattern,
    PerfectShufflePattern,
    TransposePattern,
    UniformPattern,
    make_pattern,
    pattern_names,
)


@pytest.fixture(scope="module")
def topo():
    return KAryNCube(8, 2)  # 64 = 2**6 nodes


@pytest.fixture
def rng():
    return random.Random(99)


class TestFactory:
    def test_all_names_constructible(self, topo):
        for name in pattern_names():
            assert make_pattern(name, topo).name == name

    def test_unknown_name_raises(self, topo):
        with pytest.raises(ValueError, match="unknown traffic pattern"):
            make_pattern("zipf", topo)

    def test_params_forwarded(self, topo):
        pattern = make_pattern("hot-spot", topo, fraction=0.25)
        assert pattern.fraction == 0.25


class TestUniform:
    def test_never_self(self, topo, rng):
        pattern = UniformPattern(topo)
        for source in range(topo.num_nodes):
            for _ in range(20):
                assert pattern.destination(source, rng) != source

    def test_covers_all_other_nodes(self, topo, rng):
        pattern = UniformPattern(topo)
        seen = {pattern.destination(0, rng) for _ in range(4000)}
        assert seen == set(range(1, topo.num_nodes))

    def test_roughly_uniform(self, topo, rng):
        pattern = UniformPattern(topo)
        counts = [0] * topo.num_nodes
        n = 63 * 400
        for _ in range(n):
            counts[pattern.destination(17, rng)] += 1
        expect = n / 63
        nonself = [c for i, c in enumerate(counts) if i != 17]
        assert min(nonself) > expect * 0.6
        assert max(nonself) < expect * 1.4

    def test_full_sending_fraction(self, topo):
        assert UniformPattern(topo).sending_fraction() == 1.0


class TestLocality:
    def test_destinations_within_radius(self, topo, rng):
        pattern = LocalityPattern(topo, radius=1)
        for _ in range(300):
            dest = pattern.destination(0, rng)
            dcoords = topo.coords(dest)
            for c in dcoords:
                assert c in (0, 1, 7)  # within +-1 with wraparound

    def test_never_self(self, topo, rng):
        pattern = LocalityPattern(topo, radius=2)
        for _ in range(300):
            assert pattern.destination(9, rng) != 9

    def test_radius_validation(self, topo):
        with pytest.raises(ValueError):
            LocalityPattern(topo, radius=0)
        with pytest.raises(ValueError):
            LocalityPattern(topo, radius=4)  # 2*4+1 > radix 8

    def test_mean_distance_small(self, topo, rng):
        pattern = LocalityPattern(topo, radius=1)
        dists = [
            topo.distance(5, pattern.destination(5, rng)) for _ in range(500)
        ]
        assert sum(dists) / len(dists) < 2.0


class TestBitPermutations:
    @pytest.mark.parametrize(
        "cls",
        [BitReversalPattern, PerfectShufflePattern, ButterflyPattern,
         TransposePattern, ComplementPattern],
    )
    def test_permutation_is_bijective(self, cls, topo):
        pattern = cls(topo)
        images = {pattern.permute(i) for i in range(topo.num_nodes)}
        assert images == set(range(topo.num_nodes))

    def test_bit_reversal_example(self, topo):
        pattern = BitReversalPattern(topo)
        # 6 bits: 0b000001 -> 0b100000
        assert pattern.permute(1) == 32
        assert pattern.permute(32) == 1

    def test_perfect_shuffle_rotates(self, topo):
        pattern = PerfectShufflePattern(topo)
        # 0b100000 rotl1 -> 0b000001
        assert pattern.permute(32) == 1
        assert pattern.permute(1) == 2

    def test_butterfly_swaps_msb_lsb(self, topo):
        pattern = ButterflyPattern(topo)
        assert pattern.permute(1) == 32
        assert pattern.permute(33) == 33  # MSB == LSB: fixed point

    def test_complement_is_involution(self, topo):
        pattern = ComplementPattern(topo)
        for i in range(0, 64, 5):
            assert pattern.permute(pattern.permute(i)) == i

    def test_fixed_points_return_none(self, topo, rng):
        pattern = BitReversalPattern(topo)
        palindromes = [i for i in range(64) if pattern.permute(i) == i]
        assert palindromes  # 6-bit palindromes exist
        for i in palindromes:
            assert pattern.destination(i, rng) is None

    def test_butterfly_sending_fraction_half(self, topo):
        assert ButterflyPattern(topo).sending_fraction() == 0.5

    def test_bit_reversal_sending_fraction(self, topo):
        # 6-bit palindromes: 2**3 = 8 of 64 -> 87.5% send.
        assert BitReversalPattern(topo).sending_fraction() == pytest.approx(0.875)

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError, match="power-of-two"):
            BitReversalPattern(KAryNCube(3, 2))

    @given(st.integers(min_value=0, max_value=63))
    @settings(max_examples=64)
    def test_reversal_is_involution(self, index):
        pattern = BitReversalPattern(KAryNCube(8, 2))
        assert pattern.permute(pattern.permute(index)) == index


class TestHotSpot:
    def test_hot_fraction_respected(self, topo, rng):
        pattern = HotSpotPattern(topo, fraction=0.3)
        hot = pattern.hot_node
        hits = sum(
            1 for _ in range(4000) if pattern.destination(0, rng) == hot
        )
        # 30% explicit + ~1/63 background uniform hits.
        assert 0.25 < hits / 4000 < 0.38

    def test_default_hot_node_center(self, topo):
        pattern = HotSpotPattern(topo)
        assert topo.coords(pattern.hot_node) == (4, 4)

    def test_hot_node_never_targets_itself_via_hotspot(self, topo, rng):
        pattern = HotSpotPattern(topo, fraction=0.99)
        for _ in range(100):
            assert pattern.destination(pattern.hot_node, rng) != pattern.hot_node

    def test_fraction_validation(self, topo):
        with pytest.raises(ValueError):
            HotSpotPattern(topo, fraction=0.0)
        with pytest.raises(ValueError):
            HotSpotPattern(topo, fraction=1.0)

    def test_explicit_hot_node(self, topo):
        pattern = HotSpotPattern(topo, hot_node=7)
        assert pattern.hot_node == 7
