"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator


def small_config(**overrides) -> SimulationConfig:
    """A fast 16-node torus configuration for unit-level simulation tests."""
    config = SimulationConfig(
        radix=4,
        dimensions=2,
        warmup_cycles=100,
        measure_cycles=400,
        seed=123,
    )
    config.traffic.injection_rate = 0.1
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


@pytest.fixture
def config() -> SimulationConfig:
    return small_config()


@pytest.fixture
def sim(config) -> Simulator:
    return Simulator(config)


@pytest.fixture
def run_sim():
    """Factory fixture: build, run and return (simulator, stats)."""

    def _run(config: SimulationConfig):
        simulator = Simulator(config)
        stats = simulator.run()
        return simulator, stats

    return _run
