"""Shared fixtures and hypothesis profiles for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator

# Property-test effort is profile-switched via HYPOTHESIS_PROFILE:
# "dev" (default) keeps the suite fast for local iteration; "ci" runs
# more examples and derandomizes so CI failures are reproducible runs,
# not luck of the per-run seed.
settings.register_profile(
    "ci",
    max_examples=200,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "dev",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def small_config(**overrides) -> SimulationConfig:
    """A fast 16-node torus configuration for unit-level simulation tests."""
    config = SimulationConfig(
        radix=4,
        dimensions=2,
        warmup_cycles=100,
        measure_cycles=400,
        seed=123,
    )
    config.traffic.injection_rate = 0.1
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


@pytest.fixture
def config() -> SimulationConfig:
    return small_config()


@pytest.fixture
def sim(config) -> Simulator:
    return Simulator(config)


@pytest.fixture
def run_sim():
    """Factory fixture: build, run and return (simulator, stats)."""

    def _run(config: SimulationConfig):
        simulator = Simulator(config)
        stats = simulator.run()
        return simulator, stats

    return _run
