"""The do-nothing detector.

Used when routing is deadlock-free (dimension-order baseline) or when an
experiment wants pure network behaviour with the ground-truth analyzer as
the only deadlock observer.
"""

from __future__ import annotations

from repro.core.detector import DeadlockDetector


class NoDetection(DeadlockDetector):
    """Never marks anything; all hooks are inherited no-ops."""

    name = "none"

    def __init__(self, threshold: int = 1) -> None:
        super().__init__(threshold)

    def describe(self) -> str:
        return "none"
