"""Crude timeout-based detection mechanisms (the paper's Section 1 survey).

Three classic heuristics are provided as baselines:

* :class:`HeaderBlockedTimeout` — Disha-style (Anjan & Pinkston [2, 3]):
  a message is presumed deadlocked when its header has been continuously
  blocked at a router for more than the threshold.
* :class:`SourceAgeTimeout` — Reeves, Gehringer & Chandiramani [16]: a
  message is presumed deadlocked when the time since it was injected
  exceeds the threshold.
* :class:`InjectionStallTimeout` — Kim, Liu & Chien's compressionless
  routing criterion [10]: deadlock is presumed when the time since the
  *last flit was injected at the source* exceeds the threshold (only
  meaningful while the message still has flits at the source).

The paper reports that its previous mechanism (PDM) already beat crude
timeouts by roughly 10x in false detections, and NDM gains another 10x.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.detector import DeadlockDetector
from repro.network.message import Message
from repro.network.router import Router
from repro.network.types import MessageStatus


class HeaderBlockedTimeout(DeadlockDetector):
    """Mark a message once its header has been blocked for > threshold."""

    name = "timeout"
    #: Pure function of the blocking instant — trivially shareable.
    batch_shareable = True

    def on_blocked_attempt(
        self, message: Message, router: Router, cycle: int, first_attempt: bool
    ) -> bool:
        if message.blocked_since is None:
            return False
        return cycle - message.blocked_since > self.threshold

    def blocked_deadline(self, message: Message, cycle: int) -> Optional[int]:
        """The timeout depends only on the blocking instant — exact."""
        if message.blocked_since is None:
            return None
        return message.blocked_since + self.threshold + 1


class SourceAgeTimeout(DeadlockDetector):
    """Mark a message once its time-in-network exceeds the threshold.

    Checked once per cycle over the active messages, as the original
    proposal detects at the source rather than at the blocked header.  Only
    in-network, not-yet-marked messages are eligible.
    """

    name = "source-age"
    needs_periodic_check = True
    #: Pure function of the injection instant — trivially shareable.
    batch_shareable = True

    def periodic_check(
        self, active_messages: Iterable[Message], cycle: int
    ) -> List[Message]:
        threshold = self.threshold
        marked = []
        for m in active_messages:
            if (
                m.status is MessageStatus.IN_NETWORK
                and not m.marked_deadlocked
                and m.inject_cycle is not None
                and cycle - m.inject_cycle > threshold
            ):
                marked.append(m)
        return marked


class InjectionStallTimeout(DeadlockDetector):
    """Mark a message when source injection has stalled for > threshold.

    Applies only while the message still has flits waiting at the source:
    once the tail has left, the source can no longer observe the worm.
    """

    name = "injection-stall"
    needs_periodic_check = True
    #: Pure function of source-queue instants — trivially shareable.
    batch_shareable = True

    def periodic_check(
        self, active_messages: Iterable[Message], cycle: int
    ) -> List[Message]:
        threshold = self.threshold
        marked = []
        for m in active_messages:
            if (
                m.status is MessageStatus.IN_NETWORK
                and not m.marked_deadlocked
                and m.flits_at_source > 0
                and m.last_source_flit_cycle is not None
                and cycle - m.last_source_flit_cycle > threshold
            ):
                marked.append(m)
        return marked
