"""Detector registry: build a detection mechanism from a config section."""

from __future__ import annotations

from typing import Tuple

from repro.core.detector import DeadlockDetector
from repro.core.ndm import NewDetectionMechanism
from repro.core.null import NoDetection
from repro.core.hybrid import HybridDetection
from repro.core.pdm import PreviousDetectionMechanism
from repro.core.precise import PreciseNDM
from repro.core.probe import ProbeDetection
from repro.core.timeout import (
    HeaderBlockedTimeout,
    InjectionStallTimeout,
    SourceAgeTimeout,
)
from repro.network.config import DetectorConfig


def make_detector(config: DetectorConfig) -> DeadlockDetector:
    """Instantiate the mechanism named by ``config.mechanism``."""
    name = config.mechanism
    if name == NewDetectionMechanism.name:
        return NewDetectionMechanism(
            threshold=config.threshold,
            t1=config.t1,
            selective_promotion=config.selective_promotion,
        )
    if name == PreviousDetectionMechanism.name:
        return PreviousDetectionMechanism(config.threshold)
    if name == PreciseNDM.name:
        return PreciseNDM(config.threshold)
    if name == HybridDetection.name:
        return HybridDetection(
            threshold=config.threshold,
            t1=config.t1,
            selective_promotion=config.selective_promotion,
        )
    if name == ProbeDetection.name:
        return ProbeDetection(
            threshold=config.threshold,
            max_hops=config.probe_max_hops,
            max_outstanding=config.probe_max_outstanding,
        )
    if name == HeaderBlockedTimeout.name:
        return HeaderBlockedTimeout(config.threshold)
    if name == SourceAgeTimeout.name:
        return SourceAgeTimeout(config.threshold)
    if name == InjectionStallTimeout.name:
        return InjectionStallTimeout(config.threshold)
    if name == NoDetection.name:
        return NoDetection()
    raise ValueError(
        f"unknown detection mechanism {name!r}; choose from {detector_names()}"
    )


def batch_shareable(config: DetectorConfig) -> bool:
    """True when cells differing only in ``threshold`` may share one run.

    The batch backend folds many threshold cells onto a single network
    trajectory, which is sound only when detection has *zero* feedback
    into the network: NDM with the paper's simple promotion rule never
    touches routing state from its hooks, whereas the selective variant
    keeps per-threshold waiter maps and the other mechanisms carry
    per-attempt or probe state of their own.  The campaign executor
    additionally requires ``recovery == "none"`` and a fault-free
    schedule before grouping (see ``repro.network.batch.plan_batches``).
    """
    return (
        config.mechanism == NewDetectionMechanism.name
        and not config.selective_promotion
    )


def detector_names() -> Tuple[str, ...]:
    """Mechanism names accepted by :func:`make_detector`."""
    return (
        NewDetectionMechanism.name,
        PreciseNDM.name,
        HybridDetection.name,
        PreviousDetectionMechanism.name,
        ProbeDetection.name,
        HeaderBlockedTimeout.name,
        SourceAgeTimeout.name,
        InjectionStallTimeout.name,
        NoDetection.name,
    )
