"""Detector registry: build a detection mechanism from a config section."""

from __future__ import annotations

from typing import Tuple

from repro.core.detector import DeadlockDetector
from repro.core.ndm import NewDetectionMechanism
from repro.core.null import NoDetection
from repro.core.hybrid import HybridDetection
from repro.core.pdm import PreviousDetectionMechanism
from repro.core.precise import PreciseNDM
from repro.core.probe import ProbeDetection
from repro.core.timeout import (
    HeaderBlockedTimeout,
    InjectionStallTimeout,
    SourceAgeTimeout,
)
from repro.network.config import DetectorConfig

#: Mechanism name -> implementing class, in registry (report) order.
_DETECTOR_CLASSES = {
    cls.name: cls
    for cls in (
        NewDetectionMechanism,
        PreciseNDM,
        HybridDetection,
        PreviousDetectionMechanism,
        ProbeDetection,
        HeaderBlockedTimeout,
        SourceAgeTimeout,
        InjectionStallTimeout,
        NoDetection,
    )
}


def make_detector(config: DetectorConfig) -> DeadlockDetector:
    """Instantiate the mechanism named by ``config.mechanism``."""
    name = config.mechanism
    if name == NewDetectionMechanism.name:
        return NewDetectionMechanism(
            threshold=config.threshold,
            t1=config.t1,
            selective_promotion=config.selective_promotion,
        )
    if name == PreviousDetectionMechanism.name:
        return PreviousDetectionMechanism(config.threshold)
    if name == PreciseNDM.name:
        return PreciseNDM(config.threshold)
    if name == HybridDetection.name:
        return HybridDetection(
            threshold=config.threshold,
            t1=config.t1,
            selective_promotion=config.selective_promotion,
        )
    if name == ProbeDetection.name:
        return ProbeDetection(
            threshold=config.threshold,
            max_hops=config.probe_max_hops,
            max_outstanding=config.probe_max_outstanding,
        )
    if name == HeaderBlockedTimeout.name:
        return HeaderBlockedTimeout(config.threshold)
    if name == SourceAgeTimeout.name:
        return SourceAgeTimeout(config.threshold)
    if name == InjectionStallTimeout.name:
        return InjectionStallTimeout(config.threshold)
    if name == NoDetection.name:
        return NoDetection()
    raise ValueError(
        f"unknown detection mechanism {name!r}; choose from {detector_names()}"
    )


def batch_shareable(config: DetectorConfig) -> bool:
    """True when this detector cell may fold onto a shared batch run.

    The batch backend folds many campaign cells — differing in threshold
    *and* in detection mechanism — onto a single network trajectory,
    which is sound only when detection has *zero* feedback into the
    network.  Each mechanism class declares the observer property via its
    ``batch_shareable`` attribute; the one config-level carve-out is
    NDM's selective promotion, whose per-run waiter maps diverge once any
    cell marks.  The campaign executor additionally requires
    ``recovery == "none"`` and a fault-free schedule before grouping (see
    ``repro.network.batch.plan_batches``).
    """
    cls = _DETECTOR_CLASSES.get(config.mechanism)
    if cls is None or not cls.batch_shareable:
        return False
    if config.mechanism == NewDetectionMechanism.name and config.selective_promotion:
        return False
    return True


def batch_shareable_names() -> Tuple[str, ...]:
    """Mechanism names whose cells the batch backend may fold."""
    return tuple(
        name for name, cls in _DETECTOR_CLASSES.items() if cls.batch_shareable
    )


def detector_names() -> Tuple[str, ...]:
    """Mechanism names accepted by :func:`make_detector`."""
    return tuple(_DETECTOR_CLASSES)
