"""PDM — the authors' previous detection mechanism (paper Section 2).

One counter and one inactivity flag (``IF``) per physical output channel
(paper Fig. 1).  The counter counts cycles since the last flit crossed the
channel; ``IF`` is set when it exceeds the threshold.  A blocked message is
presumed deadlocked when *every* feasible output channel has its ``IF`` set
— i.e. all alternatives have been inactive for a full timeout period.

Drawbacks the paper demonstrates (and our benchmarks reproduce):

* the useful threshold grows with message length — a blocked message's
  channels stay inactive for as long as the message ahead takes to drain;
* every message in a deadlocked cycle marks itself, so recovery is invoked
  once per member instead of once per cycle of blocked messages;
* trees of blocked-but-not-deadlocked messages (paper Fig. 2) are falsely
  detected.
"""

from __future__ import annotations

from typing import Optional

from repro.core.detector import DeadlockDetector
from repro.network.message import Message
from repro.network.router import Router


class PreviousDetectionMechanism(DeadlockDetector):
    """Martínez, López, Duato & Pinkston (ICPP 1997) channel-activity flags."""

    name = "pdm"
    #: Stateless per attempt: detection reads only channel inactivity, so a
    #: pdm cell can observe a trajectory shared with other mechanisms.
    batch_shareable = True

    def on_blocked_attempt(
        self, message: Message, router: Router, cycle: int, first_attempt: bool
    ) -> bool:
        # The mechanism is stateless across attempts: every time a blocked
        # message is re-routed it checks the IF flag of each alternative.
        threshold = self.threshold
        for pc in message.feasible_pcs:
            if pc.inactivity(cycle) <= threshold:
                return False
        return True

    def blocked_deadline(self, message: Message, cycle: int) -> Optional[int]:
        """All-IF detection first holds at the latest per-channel crossing."""
        threshold = self.threshold
        deadline = cycle + 1
        for pc in message.feasible_pcs:
            d = pc.inactivity_deadline(threshold)
            if d is None:
                return None
            if d > deadline:
                deadline = d
        return deadline
