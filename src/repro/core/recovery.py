"""Deadlock recovery schemes.

Once the detection mechanism marks a message, a recovery mechanism must
actually break the (presumed) deadlock.  The paper's context is the
software-based **progressive** recovery of Martínez et al. [13]: the
deadlocked packet is absorbed by the node holding its header and forwarded
from there, freeing every channel it held, without killing it.  The classic
**regressive** alternative (abort-and-retry, e.g. compressionless routing
[10]) kills the worm and re-injects it at the original source.

Both schemes are modelled at the message level: the worm's virtual channels
are released immediately (absorption into node-local software buffers is
assumed to proceed off the critical path) and the message re-enters the
network through an injection port — at the header node for progressive
recovery (with priority and exempt from the injection limitation) and at the
original source for regressive recovery (as a normal new message).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.network.message import Message

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.network.simulator import Simulator


class RecoveryManager:
    """Strategy interface invoked when a message is marked as deadlocked."""

    name = "abstract"

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim

    def recover(self, message: Message, cycle: int) -> None:
        raise NotImplementedError


class ProgressiveRecovery(RecoveryManager):
    """Absorb the worm at the header node and deliver via recovery lane [13].

    The software-based scheme absorbs the deadlocked packet into node
    memory (off the critical path) and delivers it through dedicated
    recovery resources with guaranteed forward progress.  We model that
    lane as an out-of-band path with latency

        remaining_distance + message_length + overhead

    cycles, which preserves the property that recovery bandwidth is scarce
    compared to normal delivery (recovered messages are slow) without
    letting them re-enter — and re-congest — the network.
    """

    name = "progressive"

    #: Fixed software-handling overhead added to every recovery, in cycles
    #: (interrupt + buffer management in [13]'s software scheme).
    software_overhead = 16

    def recover(self, message: Message, cycle: int) -> None:
        node = message.header_router()
        if node is None:
            node = message.inject_node
        self.sim.free_worm(message, cycle)
        message.recoveries += 1
        distance = self.sim.topology.distance(node, message.dest)
        ready = cycle + distance + message.length + self.software_overhead
        self.sim.schedule_recovery_delivery(message, ready)
        self.sim.stats.recoveries += 1
        if self.sim.measuring:
            self.sim.stats.recoveries_measured += 1


class ProgressiveReinjection(RecoveryManager):
    """Absorb the worm at the header node and re-inject it from there.

    Variant of progressive recovery in which the absorbed packet re-enters
    the network as a normal message from the node that detected it (with
    injection priority and exempt from the injection limitation).  Under
    deep saturation the re-injected message can block and be re-detected,
    which is why :class:`ProgressiveRecovery` is the default.
    """

    name = "progressive-reinject"

    def recover(self, message: Message, cycle: int) -> None:
        node = message.header_router()
        if node is None:
            node = message.inject_node
        self.sim.free_worm(message, cycle)
        message.recoveries += 1
        message.is_recovery_reinjection = True
        message.reset_for_reinjection(node, cycle)
        self.sim.enqueue_recovery(message, node)
        self.sim.stats.recoveries += 1
        if self.sim.measuring:
            self.sim.stats.recoveries_measured += 1


class RegressiveRecovery(RecoveryManager):
    """Abort-and-retry: kill the worm, re-inject at the original source."""

    name = "regressive"

    def recover(self, message: Message, cycle: int) -> None:
        self.sim.free_worm(message, cycle)
        message.retries += 1
        message.reset_for_reinjection(message.source, cycle)
        self.sim.enqueue_source(message, message.source, front=False)
        self.sim.stats.aborts += 1
        if self.sim.measuring:
            self.sim.stats.aborts_measured += 1


class NoRecovery(RecoveryManager):
    """Leave marked messages in place (passive measurement runs).

    The message stays blocked holding its channels; a true deadlock will
    persist until the simulation ends.  Useful to study raw detection
    behaviour without the feedback recovery introduces.
    """

    name = "none"

    def recover(self, message: Message, cycle: int) -> None:
        # The mark itself was already recorded by the simulator.
        return


def make_recovery(name: str, sim: "Simulator") -> RecoveryManager:
    """Instantiate a recovery scheme by config name."""
    schemes = {
        ProgressiveRecovery.name: ProgressiveRecovery,
        ProgressiveReinjection.name: ProgressiveReinjection,
        RegressiveRecovery.name: RegressiveRecovery,
        NoRecovery.name: NoRecovery,
    }
    try:
        return schemes[name](sim)
    except KeyError:
        raise ValueError(
            f"unknown recovery scheme {name!r}; choose from {sorted(schemes)}"
        ) from None
