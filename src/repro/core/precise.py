"""NDM-precise: the idealized form of the paper's tree-root heuristic.

The NDM approximates "is the message I am waiting on the root of the tree
of blocked messages?" with one bit of channel-activity history (the I
flag) shared per physical channel.  This variant computes the same
predicate exactly, with per-message state:

    A blocked message is *root-adjacent* iff, at some routing attempt
    since it blocked, one of the virtual channels it can use was held by a
    message whose header was not blocked.

Detection then requires root-adjacency plus the ordinary all-DT condition.
This captures the paper's intent (Figures 2-5 behave identically) without
the I-flag's two noise sources: per-physical-channel sharing of the G/P
bit between up to V waiting headers, and activity/blockedness aliasing on
multiplexed channels.  Comparing ``ndm`` against ``ndm-precise`` in the
ablation bench quantifies how much detection accuracy the one-bit hardware
approximation costs on this substrate.

It remains a *local* mechanism in spirit — a router could track holder
blockedness via one extra flow-control bit per virtual channel — but it is
not what the paper's hardware (Fig. 6) implements, so it is shipped as an
ablation, not as the reproduction target.
"""

from __future__ import annotations

from typing import Dict

from repro.core.detector import DeadlockDetector
from repro.network.message import Message
from repro.network.router import Router


class PreciseNDM(DeadlockDetector):
    """Witness-based root-adjacency detection (idealized NDM)."""

    name = "ndm-precise"

    #: Every attempt may record a witness (per-attempt side effect), so
    #: blocked messages must keep re-routing each cycle under both engines.
    can_sleep_blocked = False

    def __init__(self, threshold: int) -> None:
        super().__init__(threshold)
        # message id -> cycle at which it witnessed a non-blocked holder
        # (None while it has not).
        self._witness: Dict[int, object] = {}

    def on_blocked_attempt(
        self, message: Message, router: Router, cycle: int, first_attempt: bool
    ) -> bool:
        witness = self._witness
        if first_attempt:
            witness[message.id] = None
        if witness[message.id] is None and self._sees_advancing_holder(message):
            witness[message.id] = cycle
        witnessed = witness[message.id]
        if witnessed is None:
            return False
        t2 = self.threshold
        # The witnessed root's progress resets the hardware counter; a
        # granted-but-not-yet-moved holder has not transmitted a flit, so
        # detection needs a full quiet t2 *after* the witness as well.
        if cycle - witnessed <= t2:
            return False
        for pc in message.feasible_pcs:
            if pc.inactivity(cycle) <= t2:
                return False
        return True

    @staticmethod
    def _sees_advancing_holder(message: Message) -> bool:
        for pc in message.feasible_pcs:
            for vc in pc.vcs:
                occupant = vc.occupant
                if occupant is not None and not occupant.is_blocked():
                    return True
        return False

    def on_message_routed(self, message: Message, cycle: int) -> None:
        self._witness.pop(message.id, None)

    def on_message_removed(self, message: Message, cycle: int) -> None:
        self._witness.pop(message.id, None)
