"""Read-only views of the detection hardware flags.

The simulator stores only ``last_flit_cycle`` / ``active_since`` per
physical channel (see ``repro.network.channel``); the paper's I, DT and IF
flags are *derived* state.  These views materialize them for tests,
examples and traces, so assertions can be written in the paper's own
vocabulary::

    view = ChannelFlagView(pc, t1=1, t2=32)
    assert view.i_flag(cycle) and not view.dt_flag(cycle)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.channel import PhysicalChannel
from repro.network.types import GPState


@dataclass(frozen=True)
class ChannelFlagView:
    """NDM flag view of one physical channel (paper Fig. 6).

    Args:
        pc: the physical channel to inspect.
        t1: inactivity threshold for the I flag (paper: 1 cycle).
        t2: inactivity threshold for the DT flag (the tuned t2).
    """

    pc: PhysicalChannel
    t1: int = 1
    t2: int = 32

    def counter(self, cycle: int) -> int:
        """Value of the paper's inactivity counter at ``cycle``."""
        return self.pc.inactivity(cycle)

    def i_flag(self, cycle: int) -> bool:
        """I flag: inactive longer than t1 while occupied."""
        return self.pc.inactivity(cycle) > self.t1

    def dt_flag(self, cycle: int) -> bool:
        """DT flag: inactive longer than t2 while occupied."""
        return self.pc.inactivity(cycle) > self.t2

    def gp_flag(self) -> GPState:
        """The channel's Generate/Propagate flag (input-channel role)."""
        return self.pc.gp


@dataclass(frozen=True)
class PDMFlagView:
    """PDM flag view of one physical channel (paper Fig. 1).

    The previous mechanism has a single inactivity flag (IF) per output
    channel, equivalent to the NDM's DT flag.
    """

    pc: PhysicalChannel
    threshold: int = 32

    def counter(self, cycle: int) -> int:
        return self.pc.inactivity(cycle)

    def if_flag(self, cycle: int) -> bool:
        """IF flag: inactive longer than the detection threshold."""
        return self.pc.inactivity(cycle) > self.threshold
