"""Edge-chasing probe detector (the paper's "probe-style" competitor).

The paper dismisses probe-based distributed deadlock detection as costly;
this detector fields an honest member of that family so the claim can be
graded under the same fault-aware conformance oracle as ndm/pdm/timeout.
The mechanism is two-layered:

* **launch cadence** (this module): every blocked header arms a launch
  deadline ``blocked_since + threshold``; each time the deadline passes
  with the header still blocked in the same episode, the detector starts
  (or refreshes) an edge-chasing probe session and re-arms one threshold
  later.  The threshold is the ``t2``-analog the adaptive controller in
  :mod:`repro.core.adaptive` tunes.
* **probe transport** (:mod:`repro.network.probes`): sessions advance one
  hop per cycle in the simulator's dedicated probe phase; a probe
  returning to its initiator proves a wait-graph cycle and elects the
  youngest message on its path as recovery victim.

Everything is deterministic and engine-agnostic: the launch heap is fed
by *first* blocked attempts only (which both engines execute identically)
and drained by cycle number in the probe phase; no hook ever touches the
simulator RNG, so scan/event behavioural digests stay bit-identical.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.core.detector import DeadlockDetector
from repro.network.message import Message
from repro.network.probes import ProbeTransport
from repro.network.router import Router
from repro.network.types import MessageStatus


class ProbeDetection(DeadlockDetector):
    """Edge-chasing probe detector with a tunable launch threshold."""

    name = "probe"
    has_probe_phase = True
    #: Probes live entirely out-of-band (dedicated phase, no RNG, no
    #: routing-state writes), so the transport provably never perturbs
    #: the physical trajectory; the only marking-dependent reads go
    #: through the :meth:`_marked` seam, which the batch backend narrows
    #: to one cell's pending bit.
    batch_shareable = True

    def __init__(
        self,
        threshold: int,
        max_hops: int = 64,
        max_outstanding: int = 64,
    ) -> None:
        super().__init__(threshold)
        self.transport = ProbeTransport(max_hops, max_outstanding)
        #: (launch_cycle, seq, message, episode) min-heap.  Entries are
        #: validated lazily at pop time: the message must still be in the
        #: network, blocked, unmarked, and in the same blocking episode
        #: (``blocked_since`` unchanged) for the launch to happen.
        self._launch_heap: List[Tuple[int, int, Message, int]] = []
        self._launch_seq = 0

    # ------------------------------------------------------------------
    # Router-side hooks
    # ------------------------------------------------------------------
    def on_blocked_attempt(
        self, message: Message, router: Router, cycle: int, first_attempt: bool
    ) -> bool:
        """Arm the launch deadline on the episode's first failed attempt.

        Never detects inline — detection happens exclusively in the probe
        phase — and has no side effects on subsequent attempts, so blocked
        headers may sleep under the event engine (``can_sleep_blocked``).
        """
        if first_attempt:
            self._arm(message, cycle + self.threshold)
        return False

    def blocked_deadline(self, message: Message, cycle: int) -> Optional[int]:
        """Next launch-cadence point strictly after ``cycle``.

        Pure arithmetic on the episode start, so the event engine's wakeup
        heap tracks exactly the cycles at which the probe phase may act on
        this message; detection itself still happens out-of-band, making
        the wakeup a no-op routing re-attempt that keeps both engines'
        attempt streams aligned with the cadence.
        """
        since = message.blocked_since
        if since is None:
            return cycle + self.threshold
        period = self.threshold
        return since + period * ((cycle - since) // period + 1)

    # ------------------------------------------------------------------
    # Probe phase
    # ------------------------------------------------------------------
    def probe_phase(self, cycle: int) -> List[Message]:
        """One out-of-band hop for every in-flight probe, plus launches."""
        transport = self.transport
        victims = transport.advance(cycle)
        heap = self._launch_heap
        in_network = MessageStatus.IN_NETWORK
        while heap and heap[0][0] <= cycle:
            _, _, message, episode = heapq.heappop(heap)
            if (
                message.status is not in_network
                or self._marked(message)
                or message.blocked_since != episode
                or not message.is_blocked()
            ):
                continue  # episode over: the cadence entry is stale
            self._arm(message, cycle + self.threshold)
            if transport.has_session(message.id):
                continue  # session already chasing; keep the cadence alive
            deadend = transport.start_session(message, cycle)
            if deadend is not None:
                victims.append(deadend)
        self._flush_counters()
        return victims

    def _marked(self, message: Message) -> bool:
        """Is ``message`` already detected *from this detector's view*?

        Seam for the batch backend: in a shared multi-cell run nothing is
        globally marked, so the per-cell probe units override this (and
        its transport twin) to consult the cell's pending bit instead.
        """
        return message.marked_deadlocked

    def _arm(self, message: Message, launch_cycle: int) -> None:
        blocked_since = message.blocked_since
        episode = blocked_since if blocked_since is not None else -1
        self._launch_seq += 1
        heapq.heappush(
            self._launch_heap, (launch_cycle, self._launch_seq, message, episode)
        )

    def _flush_counters(self) -> None:
        """Mirror transport counters into the run's behavioural stats."""
        stats = self.sim.stats
        transport = self.transport
        stats.probe_launches = transport.launches
        stats.probe_hops = transport.hops
        stats.probe_cycle_detections = transport.cycle_detections
        stats.probe_deadend_detections = transport.deadend_detections
        stats.probe_dropped_progress = transport.dropped_progress
        stats.probe_dropped_dedupe = transport.dropped_dedupe
        stats.probe_dropped_election = transport.dropped_election
        stats.probe_dropped_hops = transport.dropped_hops
        stats.probe_dropped_overflow = transport.dropped_overflow
        stats.probe_peak_outstanding = transport.peak_outstanding

    def describe(self) -> str:
        return (
            f"{self.name}(threshold={self.threshold}, "
            f"max_hops={self.transport.max_hops}, "
            f"max_outstanding={self.transport.max_outstanding})"
        )
