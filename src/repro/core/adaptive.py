"""Adaptive threshold controllers (closed-loop ``t2`` tuning).

The paper claims the optimal inactivity threshold is essentially
workload-independent; this module supplies the machinery to *test* that
claim: a controller that tunes a detector's launch/detection threshold
from observed oracle feedback (false positives, misses, detection
latency) between campaign cells, walking a discrete threshold ladder by
steepest descent until it sits in a local cost minimum.

The control loop itself lives in :mod:`repro.faults.adaptive` (it needs
the conformance harness); this module is pure state and policy so it can
be unit-tested without running simulations:

* :class:`AdaptiveThresholdController` — accumulates per-threshold
  conformance feedback and proposes the next threshold to evaluate.
* :class:`AdaptiveTimeout` / :class:`AdaptiveProbe` — the family members
  the issue calls for, binding the controller to a detector mechanism
  (the crude header-blocked timeout and the edge-chasing probe detector).

The proposal policy is deliberately simple and fully deterministic:
evaluate the current rung, then each unevaluated neighbour, then move to
a strictly cheaper neighbour; when neither neighbour is strictly cheaper
the controller has **converged** and :meth:`propose` returns ``None``.
On a unimodal cost curve this lands within one rung of the best fixed
threshold — exactly the acceptance bound the experiments record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Type

#: Default threshold ladder: powers of two spanning the regimes the
#: conformance harness exercises (quick configs use threshold 16).
DEFAULT_LADDER: Tuple[int, ...] = (4, 8, 16, 32, 64, 128)


@dataclass
class ThresholdScore:
    """Accumulated oracle feedback for one threshold rung."""

    cells: int = 0
    false_positives: int = 0
    missed: int = 0
    latency_sum: int = 0
    latency_count: int = 0

    def add(self, conformance: Mapping[str, Any]) -> None:
        """Fold one ``SimulationStats.fault_conformance()`` dict in."""
        self.cells += 1
        self.false_positives += int(conformance["false_positives"])
        self.missed += int(conformance["missed"])
        self.latency_sum += int(conformance["latency_sum"])
        self.latency_count += int(conformance["latency_count"])

    def latency_mean(self) -> float:
        if self.latency_count == 0:
            return 0.0
        return self.latency_sum / self.latency_count


class AdaptiveThresholdController:
    """Steepest-descent threshold tuner over a discrete ladder.

    The driving loop alternates ``threshold = propose()`` with
    ``observe(threshold, conformance)`` until ``propose()`` returns
    ``None`` (converged) or the evaluation budget runs out.  Feedback for
    a rung accumulates across observations, so re-visiting a rung under a
    second traffic regime refines its score instead of replacing it.
    """

    #: Detector mechanism this controller tunes (subclasses bind it).
    mechanism = "abstract"

    def __init__(
        self,
        ladder: Sequence[int] = DEFAULT_LADDER,
        fp_weight: float = 1.0,
        miss_weight: float = 100.0,
        latency_weight: float = 0.05,
        start_index: Optional[int] = None,
    ) -> None:
        if not ladder:
            raise ValueError("threshold ladder must not be empty")
        if sorted(set(ladder)) != list(ladder):
            raise ValueError(
                f"threshold ladder must be strictly increasing, got {ladder!r}"
            )
        self.ladder: Tuple[int, ...] = tuple(ladder)
        #: Cost weights: a miss (false negative) is catastrophic relative
        #: to a false alarm; latency breaks ties between clean rungs.
        self.fp_weight = fp_weight
        self.miss_weight = miss_weight
        self.latency_weight = latency_weight
        self.index = (
            start_index if start_index is not None else len(self.ladder) // 2
        )
        if not 0 <= self.index < len(self.ladder):
            raise ValueError(
                f"start_index {self.index} outside ladder of "
                f"{len(self.ladder)} rungs"
            )
        self.scores: Dict[int, ThresholdScore] = {}
        #: Evaluation order, for reports (thresholds as proposed).
        self.history: List[int] = []

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def observe(self, threshold: int, conformance: Mapping[str, Any]) -> None:
        """Record one conformance verdict obtained at ``threshold``."""
        if threshold not in self.ladder:
            raise ValueError(
                f"threshold {threshold} is not a rung of {self.ladder!r}"
            )
        self.scores.setdefault(threshold, ThresholdScore()).add(conformance)

    def cost(self, threshold: int) -> Optional[float]:
        """Weighted cost of a rung, or ``None`` if never evaluated."""
        score = self.scores.get(threshold)
        if score is None or score.cells == 0:
            return None
        return (
            self.fp_weight * score.false_positives
            + self.miss_weight * score.missed
            + self.latency_weight * score.latency_mean()
        ) / score.cells

    # ------------------------------------------------------------------
    # Proposal policy
    # ------------------------------------------------------------------
    def propose(self) -> Optional[int]:
        """Next threshold to evaluate, or ``None`` once converged.

        Order: the current rung if unevaluated, then unevaluated
        neighbours (lower first — aggressive detection is the cheaper
        mistake to measure), then a move to a strictly cheaper evaluated
        neighbour.  Equal-cost neighbours do not attract a move, so the
        walk terminates on plateaus instead of oscillating.
        """
        ladder = self.ladder
        current = ladder[self.index]
        if self.cost(current) is None:
            self.history.append(current)
            return current
        for neighbor_index in (self.index - 1, self.index + 1):
            if 0 <= neighbor_index < len(ladder):
                rung = ladder[neighbor_index]
                if self.cost(rung) is None:
                    self.history.append(rung)
                    return rung
        best_index = self.index
        best_cost = self.cost(current)
        assert best_cost is not None
        for neighbor_index in (self.index - 1, self.index + 1):
            if 0 <= neighbor_index < len(ladder):
                neighbor_cost = self.cost(ladder[neighbor_index])
                if neighbor_cost is not None and neighbor_cost < best_cost:
                    best_index = neighbor_index
                    best_cost = neighbor_cost
        if best_index == self.index:
            return None  # local minimum: converged
        self.index = best_index
        return self.propose()

    def best_threshold(self) -> int:
        """Cheapest evaluated rung (ties break toward lower thresholds)."""
        best: Optional[Tuple[float, int]] = None
        for rung in self.ladder:
            rung_cost = self.cost(rung)
            if rung_cost is None:
                continue
            if best is None or rung_cost < best[0]:
                best = (rung_cost, rung)
        if best is None:
            return self.ladder[self.index]
        return best[1]

    def converged(self) -> bool:
        """Whether the walk sits in an evaluated local cost minimum."""
        current = self.ladder[self.index]
        current_cost = self.cost(current)
        if current_cost is None:
            return False
        for neighbor_index in (self.index - 1, self.index + 1):
            if 0 <= neighbor_index < len(self.ladder):
                neighbor_cost = self.cost(self.ladder[neighbor_index])
                if neighbor_cost is None or neighbor_cost < current_cost:
                    return False
        return True

    def summary(self) -> Dict[str, Any]:
        """JSON-ready view of the controller state (reports, tests)."""
        return {
            "mechanism": self.mechanism,
            "ladder": list(self.ladder),
            "current": self.ladder[self.index],
            "best": self.best_threshold(),
            "converged": self.converged(),
            "history": list(self.history),
            "costs": {
                str(rung): self.cost(rung)
                for rung in self.ladder
                if self.cost(rung) is not None
            },
        }


class AdaptiveTimeout(AdaptiveThresholdController):
    """Tunes the crude header-blocked timeout's detection threshold."""

    mechanism = "timeout"


class AdaptiveProbe(AdaptiveThresholdController):
    """Tunes the edge-chasing probe detector's launch threshold (t2)."""

    mechanism = "probe"


#: Controller registry for the CLI (``repro faults tune --mechanism``).
CONTROLLERS: Dict[str, Type[AdaptiveThresholdController]] = {
    AdaptiveTimeout.mechanism: AdaptiveTimeout,
    AdaptiveProbe.mechanism: AdaptiveProbe,
}
