"""NDM — the paper's new deadlock detection mechanism (Section 3).

Hardware model (paper Fig. 6), mapped onto our lazy channel monitors:

* Per physical **output** channel: one inactivity counter and two derived
  flags — ``I`` (counter > t1, with t1 ≈ 1 cycle) and ``DT`` (counter > t2,
  the tuned detection threshold).  We never materialize the flags: they are
  computed from :meth:`PhysicalChannel.inactivity` on demand.
* Per physical **input** channel: one ``G/P`` (Generate/Propagate) flag,
  stored on the channel object.

Protocol, exactly as described in the paper:

1. **First unsuccessful routing attempt** of a message whose header sits at
   input channel ``in``:

   * if ``in`` still has a free virtual channel, the message cannot be the
     last arriver and cannot yet produce deadlock: ``in.gp = P``;
   * else test the ``I`` flags of all feasible outputs — if *any* is clear
     (someone is still advancing and could be the tree root) set
     ``in.gp = G``, otherwise (everyone already blocked; the current
     message is not waiting on the root) set ``in.gp = P``.

2. **Every subsequent unsuccessful attempt**: the message is presumed
   deadlocked iff *all* feasible outputs have ``DT`` set *and*
   ``in.gp == G``.

3. ``in.gp`` resets to ``P`` whenever a message occupying ``in`` is
   successfully routed or one of ``in``'s virtual channels is freed.

4. Whenever a flit transmission clears a set ``I`` flag (a previously
   stalled channel advanced: the advancing message becomes the new tree
   root, the paper's Fig. 5 situation), ``P`` flags are promoted to ``G``.
   The paper evaluates the *simple* variant — promote every flag in the
   router — and mentions a more selective promotion as an open question;
   both are implemented (``selective_promotion``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Tuple

from repro.core.detector import DeadlockDetector
from repro.network.channel import PhysicalChannel, VirtualChannel
from repro.network.message import Message
from repro.network.router import Router
from repro.network.types import GPState, PortKind

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.network.simulator import Simulator

_G = GPState.GENERATE
_P = GPState.PROPAGATE


class NewDetectionMechanism(DeadlockDetector):
    """The paper's contribution: tree-root tracking via G/P flags.

    Args:
        threshold: the ``t2`` detection threshold in cycles.
        t1: the ``I``-flag threshold (the paper uses 1 clock cycle).
        selective_promotion: promote only the inputs actually waiting on a
            reactivated output instead of every flag in the router.
    """

    name = "ndm"
    #: Simple promotion is a pure observer (hooks touch only G/P flags and
    #: wake bookkeeping); the selective variant keeps per-run waiter maps
    #: whose contents diverge once any cell marks, so the registry's
    #: config-level gate excludes ``selective_promotion`` instances.
    batch_shareable = True

    def __init__(
        self, threshold: int, t1: int = 1, selective_promotion: bool = False
    ) -> None:
        super().__init__(threshold)
        if t1 < 1:
            raise ValueError(f"t1 must be >= 1 cycle, got {t1}")
        if t1 >= threshold:
            raise ValueError(
                f"t1 ({t1}) must be well below t2 ({threshold}); the paper "
                "requires t1 << t2"
            )
        self.t1 = t1
        self.selective_promotion = selective_promotion

    # ------------------------------------------------------------------
    def attach(self, sim: "Simulator") -> None:
        """Arm every router-output channel's I-flag reset hook."""
        super().attach(sim)
        for pc in sim.channels:
            pc.gp = _P
            if pc.kind is not PortKind.INJECTION:
                # Output side of some router: arm the I-flag reset hook.
                pc.i_threshold = self.t1
                if self.selective_promotion:
                    pc.on_i_reset = self._on_i_reset
                    pc.waiters = {}
                else:
                    # The simple variant promotes a fixed set of inputs
                    # (all of the owning router's); resolve that set once
                    # here and close over it — the hook fires on every
                    # flit that clears a set I flag, so the per-event
                    # router lookup is worth removing.
                    router = sim.routers[pc.src_node]
                    pc.on_i_reset = self._simple_reset_hook(
                        tuple(router.input_pcs) + tuple(router.injection_pcs)
                    )

    # ------------------------------------------------------------------
    # Routing-attempt protocol
    # ------------------------------------------------------------------
    def on_blocked_attempt(
        self, message: Message, router: Router, cycle: int, first_attempt: bool
    ) -> bool:
        """Apply the first-attempt G/P rule or the G + all-DT detection."""
        input_pc = message.input_pc
        if input_pc is None:  # pragma: no cover - headers always hold a VC here
            return False
        if first_attempt:
            self._first_attempt(message, input_pc, cycle)
            return False
        if input_pc.gp is not _G:
            return False
        t2 = self.threshold
        for pc in message.feasible_pcs:
            if pc.inactivity(cycle) <= t2:  # some DT flag still clear
                return False
        return True

    def _first_attempt(
        self, message: Message, input_pc: PhysicalChannel, cycle: int
    ) -> None:
        if self.selective_promotion:
            self._register_waiter(message, input_pc)
        if input_pc.occupied_count < len(input_pc.vcs):
            # Some lane of the input channel is still free: this message is
            # not the last arriver and cannot yet produce deadlock.
            input_pc.gp = _P
            return
        t1 = self.t1
        for pc in message.feasible_pcs:
            if pc.inactivity(cycle) <= t1:
                # A message is advancing across this output: it may be the
                # root of the tree of blocked messages.
                self._promote(input_pc)
                return
        # Every requested channel is held by an already-blocked message:
        # the current message is not waiting on the root.
        input_pc.gp = _P

    def blocked_deadline(self, message: Message, cycle: int) -> Optional[int]:
        """Earliest cycle the G + all-DT predicate can first hold.

        With ``gp == P`` detection is impossible until a promotion (which
        wakes the parked header); with ``gp == G`` it needs every feasible
        output's inactivity to exceed t2, so the binding constraint is the
        *latest* per-channel crossing.  A channel frozen at or below t2
        pushes the deadline to "never" — its counter resumes only on a
        re-occupation, which is itself a wakeup event.
        """
        input_pc = message.input_pc
        if input_pc is None or input_pc.gp is not _G:
            return None
        t2 = self.threshold
        deadline = cycle + 1
        for pc in message.feasible_pcs:
            d = pc.inactivity_deadline(t2)
            if d is None:
                return None
            if d > deadline:
                deadline = d
        return deadline

    # ------------------------------------------------------------------
    # G/P resets and promotions
    # ------------------------------------------------------------------
    def on_message_routed(self, message: Message, cycle: int) -> None:
        """Routing success at an input channel resets its flag to P."""
        input_pc = message.input_pc
        if input_pc is not None:
            input_pc.gp = _P
        if self.selective_promotion:
            self._unregister_waiter(message)

    def on_vc_released(self, vc: VirtualChannel, cycle: int) -> None:
        """Freeing any lane of an input channel resets its flag to P."""
        vc.pc.gp = _P

    def on_message_removed(self, message: Message, cycle: int) -> None:
        """Recovery teardown: drop the worm's waiter registrations."""
        if self.selective_promotion:
            self._unregister_waiter(message)

    def _on_i_reset(self, pc: PhysicalChannel, cycle: int) -> None:
        """A stalled output channel advanced again: relabel tree roots.

        Only armed for the selective variant; the simple variant uses the
        precomputed closure from :meth:`_simple_reset_hook`.
        """
        if pc.waiters:
            for input_pc in pc.waiters:
                self._promote(input_pc)

    def _simple_reset_hook(
        self, targets: Tuple[PhysicalChannel, ...]
    ) -> Callable[[PhysicalChannel, int], None]:
        """Reset hook for the paper's simple promotion rule.

        Changes all P flags in the router that owns the output channel to
        G.  The target inputs are resolved at attach time and the
        already-G check is inlined: the hook fires on every flit that
        clears a set I flag, and most inputs are already G by then.
        """
        promote = self._promote

        def hook(pc: PhysicalChannel, cycle: int) -> None:
            for input_pc in targets:
                if input_pc.gp is not _G:
                    promote(input_pc)

        return hook

    @staticmethod
    def _promote(input_pc: PhysicalChannel) -> None:
        """Set an input channel's flag to G, waking parked headers on a
        P -> G transition (their detection predicate may now hold)."""
        if input_pc.gp is _G:
            return
        input_pc.gp = _G
        if input_pc.header_waiters:
            box = input_pc.wake_box
            for m in input_pc.header_waiters:
                if m.route_asleep:
                    m.route_asleep = False
                    box[0] -= 1

    # ------------------------------------------------------------------
    # Selective-promotion bookkeeping
    # ------------------------------------------------------------------
    def _register_waiter(self, message: Message, input_pc: PhysicalChannel) -> None:
        for pc in message.feasible_pcs:
            waiters = pc.waiters
            if waiters is None:  # pragma: no cover - armed in attach()
                continue
            waiters[input_pc] = waiters.get(input_pc, 0) + 1

    def _unregister_waiter(self, message: Message) -> None:
        if not message.first_attempt_done:
            return  # never registered (routed on the first try)
        input_pc = message.input_pc
        if input_pc is None:
            return
        for pc in message.feasible_pcs:
            waiters = pc.waiters
            if not waiters:
                continue
            count = waiters.get(input_pc, 0)
            if count <= 1:
                waiters.pop(input_pc, None)
            else:
                waiters[input_pc] = count - 1

    def describe(self) -> str:
        """Short human-readable form including the promotion variant."""
        variant = "selective" if self.selective_promotion else "simple"
        return f"ndm(t1={self.t1}, t2={self.threshold}, promotion={variant})"
