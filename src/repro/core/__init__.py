"""Deadlock detection mechanisms and recovery schemes (the paper's core)."""

from repro.core.detector import DeadlockDetector
from repro.core.ndm import NewDetectionMechanism
from repro.core.null import NoDetection
from repro.core.hybrid import HybridDetection
from repro.core.pdm import PreviousDetectionMechanism
from repro.core.precise import PreciseNDM
from repro.core.recovery import (
    ProgressiveReinjection,
    NoRecovery,
    ProgressiveRecovery,
    RecoveryManager,
    RegressiveRecovery,
    make_recovery,
)
from repro.core.registry import detector_names, make_detector
from repro.core.timeout import (
    HeaderBlockedTimeout,
    InjectionStallTimeout,
    SourceAgeTimeout,
)

__all__ = [
    "DeadlockDetector",
    "HeaderBlockedTimeout",
    "HybridDetection",
    "InjectionStallTimeout",
    "NewDetectionMechanism",
    "NoDetection",
    "NoRecovery",
    "PreciseNDM",
    "PreviousDetectionMechanism",
    "ProgressiveRecovery",
    "ProgressiveReinjection",
    "RecoveryManager",
    "RegressiveRecovery",
    "SourceAgeTimeout",
    "detector_names",
    "make_detector",
    "make_recovery",
]
