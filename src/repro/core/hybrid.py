"""Hybrid detection: NDM with a crude-timeout safety net.

A practical concern the paper leaves open: the NDM suppresses detection
for tree-interior messages (`G/P = P`), relying on *some other* message
detecting the deadlock.  If that message's router mis-classifies (e.g. the
paper's simultaneous-blocking corner cases, or a dropped G due to the
shared per-channel flag), detection latency is unbounded.  The hybrid
mechanism keeps the NDM as the primary detector and adds a per-message
header-blocked timeout at ``fallback_factor x t2`` as a liveness backstop:

* ordinary detections behave exactly like the NDM (same selectivity);
* any message continuously blocked for the (much larger) fallback window
  is marked regardless of its G/P state, bounding worst-case detection
  latency without materially increasing false detections (the fallback
  window is far beyond normal congestion stalls).

This is an *extension* beyond the paper (its Section 5 notes the detection
mechanism "detects all the deadlocks" through the G-holder; the hybrid
makes that guarantee robust to heuristic corner cases).
"""

from __future__ import annotations

from typing import Optional

from repro.core.ndm import NewDetectionMechanism
from repro.network.message import Message
from repro.network.router import Router


class HybridDetection(NewDetectionMechanism):
    """NDM plus a long header-blocked timeout as a liveness backstop."""

    name = "hybrid"

    # Not folded onto shared trajectories (despite inheriting the ndm
    # observer machinery): the two-rule composite would need its own
    # family ladder in the batch observer, and the fallback backstop is
    # rarely threshold-swept — run hybrid cells individually.
    batch_shareable = False

    def __init__(
        self,
        threshold: int,
        t1: int = 1,
        selective_promotion: bool = False,
        fallback_factor: int = 16,
    ) -> None:
        super().__init__(threshold, t1=t1, selective_promotion=selective_promotion)
        if fallback_factor < 2:
            raise ValueError(
                f"fallback_factor must be >= 2, got {fallback_factor}"
            )
        self.fallback_factor = fallback_factor
        self.fallback_threshold = threshold * fallback_factor
        #: Detections raised by the backstop rather than the NDM rule.
        self.fallback_detections = 0

    def on_blocked_attempt(
        self, message: Message, router: Router, cycle: int, first_attempt: bool
    ) -> bool:
        if super().on_blocked_attempt(message, router, cycle, first_attempt):
            return True
        if first_attempt or message.blocked_since is None:
            return False
        if cycle - message.blocked_since > self.fallback_threshold:
            self.fallback_detections += 1
            return True
        return False

    def blocked_deadline(self, message: Message, cycle: int) -> Optional[int]:
        """NDM deadline capped by the (exact) fallback timeout."""
        ndm = super().blocked_deadline(message, cycle)
        if message.blocked_since is None:
            return ndm
        fallback = message.blocked_since + self.fallback_threshold + 1
        if ndm is None or fallback < ndm:
            return fallback
        return ndm

    def describe(self) -> str:
        return (
            f"hybrid(t2={self.threshold}, "
            f"fallback={self.fallback_threshold} cycles)"
        )
