"""Deadlock detector interface.

A detector is a passive observer wired into the router pipeline through a
small set of hooks.  All of them correspond to events a real router sees
locally, so every mechanism implemented on top of this interface is
*distributed* in the paper's sense: no global state, no extra signalling
between routers beyond the flow control that wormhole switching already has.

Hook call sites (see ``repro.network.simulator``):

* ``on_blocked_attempt`` — every cycle a blocked header is (re-)routed and
  finds no free virtual channel on any feasible output.  Returning ``True``
  marks the message as deadlocked and triggers recovery.
* ``on_message_routed`` — a header was granted an output virtual channel.
* ``on_vc_released`` — a virtual channel was freed (tail passed, delivery,
  or recovery).
* ``on_message_removed`` — a worm is being torn down by recovery.
* ``periodic_check`` — once per cycle with the active message list; used by
  source-side timeout mechanisms that do not piggyback on header routing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.network.channel import VirtualChannel
from repro.network.message import Message
from repro.network.router import Router

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.network.simulator import Simulator


class DeadlockDetector:
    """Base class: a detector that never detects anything."""

    #: Short name used in configs, stats and reports.
    name = "abstract"

    #: Whether ``periodic_check`` does anything (lets the simulator skip
    #: the per-cycle call for header-side mechanisms).
    needs_periodic_check = False

    #: Whether blocked messages may be parked between routing attempts
    #: under the event-driven engine.  Requires ``on_blocked_attempt`` on
    #: subsequent attempts to be free of side effects and its outcome to
    #: be predictable via :meth:`blocked_deadline` plus the simulator's
    #: wakeup events.  Mechanisms with per-attempt state (e.g. the
    #: ndm-precise witness) must set this to False; their messages then
    #: re-attempt every cycle exactly as under the reference engine.
    can_sleep_blocked = True

    #: Whether :meth:`probe_phase` does anything.  Probe-family detectors
    #: set this to True and the simulator runs a dedicated out-of-band
    #: phase (between checks and routing) every cycle; for every other
    #: detector the phase is skipped entirely.
    has_probe_phase = False

    #: Whether campaign cells running this mechanism may fold onto one
    #: shared batch trajectory (see ``repro.network.batch``).  Requires
    #: the mechanism to be a *pure observer* of the wait state: detection
    #: must be a function of shared trajectory state (channel counters,
    #: occupancy, blocking instants) plus detector-private bookkeeping,
    #: with zero feedback into routing or flit movement.  Mechanisms
    #: whose hooks maintain per-run shared state that marking would
    #: perturb (the selective-promotion waiter maps, the ndm-precise
    #: witness) must leave this False.  The registry's
    #: :func:`~repro.core.registry.batch_shareable` is the config-level
    #: gate built on this flag.
    batch_shareable = False

    def __init__(self, threshold: int) -> None:
        if threshold < 1:
            raise ValueError(f"detection threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.sim: "Simulator" = None  # type: ignore[assignment]

    def attach(self, sim: "Simulator") -> None:
        """Wire the detector into a built simulator (called once)."""
        self.sim = sim

    # ------------------------------------------------------------------
    # Hooks (default: no-ops)
    # ------------------------------------------------------------------
    def on_blocked_attempt(
        self, message: Message, router: Router, cycle: int, first_attempt: bool
    ) -> bool:
        """A routing attempt failed; return True to mark ``message``.

        ``message.input_pc`` is the physical input channel holding the
        header and ``message.feasible_pcs`` the cached feasible outputs.
        """
        return False

    def blocked_deadline(self, message: Message, cycle: int) -> Optional[int]:
        """Earliest cycle a *future* ``on_blocked_attempt`` could mark
        ``message``, assuming no further network events.

        Contract for the event-driven engine (``engine="event"``): between
        ``cycle`` and the returned deadline the detector must not detect
        the message unless one of the simulator's wakeup events fires (a
        lane freeing or an inactivity counter resuming on a feasible
        channel, or a G/P promotion on the input channel).  ``None`` means
        detection is impossible without such an event.  The default is
        correct for detectors whose ``on_blocked_attempt`` never returns
        True on subsequent attempts (none, source-age, injection-stall).
        """
        return None

    def probe_phase(self, cycle: int) -> List[Message]:
        """Advance out-of-band probes one hop; return elected victims.

        Called once per cycle between the checks and routing phases, but
        only when :attr:`has_probe_phase` is True.  The returned messages
        are handed to the normal detection/recovery path (each guarded
        against having left the network or been marked in the meantime).
        Implementations must read only state that is bit-identical across
        the scan and event engines at this phase boundary — message
        blocking state and channel occupancy, never engine bookkeeping —
        and must not draw from the simulator's RNG.
        """
        return []

    def on_message_routed(self, message: Message, cycle: int) -> None:
        """``message``'s header was granted an output virtual channel."""

    def on_vc_released(self, vc: VirtualChannel, cycle: int) -> None:
        """A virtual channel was freed."""

    def on_message_removed(self, message: Message, cycle: int) -> None:
        """``message`` is being torn down by the recovery mechanism."""

    def periodic_check(
        self, active_messages: Iterable[Message], cycle: int
    ) -> List[Message]:
        """Messages to mark independent of header routing (source-side)."""
        return []

    def describe(self) -> str:
        return f"{self.name}(threshold={self.threshold})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
