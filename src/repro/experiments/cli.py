"""Command-line interface for the experiment harness.

Usage examples::

    repro-experiments list
    repro-experiments table 2
    repro-experiments table 1 --full --out results/full
    repro-experiments all --out results
    repro-experiments saturation --pattern uniform
    repro-experiments compare 2
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.saturation import find_saturation
from repro.experiments.report import render_comparison, render_table
from repro.experiments.spec import TABLE_SPECS, base_config
from repro.experiments.tables import (
    default_out_dir,
    regenerate_table,
    save_result,
)
from repro.traffic.patterns import pattern_names


def _progress_printer(prefix: str):
    start = time.time()

    def progress(done: int, total: int) -> None:
        elapsed = time.time() - start
        sys.stderr.write(
            f"\r{prefix}: {done}/{total} cells ({elapsed:.0f}s elapsed)"
        )
        sys.stderr.flush()
        if done == total:
            sys.stderr.write("\n")

    return progress


def cmd_list(args: argparse.Namespace) -> int:
    for tid, spec in sorted(TABLE_SPECS.items()):
        print(f"Table {tid}: [{spec.mechanism}] {spec.title}")
    return 0


def cmd_table(args: argparse.Namespace) -> int:
    result = regenerate_table(
        args.table_id,
        full=args.full or None,
        seed=args.seed,
        progress=_progress_printer(f"table {args.table_id}"),
    )
    print(render_table(result))
    if args.out:
        path = save_result(result, args.out)
        print(f"\nwritten to {path}")
    return 0


def cmd_all(args: argparse.Namespace) -> int:
    for tid in sorted(TABLE_SPECS):
        result = regenerate_table(
            tid,
            full=args.full or None,
            seed=args.seed,
            progress=_progress_printer(f"table {tid}"),
        )
        print(render_table(result))
        print()
        if args.out:
            save_result(result, args.out)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    result = regenerate_table(
        args.table_id,
        full=args.full or None,
        seed=args.seed,
        progress=_progress_printer(f"table {args.table_id}"),
    )
    print(render_comparison(result))
    return 0


def cmd_latency(args: argparse.Namespace) -> int:
    from repro.experiments.latency import default_rates, sweep_load
    from repro.experiments.runner import saturation_rate
    from repro.experiments.tables import table_spec

    spec = table_spec(2, full=args.full or None)  # NDM, uniform
    config = base_config(args.full or None)
    config.seed = args.seed
    config.routing = args.routing
    if args.routing == "duato-adaptive":
        config.detector.mechanism = "none"
        config.recovery = "none"
    saturation = saturation_rate(config, spec)
    rates = default_rates(saturation, steps=args.steps)
    sweep = sweep_load(config, rates)
    print(f"routing={args.routing} uniform traffic "
          f"(saturation ~ {saturation:.3f} flits/cycle/node)")
    for row in sweep.rows():
        print(row)
    knee = sweep.knee()
    if knee is not None:
        print(f"\nlatency knee at offered ~ {knee.offered:.3f}")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.figures.scenarios import (
        build_figure2,
        build_figure3,
        build_figure4,
        build_figure5,
        build_simultaneous_blocking,
    )

    scenario = build_figure2("ndm", threshold=16)
    scenario.run(600)
    print(f"figure 2: NDM detections = {scenario.detected_names() or 'none'}")
    scenario = build_figure2("pdm", threshold=16)
    scenario.run(600)
    print(f"figure 2: PDM detections = {sorted(set(scenario.detected_names()))}")
    scenario = build_figure3("ndm", threshold=16)
    scenario.run(400)
    print(f"figure 3: NDM detections = {scenario.detected_names()}")
    scenario = build_figure4(threshold=16)
    scenario.run(1500)
    print(f"figure 4: detections = {scenario.detected_names()}, "
          f"recoveries = {scenario.sim.stats.recoveries}")
    scenario, _ = build_figure5("ndm", threshold=16)
    scenario.run(400)
    print(f"figure 5: detections = {scenario.detected_names()}")
    scenario = build_simultaneous_blocking("ndm", threshold=16)
    scenario.run(400)
    print(f"simultaneous blocking: detections = "
          f"{sorted(set(scenario.detected_names()))}")
    return 0


def cmd_saturation(args: argparse.Namespace) -> int:
    config = base_config(args.full or None)
    config.warmup_cycles = 500
    config.measure_cycles = 2000
    config.traffic.pattern = args.pattern
    config.traffic.lengths = args.size
    config.detector.mechanism = "none"
    config.ground_truth_interval = 0
    result = find_saturation(config)
    print(f"pattern={args.pattern} size={args.size}")
    print(f"saturation rate       : {result.saturation_rate:.4f} flits/cycle/node")
    print(f"saturation throughput : {result.saturation_throughput:.4f}")
    for rate, thr in result.samples:
        print(f"  offered {rate:.4f} -> accepted {thr:.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation tables of Lopez, Martinez & Duato "
            "(HPCA 1998) on the bundled wormhole network simulator."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="list the paper tables")
    p.set_defaults(func=cmd_list)

    for name, func, help_text in (
        ("table", cmd_table, "regenerate one table"),
        ("compare", cmd_compare, "regenerate one table and compare with the paper"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("table_id", type=int, choices=sorted(TABLE_SPECS))
        p.add_argument("--full", action="store_true",
                       help="paper-scale grid (512 nodes, all thresholds)")
        p.add_argument("--seed", type=int, default=7)
        if name == "table":
            p.add_argument("--out", default=None,
                           help=f"write txt+json under this directory "
                                f"(e.g. {default_out_dir()})")
        p.set_defaults(func=func)

    p = sub.add_parser("all", help="regenerate all seven tables")
    p.add_argument("--full", action="store_true")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out", default=None)
    p.set_defaults(func=cmd_all)

    p = sub.add_parser("saturation", help="measure a pattern's saturation rate")
    p.add_argument("--pattern", choices=pattern_names(), default="uniform")
    p.add_argument("--size", default="s")
    p.add_argument("--full", action="store_true")
    p.set_defaults(func=cmd_saturation)

    p = sub.add_parser(
        "latency", help="latency/throughput curve over offered load"
    )
    p.add_argument("--routing", default="fully-adaptive",
                   choices=("fully-adaptive", "duato-adaptive",
                            "dimension-order"))
    p.add_argument("--steps", type=int, default=6)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--full", action="store_true")
    p.set_defaults(func=cmd_latency)

    p = sub.add_parser(
        "figures", help="replay the paper's figure scenarios"
    )
    p.set_defaults(func=cmd_figures)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
