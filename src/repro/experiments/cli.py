"""Command-line interface for the experiment harness.

Usage examples::

    repro-experiments list
    repro-experiments table 2
    repro-experiments table 1 --full --out results/full
    repro-experiments all --out results
    repro-experiments saturation --pattern uniform
    repro-experiments compare 2
"""

from __future__ import annotations

import argparse
import shutil
import sys
import time
from pathlib import Path

from repro.analysis.saturation import find_saturation
from repro.campaign import (
    CampaignCheckpoint,
    ResultCache,
    default_cache_dir,
    default_num_workers,
    render_summary,
    summarize_manifest,
)
from repro.experiments.report import render_comparison, render_table
from repro.experiments.spec import TABLE_SPECS, base_config
from repro.experiments.tables import (
    default_out_dir,
    regenerate_table,
    save_result,
)
from repro.traffic.patterns import pattern_names

#: Manifest filename inside a campaign cache directory.
MANIFEST_NAME = "manifest.jsonl"


class _ProgressPrinter:
    """Stderr progress line; ``close()`` terminates it even on abort.

    The carriage-return rewriting leaves stderr mid-line unless the run
    reaches ``done == total``, so commands call :meth:`close` in a
    ``finally`` block to emit the trailing newline after a Ctrl-C or an
    exception as well.
    """

    def __init__(self, prefix: str):
        self.prefix = prefix
        self.start = time.time()
        self._mid_line = False

    def __call__(self, done: int, total: int) -> None:
        elapsed = time.time() - self.start
        sys.stderr.write(
            f"\r{self.prefix}: {done}/{total} cells ({elapsed:.0f}s elapsed)"
        )
        sys.stderr.flush()
        self._mid_line = done != total
        if done == total:
            sys.stderr.write("\n")

    def close(self) -> None:
        if self._mid_line:
            sys.stderr.write("\n")
            sys.stderr.flush()
            self._mid_line = False


def _progress_printer(prefix: str) -> _ProgressPrinter:
    return _ProgressPrinter(prefix)


def _campaign_options(args: argparse.Namespace):
    """Resolve (jobs, cache, checkpoint, resume) from campaign flags."""
    jobs = args.jobs if args.jobs is not None else default_num_workers()
    cache_dir = args.cache_dir
    if cache_dir is None and args.resume:
        cache_dir = default_cache_dir()
    cache = checkpoint = None
    if cache_dir is not None:
        cache = ResultCache(cache_dir)
        checkpoint = CampaignCheckpoint(
            Path(cache_dir) / MANIFEST_NAME, fresh=not args.resume
        )
    return jobs, cache, checkpoint, args.resume


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_engine_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine", choices=("event", "scan", "batch"), default="event",
        help="simulation engine: 'event' parks blocked worms between "
             "wakeup events (default), 'scan' re-scans every cycle "
             "(reference; byte-identical results), 'batch' additionally "
             "lets campaigns share one run across eligible threshold "
             "cells (NDM simple promotion, recovery 'none'; requires "
             "numpy, byte-identical results)",
    )


def _add_campaign_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="worker processes (default: one per CPU; 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="reuse finished cells from this result cache "
             f"(default cache location: {default_cache_dir()})",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted campaign from its manifest "
             "(implies --cache-dir's default when none is given)",
    )


def cmd_list(args: argparse.Namespace) -> int:
    for tid, spec in sorted(TABLE_SPECS.items()):
        print(f"Table {tid}: [{spec.mechanism}] {spec.title}")
    return 0


def cmd_table(args: argparse.Namespace) -> int:
    jobs, cache, checkpoint, resume = _campaign_options(args)
    progress = _progress_printer(f"table {args.table_id}")
    try:
        result = regenerate_table(
            args.table_id,
            full=args.full or None,
            seed=args.seed,
            progress=progress,
            jobs=jobs,
            cache=cache,
            checkpoint=checkpoint,
            resume=resume,
            engine=args.engine,
        )
    finally:
        progress.close()
    print(render_table(result))
    if cache is not None:
        print(f"\ncache: {cache.hits} hits, {cache.misses} misses "
              f"({cache.root})", file=sys.stderr)
    if args.out:
        path = save_result(result, args.out)
        print(f"\nwritten to {path}")
    return 0


def cmd_all(args: argparse.Namespace) -> int:
    jobs, cache, checkpoint, resume = _campaign_options(args)
    for tid in sorted(TABLE_SPECS):
        progress = _progress_printer(f"table {tid}")
        try:
            result = regenerate_table(
                tid,
                full=args.full or None,
                seed=args.seed,
                progress=progress,
                jobs=jobs,
                cache=cache,
                checkpoint=checkpoint,
                resume=resume,
                engine=args.engine,
            )
        finally:
            progress.close()
        print(render_table(result))
        print()
        if args.out:
            save_result(result, args.out)
    if cache is not None:
        print(f"cache: {cache.hits} hits, {cache.misses} misses "
              f"({cache.root})", file=sys.stderr)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    jobs, cache, checkpoint, resume = _campaign_options(args)
    progress = _progress_printer(f"table {args.table_id}")
    try:
        result = regenerate_table(
            args.table_id,
            full=args.full or None,
            seed=args.seed,
            progress=progress,
            jobs=jobs,
            cache=cache,
            checkpoint=checkpoint,
            resume=resume,
            engine=args.engine,
        )
    finally:
        progress.close()
    print(render_comparison(result))
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    cache_dir = Path(args.cache_dir or default_cache_dir())
    manifest = cache_dir / MANIFEST_NAME
    if args.action == "summary":
        print(f"campaign cache: {cache_dir}")
        print(render_summary(summarize_manifest(manifest)))
        cache = ResultCache(cache_dir)
        print(f"cached results        : {cache.size()}")
        return 0
    if args.action == "clear":
        if cache_dir.is_dir():
            shutil.rmtree(cache_dir)
            print(f"removed {cache_dir}")
        else:
            print(f"nothing to remove at {cache_dir}")
        return 0
    raise ValueError(f"unknown campaign action {args.action!r}")


def cmd_latency(args: argparse.Namespace) -> int:
    from repro.experiments.latency import default_rates, sweep_load
    from repro.experiments.runner import saturation_rate
    from repro.experiments.tables import table_spec

    spec = table_spec(2, full=args.full or None)  # NDM, uniform
    config = base_config(args.full or None)
    config.seed = args.seed
    config.engine = args.engine
    config.routing = args.routing
    if args.routing == "duato-adaptive":
        config.detector.mechanism = "none"
        config.recovery = "none"
    saturation = saturation_rate(config, spec)
    rates = default_rates(saturation, steps=args.steps)
    sweep = sweep_load(config, rates)
    print(f"routing={args.routing} uniform traffic "
          f"(saturation ~ {saturation:.3f} flits/cycle/node)")
    for row in sweep.rows():
        print(row)
    knee = sweep.knee()
    if knee is not None:
        print(f"\nlatency knee at offered ~ {knee.offered:.3f}")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.figures.scenarios import (
        build_figure2,
        build_figure3,
        build_figure4,
        build_figure5,
        build_simultaneous_blocking,
    )

    scenario = build_figure2("ndm", threshold=16)
    scenario.run(600)
    print(f"figure 2: NDM detections = {scenario.detected_names() or 'none'}")
    scenario = build_figure2("pdm", threshold=16)
    scenario.run(600)
    print(f"figure 2: PDM detections = {sorted(set(scenario.detected_names()))}")
    scenario = build_figure3("ndm", threshold=16)
    scenario.run(400)
    print(f"figure 3: NDM detections = {scenario.detected_names()}")
    scenario = build_figure4(threshold=16)
    scenario.run(1500)
    print(f"figure 4: detections = {scenario.detected_names()}, "
          f"recoveries = {scenario.sim.stats.recoveries}")
    scenario, _ = build_figure5("ndm", threshold=16)
    scenario.run(400)
    print(f"figure 5: detections = {scenario.detected_names()}")
    scenario = build_simultaneous_blocking("ndm", threshold=16)
    scenario.run(400)
    print(f"simultaneous blocking: detections = "
          f"{sorted(set(scenario.detected_names()))}")
    return 0


def cmd_saturation(args: argparse.Namespace) -> int:
    config = base_config(args.full or None)
    config.engine = args.engine
    config.warmup_cycles = 500
    config.measure_cycles = 2000
    config.traffic.pattern = args.pattern
    config.traffic.lengths = args.size
    config.detector.mechanism = "none"
    config.ground_truth_interval = 0
    result = find_saturation(config)
    print(f"pattern={args.pattern} size={args.size}")
    print(f"saturation rate       : {result.saturation_rate:.4f} flits/cycle/node")
    print(f"saturation throughput : {result.saturation_throughput:.4f}")
    for rate, thr in result.samples:
        print(f"  offered {rate:.4f} -> accepted {thr:.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation tables of Lopez, Martinez & Duato "
            "(HPCA 1998) on the bundled wormhole network simulator."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="list the paper tables")
    p.set_defaults(func=cmd_list)

    for name, func, help_text in (
        ("table", cmd_table, "regenerate one table"),
        ("compare", cmd_compare, "regenerate one table and compare with the paper"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("table_id", type=int, choices=sorted(TABLE_SPECS))
        p.add_argument("--full", action="store_true",
                       help="paper-scale grid (512 nodes, all thresholds)")
        p.add_argument("--seed", type=int, default=7)
        _add_campaign_flags(p)
        _add_engine_flag(p)
        if name == "table":
            p.add_argument("--out", default=None,
                           help=f"write txt+json under this directory "
                                f"(e.g. {default_out_dir()})")
        p.set_defaults(func=func)

    p = sub.add_parser("all", help="regenerate all seven tables")
    p.add_argument("--full", action="store_true")
    p.add_argument("--seed", type=int, default=7)
    _add_campaign_flags(p)
    _add_engine_flag(p)
    p.add_argument("--out", default=None)
    p.set_defaults(func=cmd_all)

    p = sub.add_parser(
        "campaign",
        help="inspect or clear the campaign cache and manifest",
    )
    p.add_argument("action", choices=("summary", "clear"))
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help=f"campaign cache directory "
                        f"(default: {default_cache_dir()})")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("saturation", help="measure a pattern's saturation rate")
    p.add_argument("--pattern", choices=pattern_names(), default="uniform")
    p.add_argument("--size", default="s")
    p.add_argument("--full", action="store_true")
    _add_engine_flag(p)
    p.set_defaults(func=cmd_saturation)

    p = sub.add_parser(
        "latency", help="latency/throughput curve over offered load"
    )
    p.add_argument("--routing", default="fully-adaptive",
                   choices=("fully-adaptive", "duato-adaptive",
                            "dimension-order"))
    p.add_argument("--steps", type=int, default=6)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--full", action="store_true")
    _add_engine_flag(p)
    p.set_defaults(func=cmd_latency)

    p = sub.add_parser(
        "figures", help="replay the paper's figure scenarios"
    )
    p.set_defaults(func=cmd_figures)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
