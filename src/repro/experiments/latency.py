"""Latency/throughput-vs-load curves.

The paper reports only detection percentages, but the deadlock-recovery
argument rests on the network's performance profile (deadlock recovery
permits unrestricted fully adaptive routing, which buys latency and
throughput).  This module sweeps offered load and records the classic
latency/throughput curve, used by the traffic examples, the ablation
benches and as an extension experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.network.config import SimulationConfig


@dataclass(frozen=True)
class LoadPoint:
    """One operating point of a load sweep."""

    offered: float
    throughput: float
    avg_latency: Optional[float]
    avg_network_latency: Optional[float]
    max_latency: int
    detected_percent: float
    recoveries: int
    had_deadlock: bool


@dataclass
class LoadSweep:
    """Result of sweeping offered load on one configuration."""

    points: List[LoadPoint]

    def knee(self, factor: float = 2.5) -> Optional[LoadPoint]:
        """First point whose latency exceeds ``factor`` x the base latency.

        The classic saturation-knee estimate; ``None`` if the sweep never
        reaches it.
        """
        base = None
        for point in self.points:
            if point.avg_latency is None:
                continue
            if base is None:
                base = point.avg_latency
                continue
            if point.avg_latency > factor * base:
                return point
        return None

    def peak_throughput(self) -> float:
        if not self.points:
            return 0.0
        return max(p.throughput for p in self.points)

    def rows(self) -> List[str]:
        """Fixed-width text rows (offered, accepted, latency, detection)."""
        lines = [
            f"{'offered':>8} {'accepted':>9} {'avg lat':>8} {'max lat':>8} "
            f"{'detect%':>8} {'recov':>6} {'dl':>3}"
        ]
        for p in self.points:
            lat = f"{p.avg_latency:.0f}" if p.avg_latency is not None else "-"
            lines.append(
                f"{p.offered:>8.3f} {p.throughput:>9.3f} {lat:>8} "
                f"{p.max_latency:>8} {p.detected_percent:>8.3f} "
                f"{p.recoveries:>6} {'*' if p.had_deadlock else '':>3}"
            )
        return lines


def sweep_load(
    base: SimulationConfig,
    rates: Sequence[float],
    seed: Optional[int] = None,
) -> LoadSweep:
    """Run one simulation per offered rate and collect the curve."""
    from repro.network.simulator import Simulator

    points: List[LoadPoint] = []
    for rate in rates:
        config = base.replace()
        if seed is not None:
            config.seed = seed
        config.traffic.injection_rate = rate
        stats = Simulator(config).run()
        points.append(
            LoadPoint(
                offered=rate,
                throughput=stats.throughput(),
                avg_latency=stats.average_latency(),
                avg_network_latency=stats.average_network_latency(),
                max_latency=stats.max_latency,
                detected_percent=stats.detection_percentage(),
                recoveries=stats.recoveries,
                had_deadlock=stats.had_true_deadlock(),
            )
        )
    return LoadSweep(points=points)


def default_rates(saturation: float, steps: int = 8) -> List[float]:
    """Evenly spaced offered rates from 20% to 110% of saturation."""
    if saturation <= 0:
        raise ValueError(f"saturation must be positive, got {saturation}")
    if steps < 2:
        raise ValueError(f"steps must be >= 2, got {steps}")
    low, high = 0.2 * saturation, 1.1 * saturation
    span = high - low
    return [round(low + span * i / (steps - 1), 4) for i in range(steps)]
