"""Detection latency: how long a real deadlock survives before detection.

The paper's argument against crude timeouts is not only false positives:
with message-length-dependent thresholds, "deadlocked packets have to wait
for long until deadlock is detected.  In these situations, latency becomes
much less predictable."  This experiment measures, per mechanism and
threshold, the delay from deadlock formation to first detection on the
canonical Figure 3 deadlock, plus whether the deadlock is detected at all
within a deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.deadlock import find_deadlocked


@dataclass(frozen=True)
class DetectionLatencyPoint:
    """Outcome of one (mechanism, threshold) run on the canonical deadlock."""

    mechanism: str
    threshold: int
    #: Cycle at which the ground-truth oracle first saw the full cycle.
    formation_cycle: Optional[int]
    #: Cycle of the first detection event (None = never detected).
    detection_cycle: Optional[int]
    #: Messages marked for this single deadlock (recovery overhead).
    messages_marked: int

    @property
    def latency(self) -> Optional[int]:
        """Detection delay relative to deadlock formation.

        Negative values are possible for mechanisms that falsely mark
        tree members *before* the cycle closes (the PDM on Figure 2's
        chain); they are reported as measured.
        """
        if self.formation_cycle is None or self.detection_cycle is None:
            return None
        return self.detection_cycle - self.formation_cycle

    @property
    def detected(self) -> bool:
        return self.detection_cycle is not None


def measure_detection_latency(
    mechanism: str,
    threshold: int,
    deadline: int = 4000,
    selective_promotion: bool = False,
) -> DetectionLatencyPoint:
    """Run the Figure 3 deadlock under one detector and time the detection."""
    from repro.figures.scenarios import build_figure3

    scenario = build_figure3(
        mechanism, threshold, recovery="none",
        selective_promotion=selective_promotion,
    )
    sim = scenario.sim

    formation: Optional[int] = None
    detection: Optional[int] = None
    start = sim.cycle
    while sim.cycle - start < deadline:
        sim.step()
        if formation is None and len(find_deadlocked(sim.active_messages)) >= 4:
            formation = sim.cycle
        if sim.stats.detection_events and detection is None:
            detection = sim.stats.detection_events[0].cycle
        if (
            formation is not None
            and detection is not None
            and sim.cycle - max(detection, formation) > 2 * threshold
        ):
            break  # allow trailing detections to accumulate briefly
    return DetectionLatencyPoint(
        mechanism=mechanism,
        threshold=threshold,
        formation_cycle=formation,
        detection_cycle=detection,
        messages_marked=len(
            {e.message_id for e in sim.stats.detection_events}
        ),
    )


def latency_sweep(
    mechanisms: Sequence[str] = ("ndm", "pdm", "timeout"),
    thresholds: Sequence[int] = (8, 32, 128),
    deadline: int = 4000,
) -> List[DetectionLatencyPoint]:
    """Grid of detection-latency measurements."""
    return [
        measure_detection_latency(mechanism, threshold, deadline)
        for mechanism in mechanisms
        for threshold in thresholds
    ]


def render_latency_table(points: Sequence[DetectionLatencyPoint]) -> str:
    """Fixed-width text table of a latency sweep."""
    lines = [
        f"{'mechanism':12} {'threshold':>9} {'formed@':>8} {'detected@':>9} "
        f"{'latency':>8} {'marked':>7}"
    ]
    for p in points:
        lines.append(
            f"{p.mechanism:12} {p.threshold:>9} "
            f"{p.formation_cycle if p.formation_cycle is not None else '-':>8} "
            f"{p.detection_cycle if p.detection_cycle is not None else '-':>9} "
            f"{p.latency if p.latency is not None else '-':>8} "
            f"{p.messages_marked:>7}"
        )
    return "\n".join(lines)
