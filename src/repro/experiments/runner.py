"""Experiment runner: executes table specs cell by cell.

One *cell* of a paper table is a full simulation: (mechanism, threshold,
pattern, message size, injection rate).  The runner measures the paper's
metric — percentage of messages detected as possibly deadlocked — plus the
supporting data (true/false split, throughput, whether a real deadlock
occurred, matching the tables' ``(*)`` annotations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.analysis.saturation import find_saturation
from repro.experiments.spec import TableSpec, calibrated_saturation
from repro.metrics.stats import SimulationStats
from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator


@dataclass(frozen=True)
class CellResult:
    """Outcome of one table cell (one simulation)."""

    percentage: float
    detections: int
    messages_detected: int
    true_detections: int
    false_detections: int
    injected: int
    throughput: float
    injection_rate: float
    had_true_deadlock: bool

    def label(self) -> str:
        """Cell text in the paper's style: percentage, star if deadlock."""
        text = f"{self.percentage:.3f}"
        if self.had_true_deadlock:
            text += "*"
        return text


@dataclass
class TableResult:
    """All cells of one regenerated table."""

    spec: TableSpec
    #: Offered rates used per load index (flits/cycle/node).
    rates: Tuple[float, ...] = ()
    #: cells[threshold][(load_index, size)] -> CellResult
    cells: Dict[int, Dict[Tuple[int, str], CellResult]] = field(
        default_factory=dict
    )

    def cell(self, threshold: int, load_index: int, size: str) -> CellResult:
        return self.cells[threshold][(load_index, size)]


def build_cell_config(
    base: SimulationConfig,
    spec: TableSpec,
    threshold: int,
    size: str,
    rate: float,
) -> SimulationConfig:
    """Concrete simulation config for one table cell."""
    config = base.replace()
    config.traffic.pattern = spec.pattern
    config.traffic.pattern_params = dict(spec.pattern_params)
    config.traffic.lengths = size
    config.traffic.injection_rate = rate
    config.detector.mechanism = spec.mechanism
    config.detector.threshold = threshold
    return config


def run_cell(
    base: SimulationConfig,
    spec: TableSpec,
    threshold: int,
    size: str,
    rate: float,
) -> CellResult:
    """Run one simulation and condense it into a cell result."""
    config = build_cell_config(base, spec, threshold, size, rate)
    stats = Simulator(config).run()
    return cell_from_stats(stats, rate)


def cell_from_stats(stats: SimulationStats, rate: float) -> CellResult:
    return CellResult(
        percentage=stats.detection_percentage(),
        detections=stats.detections_measured,
        messages_detected=stats.messages_detected_measured,
        true_detections=stats.true_detections,
        false_detections=stats.false_detections,
        injected=stats.injected_measured,
        throughput=stats.throughput(),
        injection_rate=rate,
        had_true_deadlock=stats.had_true_deadlock(),
    )


def saturation_rate(
    base: SimulationConfig,
    spec: TableSpec,
    measured: Optional[Dict[str, float]] = None,
    measure: bool = False,
) -> float:
    """Saturation rate for the spec's pattern on the base configuration.

    Uses the calibrated table by default; set ``measure=True`` to run the
    saturation search (slower but exact for modified configurations).
    """
    if measured and spec.pattern in measured:
        return measured[spec.pattern]
    if not measure:
        calibrated = calibrated_saturation(full=base.dimensions >= 3)
        if spec.pattern in calibrated:
            return calibrated[spec.pattern]
    probe = base.replace()
    probe.warmup_cycles = min(probe.warmup_cycles, 500)
    probe.measure_cycles = min(probe.measure_cycles, 2000)
    probe.traffic.pattern = spec.pattern
    probe.traffic.pattern_params = dict(spec.pattern_params)
    probe.traffic.lengths = "s"
    probe.detector.mechanism = "none"
    probe.ground_truth_interval = 0
    return find_saturation(probe).saturation_rate


def run_table(
    spec: TableSpec,
    base: SimulationConfig,
    saturation: Optional[float] = None,
    progress=None,
    *,
    jobs: int = 1,
    cache=None,
    checkpoint=None,
    resume: bool = False,
) -> TableResult:
    """Regenerate one full table (delegates to the campaign engine).

    The default keyword arguments run every cell serially in-process —
    the historical sequential behaviour.  ``jobs > 1`` fans the cells
    out over a process pool; ``cache``/``checkpoint``/``resume`` plug in
    the campaign engine's result store and manifest (see
    :mod:`repro.campaign`).  All paths produce bit-identical tables.

    Args:
        spec: the table's grid definition.
        base: base simulation config (topology, windows, seed).
        saturation: saturation rate override (flits/cycle/node); defaults
            to the calibrated value for the spec's pattern.
        progress: optional callable ``progress(done, total)``.
        jobs: worker-process count (1 = serial in-process).
        cache: optional :class:`repro.campaign.ResultCache`.
        checkpoint: optional :class:`repro.campaign.CampaignCheckpoint`.
        resume: reuse finished cells from the checkpoint manifest.
    """
    # Imported here: the campaign package depends on this module.
    from repro.campaign.engine import run_table_campaign

    return run_table_campaign(
        spec,
        base,
        saturation=saturation,
        num_workers=jobs,
        cache=cache,
        checkpoint=checkpoint,
        resume=resume,
        progress=progress,
    )
