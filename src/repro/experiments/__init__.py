"""Experiment harness regenerating the paper's tables and claims."""

from repro.experiments.detection_latency import (
    DetectionLatencyPoint,
    latency_sweep,
    measure_detection_latency,
    render_latency_table,
)
from repro.experiments.latency import (
    LoadPoint,
    LoadSweep,
    default_rates,
    sweep_load,
)
from repro.experiments.paper_data import PAPER_TABLES, paper_value
from repro.experiments.report import (
    render_comparison,
    render_table,
    table_to_json,
)
from repro.experiments.runner import CellResult, TableResult, run_cell, run_table
from repro.experiments.spec import TABLE_SPECS, TableSpec, base_config
from repro.experiments.tables import (
    regenerate_all,
    regenerate_table,
    save_result,
    table_spec,
)

__all__ = [
    "CellResult",
    "DetectionLatencyPoint",
    "LoadPoint",
    "LoadSweep",
    "PAPER_TABLES",
    "TABLE_SPECS",
    "TableResult",
    "TableSpec",
    "base_config",
    "default_rates",
    "latency_sweep",
    "measure_detection_latency",
    "paper_value",
    "regenerate_all",
    "regenerate_table",
    "render_comparison",
    "render_latency_table",
    "render_table",
    "run_cell",
    "run_table",
    "save_result",
    "sweep_load",
    "table_spec",
    "table_to_json",
]
