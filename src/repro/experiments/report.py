"""Rendering of regenerated tables in the paper's layout.

The paper's tables have one row per detection threshold and one column per
(injection rate, message size) pair, with ``(*)`` marking columns in which
actual deadlocks were detected.  ``render_table`` reproduces that layout;
``render_comparison`` adds the paper's published value next to each of our
measurements.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.experiments.paper_data import PAPER_TABLES
from repro.experiments.runner import TableResult


def render_table(result: TableResult, title: Optional[str] = None) -> str:
    """ASCII rendering of one regenerated table, paper layout."""
    spec = result.spec
    lines = [title if title is not None else f"Table {spec.table_id}: {spec.title}"]
    lines.append(
        f"mechanism={spec.mechanism}  pattern={spec.pattern}  "
        "values = % of messages detected as possibly deadlocked "
        "(* = actual deadlock observed)"
    )
    header1 = ["        "]
    header2 = ["M. Size "]
    for load_index, rate in enumerate(result.rates):
        sat = " (sat)" if load_index in spec.saturated_loads else ""
        group = f"{rate:.4g}{sat}"
        width = 9 * len(spec.sizes)
        header1.append(group.center(width))
        for size in spec.sizes:
            header2.append(f"{size:>8} ")
    lines.append("".join(header1))
    lines.append("".join(header2))
    for threshold in spec.thresholds:
        row = [f"Th {threshold:<5}"]
        for load_index in range(len(result.rates)):
            for size in spec.sizes:
                cell = result.cell(threshold, load_index, size)
                row.append(f"{cell.label():>8} ")
        lines.append("".join(row))
    return "\n".join(lines)


def render_comparison(result: TableResult) -> str:
    """Side-by-side rendering: our measurement vs the paper's value.

    Only cells present in both grids are compared (quick grids are a
    subset of the paper's rows/columns).  Cells are shown as
    ``ours/paper``.
    """
    spec = result.spec
    paper = PAPER_TABLES.get(spec.table_id)
    if paper is None:
        return render_table(result)
    lines = [
        f"Table {spec.table_id} comparison (ours / paper), "
        f"mechanism={spec.mechanism}, pattern={spec.pattern}",
        "loads are matched by position: our rate at the same fraction of "
        "saturation as the paper's rate",
    ]
    header = ["M. Size "]
    for load_index, rate in enumerate(result.rates):
        paper_rate = (
            paper["rates"][load_index]
            if load_index < len(paper["rates"])
            else None
        )
        for size in spec.sizes:
            label = f"{size}@{rate:.3g}"
            header.append(f"{label:>16} ")
    lines.append("".join(header))
    for threshold in spec.thresholds:
        paper_row = paper["rows"].get(threshold)
        row = [f"Th {threshold:<5}"]
        for load_index in range(len(result.rates)):
            for size in spec.sizes:
                ours = result.cell(threshold, load_index, size).percentage
                if paper_row is not None and size in paper["sizes"]:
                    pv = paper_row[_paper_load_index(result, paper, load_index)][
                        paper["sizes"].index(size)
                    ]
                    cell = f"{ours:.3f}/{pv:.3f}"
                else:
                    cell = f"{ours:.3f}/  -  "
                row.append(f"{cell:>16} ")
        lines.append("".join(row))
    return "\n".join(lines)


def _paper_load_index(result: TableResult, paper: dict, load_index: int) -> int:
    """Map our load index onto the paper's (quick grids skip loads)."""
    if len(result.rates) == len(paper["rates"]):
        return load_index
    # Quick grid keeps (second, last) loads of the paper's four.
    mapping = {0: 1, 1: len(paper["rates"]) - 1}
    return mapping.get(load_index, load_index)


def table_to_json(result: TableResult) -> str:
    """Machine-readable dump of a regenerated table."""
    spec = result.spec
    payload = {
        "table_id": spec.table_id,
        "title": spec.title,
        "mechanism": spec.mechanism,
        "pattern": spec.pattern,
        "sizes": list(spec.sizes),
        "rates": list(result.rates),
        "thresholds": list(spec.thresholds),
        "cells": {
            str(threshold): {
                f"{load_index}:{size}": {
                    "percentage": cell.percentage,
                    "messages_detected": cell.messages_detected,
                    "detections": cell.detections,
                    "true": cell.true_detections,
                    "false": cell.false_detections,
                    "injected": cell.injected,
                    "throughput": cell.throughput,
                    "deadlock": cell.had_true_deadlock,
                }
                for (load_index, size), cell in row.items()
            }
            for threshold, row in result.cells.items()
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
