"""Entry points for regenerating the paper's tables.

``regenerate_table(n)`` runs the whole grid for Table *n* and returns the
result; by default the quick grid on the 64-node configuration, or the
paper-scale grid when ``full=True`` (or ``REPRO_FULL=1``).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, Optional

from repro.experiments.report import render_table, table_to_json
from repro.experiments.runner import TableResult, run_table
from repro.experiments.spec import (
    TABLE_SPECS,
    TableSpec,
    base_config,
    full_mode,
    quick_spec,
)


def table_spec(table_id: int, full: Optional[bool] = None) -> TableSpec:
    """The (quick or full) spec for one paper table."""
    if table_id not in TABLE_SPECS:
        choices = ", ".join(str(t) for t in sorted(TABLE_SPECS))
        raise ValueError(f"no such table: {table_id}; choose one of {choices}")
    spec = TABLE_SPECS[table_id]
    if full is None:
        full = full_mode()
    return spec if full else quick_spec(spec)


def regenerate_table(
    table_id: int,
    full: Optional[bool] = None,
    seed: int = 7,
    saturation: Optional[float] = None,
    progress=None,
    *,
    jobs: int = 1,
    cache=None,
    checkpoint=None,
    resume: bool = False,
    engine: Optional[str] = None,
) -> TableResult:
    """Run every cell of one paper table and return the result grid.

    ``jobs``/``cache``/``checkpoint``/``resume`` are forwarded to the
    campaign engine (see :func:`repro.experiments.runner.run_table`);
    the defaults reproduce the sequential single-process behaviour.
    ``engine`` selects the simulation engine for every cell (``None``
    keeps the config default).
    """
    spec = table_spec(table_id, full)
    base = base_config(full)
    base.seed = seed
    if engine is not None:
        base.engine = engine
    return run_table(
        spec,
        base,
        saturation=saturation,
        progress=progress,
        jobs=jobs,
        cache=cache,
        checkpoint=checkpoint,
        resume=resume,
    )


def regenerate_all(
    table_ids: Iterable[int] = range(1, 8),
    full: Optional[bool] = None,
    seed: int = 7,
    *,
    jobs: int = 1,
    cache=None,
    checkpoint=None,
    resume: bool = False,
) -> Dict[int, TableResult]:
    """Regenerate several tables (the paper's seven by default).

    Table 8 — the probe-detector extension grid — is not in the default
    set; include it explicitly via ``table_ids``.

    When a cache or checkpoint is supplied, every table shares it — one
    campaign — so overlapping grids reuse each other's cells.
    """
    return {
        tid: regenerate_table(
            tid,
            full=full,
            seed=seed,
            jobs=jobs,
            cache=cache,
            checkpoint=checkpoint,
            resume=resume,
        )
        for tid in table_ids
    }


def save_result(result: TableResult, out_dir: str = "results") -> Path:
    """Write the rendered table and its JSON dump under ``out_dir``."""
    path = Path(out_dir)
    path.mkdir(parents=True, exist_ok=True)
    stem = f"table{result.spec.table_id}"
    (path / f"{stem}.txt").write_text(render_table(result) + "\n")
    (path / f"{stem}.json").write_text(table_to_json(result) + "\n")
    return path / f"{stem}.txt"


def default_out_dir() -> str:
    return os.environ.get("REPRO_RESULTS_DIR", "results")
