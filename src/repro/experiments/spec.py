"""Experiment specifications for the paper's Tables 1-7 (plus extensions).

Each table reports *percentage of messages detected as possibly
deadlocked* on a grid of detection thresholds (rows) by injection-rate /
message-size combinations (columns), for one detection mechanism and one
traffic pattern.

The paper's absolute injection rates are specific to the authors' 512-node
testbed; we reproduce the grid at the same **fractions of the saturation
rate** (the ratios below are computed from the paper's own numbers, e.g.
uniform 0.428/0.471/0.514/0.600 with 0.600 the saturated point).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.network.config import SimulationConfig, quick_config, paper_config

#: The paper's threshold rows (powers of two, 2 .. 1024).
PAPER_THRESHOLDS: Tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: Subset used by the quick benchmark mode.
QUICK_THRESHOLDS: Tuple[int, ...] = (2, 8, 32, 128)


@dataclass(frozen=True)
class TableSpec:
    """One paper table: mechanism x pattern x (loads, sizes, thresholds)."""

    table_id: int
    title: str
    mechanism: str
    pattern: str
    pattern_params: Dict[str, Any] = field(default_factory=dict)
    #: Message-size workload names (columns within each load group).
    sizes: Tuple[str, ...] = ("s", "l", "L", "sl")
    #: Loads as fractions of the measured saturation rate.
    load_fractions: Tuple[float, ...] = (0.713, 0.785, 0.857, 1.0)
    #: The paper's absolute rates, kept for reporting/columns headers.
    paper_rates: Tuple[float, ...] = (0.428, 0.471, 0.514, 0.600)
    thresholds: Tuple[int, ...] = PAPER_THRESHOLDS
    #: Which load indices the paper annotates as saturated.
    saturated_loads: Tuple[int, ...] = (3,)

    def cell_coords(self) -> Tuple[Tuple[int, int, str], ...]:
        """Every ``(threshold, load_index, size)`` cell in canonical order.

        This is the single source of truth for grid enumeration: the
        sequential runner, the campaign job enumerator and the result
        reassembly all iterate it, so parallel runs rebuild tables in
        exactly the sequential order.
        """
        return tuple(
            (threshold, load_index, size)
            for threshold in self.thresholds
            for load_index in range(len(self.load_fractions))
            for size in self.sizes
        )

    def cell_count(self) -> int:
        """Number of simulations one full run of this table needs."""
        return len(self.thresholds) * len(self.load_fractions) * len(self.sizes)


def _fractions(rates: Tuple[float, ...], sat: float) -> Tuple[float, ...]:
    return tuple(round(r / sat, 3) for r in rates)


TABLE_SPECS: Dict[int, TableSpec] = {
    1: TableSpec(
        table_id=1,
        title=(
            "Percentage of messages detected as possibly deadlocked, "
            "previous detection mechanism (PDM), uniform traffic"
        ),
        mechanism="pdm",
        pattern="uniform",
    ),
    2: TableSpec(
        table_id=2,
        title=(
            "Percentage of messages detected as possibly deadlocked, "
            "new detection mechanism (NDM), uniform traffic"
        ),
        mechanism="ndm",
        pattern="uniform",
    ),
    3: TableSpec(
        table_id=3,
        title="NDM, uniform traffic with locality",
        mechanism="ndm",
        pattern="locality",
        pattern_params={"radius": 1},
        sizes=("s", "l", "sl"),
        load_fractions=_fractions((1.429, 1.571, 1.857, 2.0), 1.857),
        paper_rates=(1.429, 1.571, 1.857, 2.0),
        thresholds=(2, 4, 8, 16, 32, 64, 128),
        saturated_loads=(2, 3),
    ),
    4: TableSpec(
        table_id=4,
        title="NDM, bit-reversal traffic",
        mechanism="ndm",
        pattern="bit-reversal",
        sizes=("s", "l", "sl"),
        load_fractions=_fractions((0.352, 0.386, 0.421, 0.451), 0.451),
        paper_rates=(0.352, 0.386, 0.421, 0.451),
        thresholds=(2, 4, 8, 16, 32, 64, 128, 256),
    ),
    5: TableSpec(
        table_id=5,
        title="NDM, perfect-shuffle traffic",
        mechanism="ndm",
        pattern="perfect-shuffle",
        sizes=("s", "l", "sl"),
        load_fractions=_fractions((0.214, 0.250, 0.286, 0.320), 0.320),
        paper_rates=(0.214, 0.250, 0.286, 0.320),
        thresholds=PAPER_THRESHOLDS,
    ),
    6: TableSpec(
        table_id=6,
        title="NDM, butterfly traffic",
        mechanism="ndm",
        pattern="butterfly",
        sizes=("s", "l", "sl"),
        load_fractions=_fractions((0.107, 0.118, 0.129, 0.139), 0.139),
        paper_rates=(0.107, 0.118, 0.129, 0.139),
        thresholds=PAPER_THRESHOLDS,
    ),
    7: TableSpec(
        table_id=7,
        title="NDM, hot-spot traffic (5% to one node)",
        mechanism="ndm",
        pattern="hot-spot",
        pattern_params={"fraction": 0.05},
        sizes=("s", "l", "sl"),
        load_fractions=_fractions((0.0628, 0.0707, 0.0786, 0.0862), 0.0862),
        paper_rates=(0.0628, 0.0707, 0.0786, 0.0862),
        thresholds=PAPER_THRESHOLDS,
    ),
    # Extension beyond the paper: the edge-chasing probe detector on the
    # same uniform-traffic grid as Table 2, so the probe family's
    # detection percentages are directly comparable against NDM's.  The
    # probe walks the channel wait-graph and only declares on a proved
    # cycle (or a fault-wedged dead end), so its cells measure *actual*
    # deadlock incidence rather than timeout-threshold pessimism.
    8: TableSpec(
        table_id=8,
        title=(
            "Percentage of messages detected as deadlocked, "
            "edge-chasing probe detector (extension), uniform traffic"
        ),
        mechanism="probe",
        pattern="uniform",
    ),
}


def full_mode() -> bool:
    """Whether the environment requests paper-scale runs (REPRO_FULL=1)."""
    return os.environ.get("REPRO_FULL", "").strip() in ("1", "true", "yes")


def base_config(full: Optional[bool] = None) -> SimulationConfig:
    """The harness base configuration for quick or full (paper-scale) mode.

    Quick mode: 64-node 8-ary 2-cube, short measurement windows.
    Full mode: the paper's 512-node 8-ary 3-cube, longer windows.
    """
    if full is None:
        full = full_mode()
    if full:
        config = paper_config()
        config.warmup_cycles = 2000
        config.measure_cycles = 10_000
    else:
        config = quick_config()
        config.warmup_cycles = 800
        config.measure_cycles = 4000
    config.injection_limit_fraction = 0.65
    config.ground_truth_interval = 200
    return config


def quick_spec(spec: TableSpec) -> TableSpec:
    """Trim a table spec to the quick benchmark grid.

    Keeps two loads (just below and at saturation), the first two message
    sizes plus ``sl`` when present, and four thresholds.
    """
    load_idx = (1, len(spec.load_fractions) - 1)
    sizes = tuple(s for s in spec.sizes if s in ("s", "l", "sl"))[:3]
    params = dict(spec.pattern_params)
    if spec.pattern == "hot-spot":
        # Preserve the hot node's load multiplier (fraction x num_nodes):
        # the paper's 5% of 512 nodes corresponds to 40% of 64 nodes.
        params["fraction"] = 0.4
    return TableSpec(
        table_id=spec.table_id,
        title=spec.title + " [quick grid]",
        mechanism=spec.mechanism,
        pattern=spec.pattern,
        pattern_params=params,
        sizes=sizes,
        load_fractions=tuple(spec.load_fractions[i] for i in load_idx),
        paper_rates=tuple(spec.paper_rates[i] for i in load_idx),
        thresholds=QUICK_THRESHOLDS,
        saturated_loads=(1,),
    )


#: Saturation rates (flits/cycle/node) measured on the quick 64-node
#: configuration (seed 7, 's' messages, injection_limit_fraction=0.65).
#: Regenerate with ``repro-experiments saturation``.
CALIBRATED_SATURATION_QUICK: Dict[str, float] = {
    "uniform": 0.738,
    "locality": 2.288,
    "bit-reversal": 0.681,
    "perfect-shuffle": 0.438,
    "butterfly": 0.653,
    "hot-spot": 0.163,  # quick grid uses fraction=0.4 (see quick_spec)
}

#: Saturation rates measured on the full 512-node configuration.
CALIBRATED_SATURATION_FULL: Dict[str, float] = {
    "uniform": 0.775,
    "locality": 2.363,
    "bit-reversal": 0.522,
    "perfect-shuffle": 0.416,
    "butterfly": 0.600,
    "hot-spot": 0.275,  # 5% of messages to one node
}


def calibrated_saturation(full: Optional[bool] = None) -> Dict[str, float]:
    if full is None:
        full = full_mode()
    table = CALIBRATED_SATURATION_FULL if full else CALIBRATED_SATURATION_QUICK
    return dict(table)
