"""Batch backend: many detector cells of a campaign over one trajectory.

A campaign grid (see ``repro.experiments.spec``) re-runs the *same*
network — topology, workload, seed, windows — once per detector cell.
For every mechanism that is a pure observer of the wait state
(``batch_shareable`` in the registry) combined with ``recovery="none"``,
detection has **zero feedback** into the network:

* ``NoRecovery.recover`` is a no-op, so a detected worm keeps its
  channels exactly like an undetected one;
* G/P flags are read only by the detector — routing and flit movement
  never consult them — so G/P state cannot steer the trajectory;
* probe sessions live in a dedicated out-of-band phase and never touch
  routing or channel state;
* failed routing attempts draw nothing from the RNG.

Hence the *flit-level* trajectory — channel occupancy, inactivity
counters, RNG stream, ground-truth sweeps — is identical for every
cell, across thresholds **and mechanisms**.  What is *not* identical is
the per-run detector bookkeeping: a reference run skips every detector
call of a marked message, which suppresses that message's later
first-attempt G/P writes and probe-launch armings, and which messages
are marked when differs per cell.  :class:`BatchObserver` therefore
keeps all marking-coupled state per cell:

* the NDM G/P flag per input channel as a K-bit mask (bit r set == cell
  r sees G), updated under the reference's exact suppression rule;
* one pending mask per message (bit r clear == cell r has detected it),
  which gates every family's predicate and every probe cell's cadence;
* per-cell probe launch heaps and transports whose "already marked"
  reads go through the ``_marked`` seam narrowed to the cell's bit.

Detection predicates are evaluated per family over the shared state:
the ndm/pdm ladders share one min-feasible-inactivity reduction per
attempt (``hit = eligible & ((1 << count) - 1)`` with ``count`` from
``bisect_left``), header timeouts come from the blocking instant, the
periodic timeouts from injection/source instants, and probe victims
from the per-cell transports.  :class:`BatchSimulator` advances the
network **once** with that observer, then folds the shared run's
statistics into K per-cell
:class:`~repro.metrics.stats.SimulationStats` that are bit-identical to
K independent ``engine="event"`` runs (asserted by
``tests/network/test_batch_engine.py`` over the equivalence corpus and
gated again inside ``benchmarks/perf_report.py``).  When numpy is
present the shared trajectory's movement phase is additionally swapped
for the vectorized SoA implementation (``repro.network.vecmove``),
digest-asserted identical to the scalar phase.

Cell state is integer structure-of-arrays: the canonical cell order
(family order, then ascending threshold, then probe caps — giving each
family a contiguous bit range), the per-cell detection counters and the
channel-state snapshot (:func:`soa_snapshot`) are numpy
``int64``/``uint8`` arrays with a **fixed reduction order**, so results
are independent of ``PYTHONHASHSEED`` and host.  The trajectory itself
stays in the scalar object model: bit-exactness with the reference
engines is the contract, and the per-wake reductions are O(feasible
channels), far below numpy's per-call overhead.

DET004 (no numpy in kernel packages) is waived *only on the import
line* below: the rule protects the trajectory hot paths from
host-dependent float fast paths, and the effect analyzer proves the
stronger property directly — EFF003 verifies the observers' transitive
writes to shared network state are limited to G/P flags and the wake
surface, so the numpy use is integer-SoA/telemetry-only by
construction.  The import is also optional — without numpy the campaign
executor simply falls back to per-cell runs (``HAVE_NUMPY``), which
keeps the no-numpy tier-1 environment fully functional.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

try:
    import numpy as np  # repro-lint: disable=DET004 - integer SoA/telemetry only; EFF003 enforces this
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]

from repro.core.detector import DeadlockDetector
from repro.core.ndm import NewDetectionMechanism
from repro.core.pdm import PreviousDetectionMechanism
from repro.core.probe import ProbeDetection
from repro.core.timeout import (
    HeaderBlockedTimeout,
    InjectionStallTimeout,
    SourceAgeTimeout,
)
from repro.metrics.stats import SimulationStats
from repro.network.channel import PhysicalChannel, VirtualChannel
from repro.network.config import DetectorConfig, SimulationConfig
from repro.network.message import Message
from repro.network.probes import ProbeTransport
from repro.network.router import Router
from repro.network.simulator import Simulator
from repro.network.types import DetectionEvent, GPState, MessageStatus

#: Whether the vectorized batch backend is available on this host.
HAVE_NUMPY = np is not None

#: Cap on cells folded onto one shared trajectory.  The pending-cell
#: bitmasks are arbitrary-precision ints, so this is not a correctness
#: limit — it bounds observer state and keeps per-group wall time (and
#: therefore pool scheduling granularity) reasonable.
MAX_CELLS = 64

_G = GPState.GENERATE
_P = GPState.PROPAGATE

#: Canonical family order for cell ranks.  NDM first keeps the G/P
#: masks' bit range anchored at the low bits; the order (and ascending
#: thresholds within a family) is the fixed reduction order that makes
#: fold results independent of input ordering and PYTHONHASHSEED.
_FAMILY_ORDER = {
    NewDetectionMechanism.name: 0,
    PreviousDetectionMechanism.name: 1,
    HeaderBlockedTimeout.name: 2,
    SourceAgeTimeout.name: 3,
    InjectionStallTimeout.name: 4,
    ProbeDetection.name: 5,
}


def detector_cell_key(detector: DetectorConfig) -> Tuple[Any, ...]:
    """Hashable identity of one cell within a batch group.

    Cells equal under this key are behaviourally identical on a shared
    trajectory and fold to one rank: mechanism plus threshold, extended
    with the storm-guard caps for probe cells (the only mechanism with
    extra behavioural knobs; ``t1`` is group-uniform by the group key).
    """
    if detector.mechanism == ProbeDetection.name:
        return (
            detector.mechanism,
            int(detector.threshold),
            int(detector.probe_max_hops),
            int(detector.probe_max_outstanding),
        )
    return (detector.mechanism, int(detector.threshold))


def _cell_sort_key(key: Tuple[Any, ...]) -> Tuple[Any, ...]:
    return (_FAMILY_ORDER[key[0]],) + key[1:]


def batch_eligible(config: SimulationConfig) -> bool:
    """True when ``config``'s cell may join a shared trajectory.

    Requires every source of detection feedback to be absent: a
    mechanism declaring ``batch_shareable`` (every pure observer —
    ndm with simple promotion, pdm, the three timeouts, probe), no
    recovery, and a fault-free schedule (fault edges wake parked state
    conservatively, which is sound but makes per-cell telemetry — and
    conformance accounting — threshold-coupled).
    """
    # Imported here: repro.core.registry imports network.config, and a
    # module-level import back into repro.network would be cyclic.
    from repro.core.registry import batch_shareable

    return (
        batch_shareable(config.detector)
        and config.recovery == "none"
        and not config.faults
    )


def batch_group_key(config: SimulationConfig) -> str:
    """Canonical identity of a config modulo its detector cell.

    Two eligible configs with equal keys differ at most in the detection
    mechanism, its threshold, and the probe storm-guard caps, and may
    therefore join one :class:`BatchSimulator` group.  ``t1`` is *not*
    masked: the shared G/P dynamics are armed with one t1, so cells
    disagreeing on it must not share a trajectory.
    """
    payload = config.to_dict()
    payload["detector"] = dict(payload["detector"])
    payload["detector"]["mechanism"] = None
    payload["detector"]["threshold"] = None
    payload["detector"]["selective_promotion"] = None
    payload["detector"]["probe_max_hops"] = None
    payload["detector"]["probe_max_outstanding"] = None
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class _CellProbeTransport(ProbeTransport):
    """Probe transport whose marked test is one cell's pending bit.

    In the shared run nothing ever sets ``marked_deadlocked``, so the
    transport's staleness/progress/victim reads must instead consult
    whether *this cell* has already detected the message — exactly the
    reference run's view, where a marked message stales its session.
    """

    def __init__(
        self, max_hops: int, max_outstanding: int, owner: "BatchObserver", rank: int
    ) -> None:
        super().__init__(max_hops, max_outstanding)
        self._owner = owner
        self._rank = rank

    def _marked(self, message: Message) -> bool:
        pending = self._owner._pending.get(message.id, self._owner._full_mask)
        return not (pending >> self._rank & 1)


class _BatchProbeCell(ProbeDetection):
    """One probe cell's launch cadence and transport on the shared run.

    Driven by the owning :class:`BatchObserver`, never by the simulator
    directly: the owner forwards first-attempt armings gated on the
    cell's pending bit (the reference skips marked messages' hooks) and
    records the victims this cell's :meth:`probe_phase` returns.
    Counters stay in the per-cell transport — :meth:`_flush_counters`
    is disabled so the *shared* stats keep their zero defaults, and
    ``BatchObserver.fold_cell`` writes them into the cell's stats.
    """

    # EFF003 anchor: rides the shared trajectory like its owner, so its
    # transitive writes to shared network state must stay within the
    # G/P + wake surface (in fact it writes neither — probes are fully
    # out-of-band).
    shares_trajectory = True

    def __init__(
        self, owner: "BatchObserver", rank: int, cell: DetectorConfig
    ) -> None:
        super().__init__(
            cell.threshold,
            max_hops=cell.probe_max_hops,
            max_outstanding=cell.probe_max_outstanding,
        )
        self.rank = rank
        self._owner = owner
        self.transport = _CellProbeTransport(
            cell.probe_max_hops, cell.probe_max_outstanding, owner, rank
        )

    def arm_launch(self, message: Message, cycle: int) -> None:
        """Episode first-attempt arming (the reference's hook body)."""
        self._arm(message, cycle + self.threshold)

    def _marked(self, message: Message) -> bool:
        return self.transport._marked(message)

    def _flush_counters(self) -> None:
        """No-op: the owner folds transport counters per cell instead."""


class BatchObserver(NewDetectionMechanism):
    """K detector cells — across mechanisms — on one shared trajectory.

    Cells are canonicalized (deduplicated by :func:`detector_cell_key`,
    sorted family-first then ascending threshold) so each mechanism
    family owns a contiguous bit range of the per-message pending masks.
    The NDM G/P flag of each input channel is kept per cell as a K-bit
    mask, because the reference runs disagree on it: once cell r marks a
    message, that run skips the message's later detector calls, so its
    first-attempt G/P writes at subsequent hops never happen *in that
    run*.  The mask update rule mirrors this exactly — a first-attempt
    write by message ``m`` lands only in the cells still pending on
    ``m``, while channel-level events (routing success, lane release,
    reactivation promotion) land in all cells.  Every family's detection
    predicate is then tested per pending cell against the shared state,
    and detections are *recorded* per cell instead of marking the
    message: :meth:`on_blocked_attempt` always returns False, so the
    simulator never mutates the shared trajectory on behalf of any cell.
    """

    # Recorded detection events carry the *cell's* mechanism name (see
    # ``_record``); this name only labels the composite itself.
    name = "batch"

    # EFF003 anchor: this observer rides one trajectory shared by every
    # cell, so its writes to shared network objects must stay
    # cell-independent (G/P flags + wake surface only); everything
    # per-cell lives in the observer's own SoA masks.
    shares_trajectory = True

    # Narrowed per *instance* in ``__init__``: only groups holding a
    # periodic (source-age / injection-stall) or probe cell pay those
    # phases; the class-level True states the contract (PROTO001).
    needs_periodic_check = True
    has_probe_phase = True

    def __init__(self, cells: Sequence[DetectorConfig]) -> None:
        if np is None:  # pragma: no cover - executor gates on HAVE_NUMPY
            raise RuntimeError("the batch backend requires numpy")
        # Imported here to avoid a module-level cycle (see batch_eligible).
        from repro.core.registry import batch_shareable

        canonical: Dict[Tuple[Any, ...], DetectorConfig] = {}
        for cell in cells:
            if not batch_shareable(cell):
                raise ValueError(
                    f"detector cell {cell.mechanism!r} is not batch-shareable"
                )
            canonical.setdefault(detector_cell_key(cell), cell)
        if not canonical:
            raise ValueError("need at least one detector cell")
        if len(canonical) > MAX_CELLS:
            raise ValueError(
                f"{len(canonical)} cells exceed MAX_CELLS={MAX_CELLS}; chunk "
                "the group (the campaign executor does this automatically)"
            )
        ordered = sorted(canonical, key=_cell_sort_key)
        ndm_name = NewDetectionMechanism.name
        t1s = {
            int(canonical[key].t1) for key in ordered if key[0] == ndm_name
        }
        if len(t1s) > 1:
            raise ValueError(
                f"ndm cells disagree on t1 ({sorted(t1s)}); the shared G/P "
                "dynamics are armed with a single t1"
            )
        ndm_t1 = t1s.pop() if t1s else 1
        min_threshold = min(key[1] for key in ordered)
        # The composite reuses the NDM arming machinery; its own
        # threshold field is cosmetic, anchored so the t1 < t2 ctor
        # validation holds even for ndm-free groups.
        if ordered[0][0] == ndm_name:
            anchor = ordered[0][1]
        else:
            anchor = max(ndm_t1 + 1, min_threshold)
        super().__init__(threshold=anchor, t1=ndm_t1, selective_promotion=False)
        #: Canonical cells, rank order (family, then ascending threshold).
        self.cells: List[DetectorConfig] = [canonical[key] for key in ordered]
        self._rank_by_key: Dict[Tuple[Any, ...], int] = {
            key: rank for rank, key in enumerate(ordered)
        }
        self._cell_names: List[str] = [key[0] for key in ordered]
        k = len(ordered)
        self._k = k
        self._full_mask = (1 << k) - 1
        # Per-family contiguous bit ranges over the pending masks.
        self._ndm_base, self._ndm_ladder, self._ndm_mask = self._family(
            ndm_name, ordered
        )
        self._pdm_base, self._pdm_ladder, self._pdm_mask = self._family(
            PreviousDetectionMechanism.name, ordered
        )
        (
            self._timeout_base,
            self._timeout_ladder,
            self._timeout_mask,
        ) = self._family(HeaderBlockedTimeout.name, ordered)
        self._sa_base, self._sa_ladder, self._sa_mask = self._family(
            SourceAgeTimeout.name, ordered
        )
        self._is_base, self._is_ladder, self._is_mask = self._family(
            InjectionStallTimeout.name, ordered
        )
        #: Per-cell probe units (rank order), driven from the hooks below.
        self._probe_units: List[_BatchProbeCell] = []
        self._probe_unit_by_rank: Dict[int, _BatchProbeCell] = {}
        for rank, key in enumerate(ordered):
            if key[0] == ProbeDetection.name:
                unit = _BatchProbeCell(self, rank, canonical[key])
                self._probe_units.append(unit)
                self._probe_unit_by_rank[rank] = unit
        # Instance-level gates: the simulator caches these at build time.
        self.needs_periodic_check = bool(self._sa_mask or self._is_mask)
        self.has_probe_phase = bool(self._probe_units)
        #: message id -> bitmask of cells that have not yet detected it.
        self._pending: Dict[int, int] = {}
        # Per-cell counters, SoA over the ranks.  Plain int lists, not
        # numpy: hits bump one or two ranks at a time, where a python
        # index beats fancy-index dispatch by an order of magnitude.
        self._detections = [0] * k
        self._detections_measured = [0] * k
        self._true = [0] * k
        self._false = [0] * k
        self._unclassified = [0] * k
        self._events: List[List[DetectionEvent]] = [[] for _ in range(k)]
        #: channel index -> K-bit per-cell G/P mask (bits within the ndm
        #: family range; bit r set == G in cell r); sized in
        #: :meth:`attach`, all-P like the reference.
        self._gp_mask: List[int] = []

    @staticmethod
    def _family(
        mechanism: str, ordered: List[Tuple[Any, ...]]
    ) -> Tuple[int, List[int], int]:
        """(base rank, ascending threshold ladder, global bit mask)."""
        ranks = [r for r, key in enumerate(ordered) if key[0] == mechanism]
        if not ranks:
            return 0, [], 0
        base = ranks[0]
        ladder = [int(ordered[r][1]) for r in ranks]
        return base, ladder, ((1 << len(ranks)) - 1) << base

    @property
    def thresholds(self) -> List[int]:
        """Cell thresholds in rank order (telemetry, soa snapshots)."""
        return [int(cell.threshold) for cell in self.cells]

    def rank_of_cell(self, detector: DetectorConfig) -> int:
        """Canonical rank of a cell (raises if absent from the group)."""
        return self._rank_by_key[detector_cell_key(detector)]

    def rank_of(self, threshold: int) -> int:
        """Rank of a threshold in a single-mechanism group (legacy API)."""
        return self.thresholds.index(int(threshold))

    def attach(self, sim: "Simulator") -> None:  # type: ignore[override]
        self._gp_mask = [0] * len(sim.channels)
        if self._ndm_mask:
            super().attach(sim)  # arm the I-flag reset hooks, all-P flags
        else:
            DeadlockDetector.attach(self, sim)
        for unit in self._probe_units:
            unit.attach(sim)

    # ------------------------------------------------------------------
    # Per-cell G/P flag maintenance (ndm family)
    # ------------------------------------------------------------------
    def _first_attempt(
        self, message: Message, input_pc: PhysicalChannel, cycle: int
    ) -> None:
        """First-attempt G/P rule, suppressed per cell like the reference.

        A reference run whose cell has already marked ``message`` skips
        this call entirely, so the write lands only in the ndm cells
        still pending on the message.  The branch taken (free lane /
        advancing output / all blocked) depends only on shared
        trajectory state and is therefore the same in every cell.  The
        shared ``input_pc.gp`` keeps the never-marked dynamics so
        channel-level hooks can cheaply skip all-G channels.
        """
        pending = self._pending.get(message.id, self._full_mask) & self._ndm_mask
        idx = input_pc.index
        if input_pc.occupied_count < len(input_pc.vcs):
            input_pc.gp = _P
            self._gp_mask[idx] &= ~pending
            return
        t1 = self.t1
        for pc in message.feasible_pcs:
            if pc.inactivity(cycle) <= t1:
                # Promotion for the unsuppressed cells; the wake below is
                # a superset of each reference's (spurious wakes re-park).
                self._gp_mask[idx] |= pending
                input_pc.gp = _G
                self._wake_header_waiters(input_pc)
                return
        input_pc.gp = _P
        self._gp_mask[idx] &= ~pending

    def _promote(self, input_pc: PhysicalChannel) -> None:  # type: ignore[override]
        """Channel-level promotion (I-flag reset hook): every cell to G."""
        self._gp_mask[input_pc.index] = self._ndm_mask
        input_pc.gp = _G
        self._wake_header_waiters(input_pc)

    def _simple_reset_hook(
        self, targets: Tuple[PhysicalChannel, ...]
    ) -> Callable[[PhysicalChannel, int], None]:
        """Reset hook that also fires when only a *cell's* flag is P.

        The parent's hook short-circuits on the shared flag already
        being G, which would skip channels where some cell still holds P
        (suppressed writes diverge the two).
        """
        promote = self._promote
        gp_mask = self._gp_mask
        full = self._ndm_mask

        def hook(pc: PhysicalChannel, cycle: int) -> None:
            for input_pc in targets:
                if input_pc.gp is not _G or gp_mask[input_pc.index] != full:
                    promote(input_pc)

        return hook

    @staticmethod
    def _wake_header_waiters(input_pc: PhysicalChannel) -> None:
        if input_pc.header_waiters:
            box = input_pc.wake_box
            for m in input_pc.header_waiters:
                if m.route_asleep:
                    m.route_asleep = False
                    box[0] -= 1

    def on_message_routed(self, message: Message, cycle: int) -> None:
        """Routing success resets the input flag to P in every cell
        (the reference calls this hook even for marked messages)."""
        if not self._ndm_mask:
            return
        input_pc = message.input_pc
        if input_pc is not None:
            self._gp_mask[input_pc.index] = 0
            input_pc.gp = _P

    def on_vc_released(self, vc: VirtualChannel, cycle: int) -> None:
        """Lane release resets the flag to P in every cell."""
        if not self._ndm_mask:
            return
        self._gp_mask[vc.pc.index] = 0
        vc.pc.gp = _P

    # ------------------------------------------------------------------
    # Routing-attempt families (ndm / pdm / header timeout / probe arm)
    # ------------------------------------------------------------------
    @staticmethod
    def _min_feasible_inactivity(message: Message, cycle: int) -> Optional[int]:
        """Shared reduction for the inactivity-ladder families."""
        min_inact: Optional[int] = None
        for pc in message.feasible_pcs:
            value = pc.inactivity(cycle)
            if min_inact is None or value < min_inact:
                min_inact = value
        return min_inact

    def on_blocked_attempt(
        self, message: Message, router: Router, cycle: int, first_attempt: bool
    ) -> bool:
        input_pc = message.input_pc
        if input_pc is None:  # pragma: no cover - headers always hold a VC
            return False
        pending = self._pending.get(message.id, self._full_mask)
        hit = 0
        # Sentinel -1: not yet computed (None means no feasible output,
        # in which case every inactivity-ladder predicate holds).
        min_inact: Optional[int] = -1
        if self._ndm_mask:
            if first_attempt:
                self._first_attempt(message, input_pc, cycle)
            else:
                # Cells that can detect now: still pending *and* seeing G.
                eligible = pending & self._gp_mask[input_pc.index]
                if eligible:
                    min_inact = self._min_feasible_inactivity(message, cycle)
                    count = (
                        len(self._ndm_ladder)
                        if min_inact is None
                        else bisect_left(self._ndm_ladder, min_inact)
                    )
                    hit |= eligible & (((1 << count) - 1) << self._ndm_base)
        if self._pdm_mask:
            # PDM is stateless across attempts and — unlike ndm — the
            # reference evaluates it on *first* attempts too.
            pdm_pending = pending & self._pdm_mask
            if pdm_pending:
                if min_inact == -1:
                    min_inact = self._min_feasible_inactivity(message, cycle)
                count = (
                    len(self._pdm_ladder)
                    if min_inact is None
                    else bisect_left(self._pdm_ladder, min_inact)
                )
                hit |= pdm_pending & (((1 << count) - 1) << self._pdm_base)
        if self._timeout_mask:
            timeout_pending = pending & self._timeout_mask
            if timeout_pending and message.blocked_since is not None:
                count = bisect_left(
                    self._timeout_ladder, cycle - message.blocked_since
                )
                hit |= timeout_pending & (
                    ((1 << count) - 1) << self._timeout_base
                )
        if first_attempt:
            for unit in self._probe_units:
                if pending >> unit.rank & 1:
                    unit.arm_launch(message, cycle)
        if hit:
            self._pending[message.id] = pending & ~hit
            self._record(message, cycle, hit)
        return False  # never mark: the trajectory is shared

    def blocked_deadline(self, message: Message, cycle: int) -> Optional[int]:
        """Composite deadline: the earliest any pending cell can detect.

        None-aware minimum over the attempt-driven families.  For the
        inactivity ladders (ndm eligible = pending *and* seeing G; pdm
        just pending) the per-cell deadline is ``max(cycle+1, A+t+1)``
        with ``A`` the latest occupied feasible channel's counter base —
        unless some feasible channel is frozen at or below t, in which
        case that cell cannot detect before a re-occupation (itself a
        wakeup event).  Each family's deadline is monotone in t, so its
        minimum is realized by the smallest pending threshold; cells
        seeing P become eligible only through a promotion, which wakes
        the parked header itself.  Header timeouts are exact arithmetic
        on the blocking instant.  Periodic cells (source-age,
        injection-stall) detect in the checks phase independent of
        parking, and probe cells detect in the probe phase — their
        reference cadence wakeups are behaviour-free failed attempts
        (engine counters only), so both contribute None here.  Waking at
        the composite, failing the attempt and re-parking walks the
        chain until every cell's exact first-detection cycle has been
        visited.
        """
        input_pc = message.input_pc
        if input_pc is None:
            return None
        pending = self._pending.get(message.id, self._full_mask)
        if not pending:
            return None  # every cell already detected: sleep like marked
        best: Optional[int] = None
        if self._ndm_mask:
            eligible = pending & self._gp_mask[input_pc.index]
            if eligible:
                t_low = self._ndm_ladder[
                    (eligible & -eligible).bit_length() - 1 - self._ndm_base
                ]
                best = self._counter_family_deadline(message, cycle, t_low)
        if self._pdm_mask:
            pdm_pending = pending & self._pdm_mask
            if pdm_pending:
                t_low = self._pdm_ladder[
                    (pdm_pending & -pdm_pending).bit_length()
                    - 1
                    - self._pdm_base
                ]
                d = self._counter_family_deadline(message, cycle, t_low)
                if d is not None and (best is None or d < best):
                    best = d
        if self._timeout_mask:
            timeout_pending = pending & self._timeout_mask
            if timeout_pending and message.blocked_since is not None:
                t_low = self._timeout_ladder[
                    (timeout_pending & -timeout_pending).bit_length()
                    - 1
                    - self._timeout_base
                ]
                d = message.blocked_since + t_low + 1
                if d <= cycle:
                    d = cycle + 1
                if best is None or d < best:
                    best = d
        return best

    @staticmethod
    def _counter_family_deadline(
        message: Message, cycle: int, t_low: int
    ) -> Optional[int]:
        """Earliest all-feasible-inactivity-above-t crossing for ``t_low``."""
        base: Optional[int] = None  # A over occupied feasible channels
        floor: Optional[int] = None  # F: min frozen inactivity
        for pc in message.feasible_pcs:
            if pc.occupied_count:
                start = pc.last_flit_cycle
                if pc.active_since > start:
                    start = pc.active_since
                start += pc.counter_lag
                if base is None or start > base:
                    base = start
            else:
                frozen = pc.inactivity(cycle)
                if floor is None or frozen < floor:
                    floor = frozen
        if floor is not None and t_low >= floor:
            return None  # cannot cross before a re-occupation (a wake)
        if base is None:
            return cycle + 1  # all feasible channels frozen above t_low
        deadline = base + t_low + 1
        return deadline if deadline > cycle else cycle + 1

    # ------------------------------------------------------------------
    # Periodic families (source-age / injection-stall)
    # ------------------------------------------------------------------
    def periodic_check(
        self, active_messages: Iterable[Message], cycle: int
    ) -> List[Message]:
        """Record source-side timeout hits per cell; mark nothing."""
        sa_mask = self._sa_mask
        is_mask = self._is_mask
        in_network = MessageStatus.IN_NETWORK
        for m in active_messages:
            if m.status is not in_network:
                continue
            pending = self._pending.get(m.id, self._full_mask)
            hit = 0
            if sa_mask:
                sa_pending = pending & sa_mask
                if sa_pending and m.inject_cycle is not None:
                    count = bisect_left(
                        self._sa_ladder, cycle - m.inject_cycle
                    )
                    hit |= sa_pending & (((1 << count) - 1) << self._sa_base)
            if is_mask:
                is_pending = pending & is_mask
                if (
                    is_pending
                    and m.flits_at_source > 0
                    and m.last_source_flit_cycle is not None
                ):
                    count = bisect_left(
                        self._is_ladder, cycle - m.last_source_flit_cycle
                    )
                    hit |= is_pending & (((1 << count) - 1) << self._is_base)
            if hit:
                self._pending[m.id] = pending & ~hit
                self._record(m, cycle, hit)
        return []

    # ------------------------------------------------------------------
    # Probe family
    # ------------------------------------------------------------------
    def probe_phase(self, cycle: int) -> List[Message]:
        """Advance every cell's probes; record victims per cell."""
        in_network = MessageStatus.IN_NETWORK
        for unit in self._probe_units:
            for victim in unit.probe_phase(cycle):
                # The reference applies the same screen before handling
                # a probe victim; the pending bit is the per-cell
                # "not yet marked".
                if victim.status is not in_network:
                    continue
                pending = self._pending.get(victim.id, self._full_mask)
                if not (pending >> unit.rank & 1):
                    continue
                self._pending[victim.id] = pending & ~(1 << unit.rank)
                self._record(victim, cycle, 1 << unit.rank)
        return []

    # ------------------------------------------------------------------
    def _record(self, message: Message, cycle: int, hit: int) -> None:
        """Append one detection event per hit cell (ascending ranks)."""
        sim = self.sim
        truly: Optional[bool] = None
        if sim.config.ground_truth_on_detection:
            truly = message in sim._truth_at(cycle)
        node = message.header_router()
        if node is None:  # pragma: no cover - blocked headers sit in-network
            node = message.inject_node
        measuring = sim.measuring
        if truly is None:
            classified = self._unclassified
        elif truly:
            classified = self._true
        else:
            classified = self._false
        mask = hit
        while mask:
            low = mask & -mask
            rank = low.bit_length() - 1
            mask ^= low
            self._detections[rank] += 1
            if measuring:
                self._detections_measured[rank] += 1
            classified[rank] += 1
            self._events[rank].append(
                DetectionEvent(
                    cycle=cycle,
                    message_id=message.id,
                    node=node,
                    mechanism=self._cell_names[rank],
                    truly_deadlocked=truly,
                )
            )

    def fold_cell(self, shared: SimulationStats, rank: int) -> SimulationStats:
        """Per-cell stats for canonical rank ``rank`` from the shared run.

        Only the detection family differs between cells; with
        ``recovery="none"`` a message is detected at most once per cell,
        so event counts equal distinct-message counts.  Probe cells
        additionally get their transport counters (zero on the shared
        stats: the per-cell units never flush).
        """
        detections = int(self._detections[rank])
        detections_measured = int(self._detections_measured[rank])
        changes: Dict[str, Any] = dict(
            detections=detections,
            detections_measured=detections_measured,
            messages_detected=detections,
            messages_detected_measured=detections_measured,
            true_detections=int(self._true[rank]),
            false_detections=int(self._false[rank]),
            unclassified_detections=int(self._unclassified[rank]),
            detection_events=list(self._events[rank]),
            phase_time=dict(shared.phase_time),
            engine_counters=dict(shared.engine_counters),
        )
        unit = self._probe_unit_by_rank.get(rank)
        if unit is not None:
            transport = unit.transport
            changes.update(
                probe_launches=transport.launches,
                probe_hops=transport.hops,
                probe_cycle_detections=transport.cycle_detections,
                probe_deadend_detections=transport.deadend_detections,
                probe_dropped_progress=transport.dropped_progress,
                probe_dropped_dedupe=transport.dropped_dedupe,
                probe_dropped_election=transport.dropped_election,
                probe_dropped_hops=transport.dropped_hops,
                probe_dropped_overflow=transport.dropped_overflow,
                probe_peak_outstanding=transport.peak_outstanding,
            )
        return dataclasses.replace(shared, **changes)

    def describe(self) -> str:
        cells = ", ".join(
            f"{cell.mechanism}:{cell.threshold}" for cell in self.cells
        )
        return f"batch[{cells}]"


#: Retired name from the ndm-only backend (PR 7); kept as an alias so
#: external scripts pinning the old symbol keep importing.
BatchNDMObserver = BatchObserver


class BatchSimulator:
    """One shared trajectory serving many detector cells.

    Args:
        config: any cell's config (its detector cell rides along unless
            superseded); must satisfy :func:`batch_eligible`.
        thresholds: legacy sweep form — the cells are ``config.detector``
            at each threshold, any order, duplicates allowed.
        cells: explicit per-cell detector configs (mixed mechanisms);
            exactly one of ``thresholds``/``cells`` must be given.
        vectorize: swap in the vectorized SoA movement phase
            (:mod:`repro.network.vecmove`) for the shared run; the
            scalar phase is kept when False or when numpy is absent.
            Digest-asserted identical either way.

    Results align with the given cell sequence (duplicates share the
    folded per-cell stats object).
    """

    def __init__(
        self,
        config: SimulationConfig,
        thresholds: Optional[Sequence[int]] = None,
        *,
        cells: Optional[Sequence[DetectorConfig]] = None,
        vectorize: bool = True,
    ) -> None:
        if np is None:
            raise RuntimeError(
                "the batch backend requires numpy (HAVE_NUMPY is False); "
                "run the cells individually instead"
            )
        if (thresholds is None) == (cells is None):
            raise ValueError("pass exactly one of thresholds= or cells=")
        if not batch_eligible(config):
            raise ValueError(
                "config is not batch-shareable: needs a batch_shareable "
                "detector mechanism, recovery='none' and no fault schedule"
            )
        if cells is None:
            assert thresholds is not None
            cell_list = [
                dataclasses.replace(config.detector, threshold=int(t))
                for t in thresholds
            ]
        else:
            cell_list = list(cells)
        self.cells: List[DetectorConfig] = cell_list
        self.thresholds = [int(cell.threshold) for cell in cell_list]
        self.observer = BatchObserver(cell_list)
        run_config = config.replace(engine="batch")
        # The injected observer supersedes the registry detector; anchor
        # the config's cosmetic cell at the canonical first rank.
        run_config.detector.threshold = self.observer.cells[0].threshold
        self.sim = Simulator(run_config, detector=self.observer)
        self.vectorized = False
        if vectorize:
            from repro.network.vecmove import install_vectorized_movement

            self.vectorized = install_vectorized_movement(self.sim)

    def run(self) -> List[SimulationStats]:
        """Advance the shared trajectory; return stats aligned with the
        constructor's cell sequence (duplicates get equal copies)."""
        shared = self.sim.run()
        observer = self.observer
        folded = {
            rank: observer.fold_cell(shared, rank)
            for rank in range(len(observer.cells))
        }
        return [folded[observer.rank_of_cell(cell)] for cell in self.cells]


def run_batch(
    config: SimulationConfig, thresholds: Sequence[int]
) -> List[SimulationStats]:
    """Convenience wrapper: one shared run over a threshold sweep."""
    return BatchSimulator(config, thresholds).run()


def run_batch_cells(
    config: SimulationConfig, cells: Sequence[DetectorConfig]
) -> List[SimulationStats]:
    """Convenience wrapper: one shared run over explicit detector cells."""
    return BatchSimulator(config, cells=cells).run()


# ----------------------------------------------------------------------
# SoA channel-state snapshot (determinism digests, telemetry)
# ----------------------------------------------------------------------

def soa_snapshot(
    sim: Simulator, cycle: int, thresholds: Sequence[int] = ()
) -> Dict[str, Any]:
    """Channel state as integer structure-of-arrays (channel-index order).

    Returns numpy arrays — occupancy counts, free/usable lane masks,
    inactivity counters, G/P flags, and per-threshold I/DT flags packed
    to bits — in a fixed order independent of ``PYTHONHASHSEED``, so
    :func:`soa_digest` is a stable fingerprint of simulated state.
    """
    if np is None:
        raise RuntimeError("soa_snapshot requires numpy")
    channels = sim.channels
    n = len(channels)
    occupied = np.empty(n, dtype=np.int64)
    free_mask = np.empty(n, dtype=np.int64)
    usable_mask = np.empty(n, dtype=np.int64)
    inactivity = np.empty(n, dtype=np.int64)
    gp = np.empty(n, dtype=np.uint8)
    for i, pc in enumerate(channels):
        occupied[i] = pc.occupied_count
        free_mask[i] = pc.free_mask
        usable_mask[i] = pc.usable_mask
        inactivity[i] = pc.inactivity(cycle)
        gp[i] = 1 if pc.gp is _G else 0
    ladder = np.asarray(sorted({int(t) for t in thresholds}), dtype=np.int64)
    snapshot: Dict[str, Any] = {
        "occupied": occupied,
        "free_mask": free_mask,
        "usable_mask": usable_mask,
        "inactivity": inactivity,
        "gp": gp,
        "thresholds": ladder,
    }
    if ladder.size:
        # flags[r, c] == channel c's counter exceeds ladder[r]; packed to
        # bits row-major, the paper's I/DT flag matrix in SoA form.
        flags = inactivity[np.newaxis, :] > ladder[:, np.newaxis]
        snapshot["dt_flags"] = np.packbits(flags, axis=1)
    return snapshot


def soa_digest(snapshot: Dict[str, Any]) -> str:
    """SHA-256 over a snapshot's arrays in fixed key order."""
    if np is None:  # pragma: no cover - callers hold a snapshot already
        raise RuntimeError("soa_digest requires numpy")
    digest = hashlib.sha256()
    for key in sorted(snapshot):
        array = np.ascontiguousarray(snapshot[key])
        digest.update(key.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def plan_batches(
    configs: Sequence[SimulationConfig],
) -> Tuple[List[List[int]], List[int]]:
    """Group config indices into shareable batches (plus leftovers).

    Returns ``(groups, singles)`` of indices into ``configs``: each
    group holds >= 2 eligible configs equal modulo their detector cell
    (chunked to :data:`MAX_CELLS` *distinct* cells); everything else —
    unshareable configs, lone group members, numpy-less hosts — lands in
    ``singles``.  Order within groups and singles follows the input, so
    planning is deterministic — and because fold results are
    bit-identical to per-cell runs regardless of which cells share a
    trajectory, any partition (e.g. a ``--resume`` regrouping after a
    partial run) produces identical per-cell outcomes.
    """
    singles: List[int] = []
    if not HAVE_NUMPY:
        return [], list(range(len(configs)))
    by_key: Dict[str, List[int]] = {}
    for i, config in enumerate(configs):
        if config.engine == "batch" and batch_eligible(config):
            by_key.setdefault(batch_group_key(config), []).append(i)
        else:
            singles.append(i)
    groups: List[List[int]] = []
    for key in sorted(by_key):
        members = by_key[key]
        if len(members) < 2:
            singles.extend(members)
            continue
        # Chunk by distinct cells; duplicates ride with their cell.
        chunk: List[int] = []
        seen: set = set()
        for i in members:
            ck = detector_cell_key(configs[i].detector)
            if ck not in seen and len(seen) == MAX_CELLS:
                groups.append(chunk)
                chunk, seen = [], set()
            seen.add(ck)
            chunk.append(i)
        if len(chunk) >= 2:
            groups.append(chunk)
        else:
            singles.extend(chunk)
    singles.sort()
    return groups, singles
