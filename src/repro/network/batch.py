"""Batch backend: many threshold cells of a campaign over one trajectory.

A campaign grid (see ``repro.experiments.spec``) re-runs the *same*
network — topology, workload, seed, windows — once per detection
threshold.  For NDM with the paper's simple promotion rule and
``recovery="none"``, detection has **zero feedback** into the network:

* ``NoRecovery.recover`` is a no-op, so a detected worm keeps its
  channels exactly like an undetected one;
* G/P flags are read only by the detector — routing and flit movement
  never consult them — so G/P state cannot steer the trajectory;
* failed routing attempts draw nothing from the RNG.

Hence the *flit-level* trajectory — channel occupancy, inactivity
counters, RNG stream, ground-truth sweeps — is identical for every
threshold.  The G/P flags are **not**: a reference run skips every
detector call of a marked message, which suppresses that message's
*first-attempt* G/P writes at later hops, and which messages are marked
when depends on the threshold.  :class:`BatchNDMObserver` therefore
keeps the G/P flag per channel *per cell*, as a K-bit mask updated under
the reference's exact suppression rule (a write by message ``m`` lands
only in cells that have not yet detected ``m``; channel-level resets and
reactivation promotions land in every cell).  :class:`BatchSimulator`
advances the network **once** with that observer, then folds the shared
run's statistics into K per-cell
:class:`~repro.metrics.stats.SimulationStats` that are bit-identical to
K independent ``engine="event"`` runs (asserted by
``tests/network/test_batch_engine.py`` over the equivalence corpus and
gated again inside ``benchmarks/perf_report.py``).

Cell state is integer structure-of-arrays: the sorted threshold ladder,
the per-cell detection counters and the channel-state snapshot
(:func:`soa_snapshot` — occupancy, free-lane masks, inactivity counters,
I/DT/G-P flags as packed arrays) are numpy ``int64``/``uint8`` arrays
with a **fixed reduction order** — cells are processed in ascending
threshold order, channels in index order — so results are independent of
``PYTHONHASHSEED`` and host.  The trajectory itself stays in the scalar
object model: bit-exactness with the reference engines is the contract,
and the per-wake reductions are O(feasible channels), far below numpy's
per-call overhead.

DET004 (no numpy in kernel packages) is waived *only on the import
line* below: the rule protects the trajectory hot paths from
host-dependent float fast paths, and the effect analyzer now proves the
stronger property directly — EFF003 verifies the observer's transitive
writes to shared network state are limited to G/P flags and the wake
surface, so the numpy use is integer-SoA/telemetry-only by
construction.  The import is also optional — without numpy the campaign
executor simply falls back to per-cell runs (``HAVE_NUMPY``), which
keeps the no-numpy tier-1 environment fully functional.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

try:
    import numpy as np  # repro-lint: disable=DET004 - integer SoA/telemetry only; EFF003 enforces this
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]

from repro.core.ndm import NewDetectionMechanism
from repro.metrics.stats import SimulationStats
from repro.network.channel import PhysicalChannel, VirtualChannel
from repro.network.config import SimulationConfig
from repro.network.message import Message
from repro.network.router import Router
from repro.network.simulator import Simulator
from repro.network.types import DetectionEvent, GPState

#: Whether the vectorized batch backend is available on this host.
HAVE_NUMPY = np is not None

#: Cap on cells folded onto one shared trajectory.  The pending-cell
#: bitmasks are arbitrary-precision ints, so this is not a correctness
#: limit — it bounds observer state and keeps per-group wall time (and
#: therefore pool scheduling granularity) reasonable.
MAX_CELLS = 64

_G = GPState.GENERATE
_P = GPState.PROPAGATE


def batch_eligible(config: SimulationConfig) -> bool:
    """True when ``config``'s cells may share one trajectory.

    Requires every source of detection feedback to be absent: NDM with
    the simple promotion rule (the registry's ``batch_shareable``
    criterion), no recovery, and a fault-free schedule (fault edges wake
    parked state conservatively, which is sound but makes per-cell
    telemetry — and conformance accounting — threshold-coupled).
    """
    # Imported here: repro.core.registry imports network.config, and a
    # module-level import back into repro.network would be cyclic.
    from repro.core.registry import batch_shareable

    return (
        batch_shareable(config.detector)
        and config.recovery == "none"
        and not config.faults
    )


def batch_group_key(config: SimulationConfig) -> str:
    """Canonical identity of a config modulo its detection threshold.

    Two eligible configs with equal keys differ at most in
    ``detector.threshold`` and may therefore join one
    :class:`BatchSimulator` group.
    """
    payload = config.to_dict()
    payload["detector"] = dict(payload["detector"])
    payload["detector"]["threshold"] = None
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class BatchNDMObserver(NewDetectionMechanism):
    """NDM evaluated against K thresholds on one shared trajectory.

    The G/P flag of each input channel is kept per cell as a K-bit mask
    (bit r set == cell r sees G), because the reference runs disagree on
    it: once cell r marks a message, that run skips the message's later
    detector calls, so its first-attempt G/P writes at subsequent hops
    never happen *in that run*.  The mask update rule mirrors this
    exactly — a first-attempt write by message ``m`` lands only in the
    cells still pending on ``m``, while channel-level events (routing
    success, lane release, reactivation promotion) land in all cells.
    The detection predicate ``gp == G and min feasible inactivity > t2``
    is then tested per pending cell against the shared counters.
    Detections are *recorded* per cell instead of marking the message:
    :meth:`on_blocked_attempt` always returns False, so the simulator
    never mutates the shared trajectory on behalf of any one cell.
    """

    # Recorded detection events must be indistinguishable from the
    # reference mechanism's (DetectionEvent.mechanism, tracer lines).
    name = "ndm"

    # EFF003 anchor: this observer rides one trajectory shared by every
    # threshold cell, so its writes to shared network objects must stay
    # threshold-independent (G/P flags + wake surface only); everything
    # per-cell lives in the observer's own SoA masks.
    shares_trajectory = True

    def __init__(self, thresholds: Sequence[int], t1: int = 1) -> None:
        if np is None:  # pragma: no cover - executor gates on HAVE_NUMPY
            raise RuntimeError("the batch backend requires numpy")
        ladder = sorted({int(t) for t in thresholds})
        if not ladder:
            raise ValueError("need at least one threshold")
        if len(ladder) > MAX_CELLS:
            raise ValueError(
                f"{len(ladder)} cells exceed MAX_CELLS={MAX_CELLS}; chunk "
                "the group (the campaign executor does this automatically)"
            )
        # The smallest threshold is the binding t1 < t2 constraint.
        super().__init__(threshold=ladder[0], t1=t1, selective_promotion=False)
        #: Ascending, deduplicated threshold ladder (the reduction order).
        self.thresholds: List[int] = ladder
        k = len(ladder)
        self._k = k
        self._full_mask = (1 << k) - 1
        #: message id -> bitmask of cells that have not yet detected it
        #: (bit r == rank r in the ascending ladder).
        self._pending: Dict[int, int] = {}
        # Per-cell counters, SoA over the ladder (int64, rank-indexed).
        self._detections = np.zeros(k, dtype=np.int64)
        self._detections_measured = np.zeros(k, dtype=np.int64)
        self._true = np.zeros(k, dtype=np.int64)
        self._false = np.zeros(k, dtype=np.int64)
        self._unclassified = np.zeros(k, dtype=np.int64)
        self._events: List[List[DetectionEvent]] = [[] for _ in range(k)]
        #: channel index -> K-bit per-cell G/P mask (bit r set == G in
        #: cell r); sized in :meth:`attach`, all-P like the reference.
        self._gp_mask: List[int] = []

    def rank_of(self, threshold: int) -> int:
        """Ladder rank of a threshold (raises if absent)."""
        return self.thresholds.index(int(threshold))

    def attach(self, sim: "Simulator") -> None:  # type: ignore[override]
        self._gp_mask = [0] * len(sim.channels)
        super().attach(sim)

    # ------------------------------------------------------------------
    # Per-cell G/P flag maintenance
    # ------------------------------------------------------------------
    def _first_attempt(
        self, message: Message, input_pc: PhysicalChannel, cycle: int
    ) -> None:
        """First-attempt G/P rule, suppressed per cell like the reference.

        A reference run whose cell has already marked ``message`` skips
        this call entirely, so the write lands only in the cells still
        pending on the message.  The branch taken (free lane / advancing
        output / all blocked) depends only on shared trajectory state
        and is therefore the same in every cell.  The shared
        ``input_pc.gp`` keeps the never-marked dynamics so channel-level
        hooks can cheaply skip all-G channels.
        """
        pending = self._pending.get(message.id, self._full_mask)
        idx = input_pc.index
        if input_pc.occupied_count < len(input_pc.vcs):
            input_pc.gp = _P
            self._gp_mask[idx] &= ~pending
            return
        t1 = self.t1
        for pc in message.feasible_pcs:
            if pc.inactivity(cycle) <= t1:
                # Promotion for the unsuppressed cells; the wake below is
                # a superset of each reference's (spurious wakes re-park).
                self._gp_mask[idx] |= pending
                input_pc.gp = _G
                self._wake_header_waiters(input_pc)
                return
        input_pc.gp = _P
        self._gp_mask[idx] &= ~pending

    def _promote(self, input_pc: PhysicalChannel) -> None:  # type: ignore[override]
        """Channel-level promotion (I-flag reset hook): every cell to G."""
        self._gp_mask[input_pc.index] = self._full_mask
        input_pc.gp = _G
        self._wake_header_waiters(input_pc)

    def _simple_reset_hook(
        self, targets: Tuple[PhysicalChannel, ...]
    ) -> Callable[[PhysicalChannel, int], None]:
        """Reset hook that also fires when only a *cell's* flag is P.

        The parent's hook short-circuits on the shared flag already
        being G, which would skip channels where some cell still holds P
        (suppressed writes diverge the two).
        """
        promote = self._promote
        gp_mask = self._gp_mask
        full = self._full_mask

        def hook(pc: PhysicalChannel, cycle: int) -> None:
            for input_pc in targets:
                if input_pc.gp is not _G or gp_mask[input_pc.index] != full:
                    promote(input_pc)

        return hook

    @staticmethod
    def _wake_header_waiters(input_pc: PhysicalChannel) -> None:
        if input_pc.header_waiters:
            box = input_pc.wake_box
            for m in input_pc.header_waiters:
                if m.route_asleep:
                    m.route_asleep = False
                    box[0] -= 1

    def on_message_routed(self, message: Message, cycle: int) -> None:
        """Routing success resets the input flag to P in every cell
        (the reference calls this hook even for marked messages)."""
        input_pc = message.input_pc
        if input_pc is not None:
            self._gp_mask[input_pc.index] = 0
        super().on_message_routed(message, cycle)

    def on_vc_released(self, vc: VirtualChannel, cycle: int) -> None:
        """Lane release resets the flag to P in every cell."""
        self._gp_mask[vc.pc.index] = 0
        super().on_vc_released(vc, cycle)

    # ------------------------------------------------------------------
    def on_blocked_attempt(
        self, message: Message, router: Router, cycle: int, first_attempt: bool
    ) -> bool:
        input_pc = message.input_pc
        if input_pc is None:  # pragma: no cover - headers always hold a VC
            return False
        if first_attempt:
            self._first_attempt(message, input_pc, cycle)
            return False
        pending = self._pending.get(message.id, self._full_mask)
        # Cells that can detect now: still pending *and* seeing G.
        eligible = pending & self._gp_mask[input_pc.index]
        if not eligible:
            return False
        # Reference predicate per cell t: every feasible output's
        # inactivity exceeds t  <=>  t < min feasible inactivity.
        min_inact: Optional[int] = None
        for pc in message.feasible_pcs:
            value = pc.inactivity(cycle)
            if min_inact is None or value < min_inact:
                min_inact = value
        if min_inact is None:
            count = self._k  # no feasible output: every cell detects
        else:
            count = bisect_left(self.thresholds, min_inact)
        hit = eligible & ((1 << count) - 1)
        if hit:
            self._pending[message.id] = pending & ~hit
            self._record(message, cycle, hit)
        return False  # never mark: the trajectory is shared

    def blocked_deadline(self, message: Message, cycle: int) -> Optional[int]:
        """Composite deadline: the earliest any pending cell can detect.

        Per cell t the reference deadline is ``max(cycle+1, A + t + 1)``
        with ``A`` the latest occupied feasible channel's counter base
        (``max(last_flit, active_since) + lag``) — unless some feasible
        channel is frozen at or below t, in which case cell t cannot
        detect before a re-occupation (itself a wakeup event).  The
        deadline is monotone in t, so the composite minimum is realized
        by the smallest eligible (pending and seeing G) threshold below
        the frozen floor ``F``; cells seeing P can only become eligible
        through a promotion, which wakes the parked header itself.
        Waking at the composite, failing the attempt and re-parking
        walks the chain until every cell's exact first-detection cycle
        has been visited.
        """
        input_pc = message.input_pc
        if input_pc is None:
            return None
        pending = self._pending.get(message.id, self._full_mask)
        if not pending:
            return None  # every cell already detected: sleep like marked
        eligible = pending & self._gp_mask[input_pc.index]
        if not eligible:
            return None  # detection needs a promotion first, which wakes
        t_low = self.thresholds[(eligible & -eligible).bit_length() - 1]
        base: Optional[int] = None  # A over occupied feasible channels
        floor: Optional[int] = None  # F: min frozen inactivity
        for pc in message.feasible_pcs:
            if pc.occupied_count:
                start = pc.last_flit_cycle
                if pc.active_since > start:
                    start = pc.active_since
                start += pc.counter_lag
                if base is None or start > base:
                    base = start
            else:
                frozen = pc.inactivity(cycle)
                if floor is None or frozen < floor:
                    floor = frozen
        if floor is not None and t_low >= floor:
            return None  # no pending cell can cross before a re-occupation
        if base is None:
            return cycle + 1  # all feasible channels frozen above t_low
        deadline = base + t_low + 1
        return deadline if deadline > cycle else cycle + 1

    # ------------------------------------------------------------------
    def _record(self, message: Message, cycle: int, hit: int) -> None:
        """Append one detection event per hit cell (ascending ranks)."""
        sim = self.sim
        truly: Optional[bool] = None
        if sim.config.ground_truth_on_detection:
            truly = message in sim._truth_at(cycle)
        node = message.header_router()
        if node is None:  # pragma: no cover - blocked headers sit in-network
            node = message.inject_node
        measuring = sim.measuring
        ranks: List[int] = []
        mask = hit
        while mask:
            low = mask & -mask
            ranks.append(low.bit_length() - 1)
            mask ^= low
        idx = np.asarray(ranks, dtype=np.int64)
        self._detections[idx] += 1
        if measuring:
            self._detections_measured[idx] += 1
        if truly is None:
            self._unclassified[idx] += 1
        elif truly:
            self._true[idx] += 1
        else:
            self._false[idx] += 1
        for rank in ranks:
            self._events[rank].append(
                DetectionEvent(
                    cycle=cycle,
                    message_id=message.id,
                    node=node,
                    mechanism=self.name,
                    truly_deadlocked=truly,
                )
            )

    def fold_cell(self, shared: SimulationStats, rank: int) -> SimulationStats:
        """Per-cell stats for ladder rank ``rank`` from the shared run.

        Only the detection family differs between cells; with
        ``recovery="none"`` a message is detected at most once per cell,
        so event counts equal distinct-message counts.
        """
        detections = int(self._detections[rank])
        detections_measured = int(self._detections_measured[rank])
        return dataclasses.replace(
            shared,
            detections=detections,
            detections_measured=detections_measured,
            messages_detected=detections,
            messages_detected_measured=detections_measured,
            true_detections=int(self._true[rank]),
            false_detections=int(self._false[rank]),
            unclassified_detections=int(self._unclassified[rank]),
            detection_events=list(self._events[rank]),
            phase_time=dict(shared.phase_time),
            engine_counters=dict(shared.engine_counters),
        )


class BatchSimulator:
    """One shared trajectory serving many threshold cells.

    Args:
        config: any cell's config (the threshold field is ignored); must
            satisfy :func:`batch_eligible`.
        thresholds: the cells' detection thresholds, any order,
            duplicates allowed; results align with this sequence.
    """

    def __init__(
        self, config: SimulationConfig, thresholds: Sequence[int]
    ) -> None:
        if np is None:
            raise RuntimeError(
                "the batch backend requires numpy (HAVE_NUMPY is False); "
                "run the cells individually instead"
            )
        if not batch_eligible(config):
            raise ValueError(
                "config is not batch-shareable: needs mechanism='ndm' with "
                "simple promotion, recovery='none' and no fault schedule"
            )
        self.thresholds = [int(t) for t in thresholds]
        self.observer = BatchNDMObserver(
            self.thresholds, t1=config.detector.t1
        )
        run_config = config.replace(engine="batch")
        # The injected observer supersedes the registry detector, but the
        # config still validates (t1 < min threshold is the binding case).
        run_config.detector.threshold = self.observer.thresholds[0]
        self.sim = Simulator(run_config, detector=self.observer)

    def run(self) -> List[SimulationStats]:
        """Advance the shared trajectory; return stats aligned with the
        constructor's threshold sequence (duplicates get equal copies)."""
        shared = self.sim.run()
        observer = self.observer
        folded = {
            rank: observer.fold_cell(shared, rank)
            for rank in range(len(observer.thresholds))
        }
        return [folded[observer.rank_of(t)] for t in self.thresholds]


def run_batch(
    config: SimulationConfig, thresholds: Sequence[int]
) -> List[SimulationStats]:
    """Convenience wrapper: build and run one :class:`BatchSimulator`."""
    return BatchSimulator(config, thresholds).run()


# ----------------------------------------------------------------------
# SoA channel-state snapshot (determinism digests, telemetry)
# ----------------------------------------------------------------------

def soa_snapshot(
    sim: Simulator, cycle: int, thresholds: Sequence[int] = ()
) -> Dict[str, Any]:
    """Channel state as integer structure-of-arrays (channel-index order).

    Returns numpy arrays — occupancy counts, free/usable lane masks,
    inactivity counters, G/P flags, and per-threshold I/DT flags packed
    to bits — in a fixed order independent of ``PYTHONHASHSEED``, so
    :func:`soa_digest` is a stable fingerprint of simulated state.
    """
    if np is None:
        raise RuntimeError("soa_snapshot requires numpy")
    channels = sim.channels
    n = len(channels)
    occupied = np.empty(n, dtype=np.int64)
    free_mask = np.empty(n, dtype=np.int64)
    usable_mask = np.empty(n, dtype=np.int64)
    inactivity = np.empty(n, dtype=np.int64)
    gp = np.empty(n, dtype=np.uint8)
    for i, pc in enumerate(channels):
        occupied[i] = pc.occupied_count
        free_mask[i] = pc.free_mask
        usable_mask[i] = pc.usable_mask
        inactivity[i] = pc.inactivity(cycle)
        gp[i] = 1 if pc.gp is _G else 0
    ladder = np.asarray(sorted({int(t) for t in thresholds}), dtype=np.int64)
    snapshot: Dict[str, Any] = {
        "occupied": occupied,
        "free_mask": free_mask,
        "usable_mask": usable_mask,
        "inactivity": inactivity,
        "gp": gp,
        "thresholds": ladder,
    }
    if ladder.size:
        # flags[r, c] == channel c's counter exceeds ladder[r]; packed to
        # bits row-major, the paper's I/DT flag matrix in SoA form.
        flags = inactivity[np.newaxis, :] > ladder[:, np.newaxis]
        snapshot["dt_flags"] = np.packbits(flags, axis=1)
    return snapshot


def soa_digest(snapshot: Dict[str, Any]) -> str:
    """SHA-256 over a snapshot's arrays in fixed key order."""
    if np is None:  # pragma: no cover - callers hold a snapshot already
        raise RuntimeError("soa_digest requires numpy")
    digest = hashlib.sha256()
    for key in sorted(snapshot):
        array = np.ascontiguousarray(snapshot[key])
        digest.update(key.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def plan_batches(
    configs: Sequence[SimulationConfig],
) -> Tuple[List[List[int]], List[int]]:
    """Group config indices into shareable batches (plus leftovers).

    Returns ``(groups, singles)`` of indices into ``configs``: each
    group holds >= 2 eligible configs equal modulo threshold (chunked to
    :data:`MAX_CELLS` *distinct* thresholds); everything else — unshare-
    able configs, lone group members, numpy-less hosts — lands in
    ``singles``.  Order within groups and singles follows the input, so
    planning is deterministic.
    """
    singles: List[int] = []
    if not HAVE_NUMPY:
        return [], list(range(len(configs)))
    by_key: Dict[str, List[int]] = {}
    for i, config in enumerate(configs):
        if config.engine == "batch" and batch_eligible(config):
            by_key.setdefault(batch_group_key(config), []).append(i)
        else:
            singles.append(i)
    groups: List[List[int]] = []
    for key in sorted(by_key):
        members = by_key[key]
        if len(members) < 2:
            singles.extend(members)
            continue
        # Chunk by distinct thresholds; duplicates ride with their value.
        chunk: List[int] = []
        seen: set = set()
        for i in members:
            t = configs[i].detector.threshold
            if t not in seen and len(seen) == MAX_CELLS:
                groups.append(chunk)
                chunk, seen = [], set()
            seen.add(t)
            chunk.append(i)
        if len(chunk) >= 2:
            groups.append(chunk)
        else:
            singles.extend(chunk)
    singles.sort()
    return groups, singles
