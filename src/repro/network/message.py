"""Messages (worms) and their flit accounting.

A wormhole message is represented as the ordered list of virtual channels it
currently *spans*, with a flit count per channel, instead of per-flit
objects.  ``spans[0]`` is the tail-most channel (closest to the source),
``spans[-1]`` holds the header.  Conservation invariant, checked by tests:

    flits_at_source + sum(vc.flits for vc in spans) + flits_delivered == length
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.network.channel import PhysicalChannel, VirtualChannel
from repro.network.types import MessageId, MessageStatus, NodeId, PortKind


class Message:
    """One message travelling (or queued to travel) through the network.

    Attributes:
        id: dense id in generation order.
        source: node where the message was generated (re-injection after a
            progressive recovery changes ``inject_node``, never ``source``).
        dest: destination node.
        length: total flits, header included.
        gen_cycle: cycle the message was generated at the source.
        inject_node: node whose injection port the worm (re-)enters from.
        spans: virtual channels currently held, tail first.
        allocated_vc: output VC granted by routing but not yet entered by
            the header (reserved, so it already counts as occupied).
        flits_at_source: flits not yet injected into ``spans[0]``.
        flits_delivered: flits consumed by the destination.
        first_attempt_done: whether the header already failed one routing
            attempt at the current router (drives the NDM first-attempt
            G/P logic and the "subsequent attempts" detection checks).
        blocked_since: cycle of the first failed attempt at this router.
        feasible_pcs: output physical channels the header may use at the
            current router, cached on the first failed attempt.
        recoveries: completed progressive recoveries for this message.
        retries: regressive aborts (kill-and-reinject) for this message.
    """

    __slots__ = (
        "id",
        "source",
        "dest",
        "length",
        "gen_cycle",
        "inject_node",
        "inject_cycle",
        "deliver_cycle",
        "status",
        "spans",
        "allocated_vc",
        "flits_at_source",
        "flits_delivered",
        "first_attempt_done",
        "blocked_since",
        "feasible_pcs",
        "feasible_vcs",
        "last_source_flit_cycle",
        "marked_deadlocked",
        "recoveries",
        "retries",
        "is_recovery_reinjection",
        "counted",
        "in_active",
        "ever_injected",
        "times_detected",
        "route_asleep",
        "move_asleep",
        "wait_registered",
    )

    def __init__(
        self,
        message_id: MessageId,
        source: NodeId,
        dest: NodeId,
        length: int,
        gen_cycle: int,
    ) -> None:
        if length < 1:
            raise ValueError(f"message length must be >= 1, got {length}")
        if source == dest:
            raise ValueError("message source and destination must differ")
        self.id = message_id
        self.source = source
        self.dest = dest
        self.length = length
        self.gen_cycle = gen_cycle
        self.inject_node = source
        self.inject_cycle: Optional[int] = None
        self.deliver_cycle: Optional[int] = None
        self.status = MessageStatus.QUEUED
        self.spans: List[VirtualChannel] = []
        self.allocated_vc: Optional[VirtualChannel] = None
        self.flits_at_source = length
        self.flits_delivered = 0
        self.first_attempt_done = False
        self.blocked_since: Optional[int] = None
        self.feasible_pcs: Tuple[PhysicalChannel, ...] = ()
        # Cached allowed lanes when the routing function partitions VCs
        # into classes (None means "every lane of every feasible PC").
        self.feasible_vcs: Optional[Tuple[VirtualChannel, ...]] = None
        self.last_source_flit_cycle: Optional[int] = None
        self.marked_deadlocked = False
        self.recoveries = 0
        self.retries = 0
        self.is_recovery_reinjection = False
        # Whether this message counts toward measured statistics (generated
        # after warmup); set by the simulator at generation time.
        self.counted = False
        # Simulator bookkeeping: presence in the active list / first
        # injection already recorded (re-injections do not recount).
        self.in_active = False
        self.ever_injected = False
        # How many times any detector marked this message (a message can be
        # re-detected after recovery re-injection; the paper's tables count
        # messages, so stats track first detections separately).
        self.times_detected = 0
        # Event-driven quiescence state (see repro.network.simulator).  A
        # parked message/worm is skipped by the routing/movement scans until
        # a wakeup event clears the flag; both stay False under the
        # reference per-cycle-scan engine.
        self.route_asleep = False
        self.move_asleep = False
        # Whether this blocked header is registered in the waiter sets of
        # its feasible output channels (and its input channel).
        self.wait_registered = False

    # ------------------------------------------------------------------
    # Position queries
    # ------------------------------------------------------------------
    @property
    def header_vc(self) -> Optional[VirtualChannel]:
        """The virtual channel currently holding the header flit."""
        if not self.spans:
            return None
        return self.spans[-1]

    def header_router(self) -> Optional[NodeId]:
        """Router at which the header waits / was last buffered."""
        spans = self.spans
        if not spans:
            return None
        pc = spans[-1].pc
        if pc.kind is PortKind.EJECTION:
            return pc.src_node
        return pc.dst_node

    @property
    def input_pc(self) -> Optional[PhysicalChannel]:
        """Physical input channel containing the header (for G/P logic)."""
        spans = self.spans
        return spans[-1].pc if spans else None

    def flits_in_network(self) -> int:
        return sum(vc.flits for vc in self.spans)

    def is_blocked(self) -> bool:
        """Header stalled at a router with no output channel granted yet."""
        return (
            self.status is MessageStatus.IN_NETWORK
            and self.allocated_vc is None
            and self.first_attempt_done
        )

    # ------------------------------------------------------------------
    # State resets
    # ------------------------------------------------------------------
    def reset_routing_state(self) -> None:
        """Clear per-router blocking bookkeeping after the header advances.

        Callers that registered the message in channel waiter sets must
        unregister it *before* this call (it clears ``feasible_pcs``).
        """
        self.first_attempt_done = False
        self.blocked_since = None
        self.feasible_pcs = ()
        self.feasible_vcs = None
        # A granted output channel is both a routing and a movement wakeup.
        self.route_asleep = False
        self.move_asleep = False

    def reset_for_reinjection(self, node: NodeId, cycle: int) -> None:
        """Prepare the message to re-enter the network from ``node``.

        Used by both recovery schemes after the worm's channels were freed.
        The original ``gen_cycle`` is preserved so end-to-end latency counts
        the recovery delay.
        """
        self.inject_node = node
        self.inject_cycle = None
        self.spans = []
        self.allocated_vc = None
        self.flits_at_source = self.length
        self.flits_delivered = 0
        self.marked_deadlocked = False
        self.last_source_flit_cycle = None
        self.status = MessageStatus.QUEUED
        self.reset_routing_state()

    def check_conservation(self) -> None:
        """Raise if the flit conservation invariant is violated."""
        total = self.flits_at_source + self.flits_in_network() + self.flits_delivered
        if total != self.length:
            raise AssertionError(
                f"message {self.id}: {self.flits_at_source} at source + "
                f"{self.flits_in_network()} in network + "
                f"{self.flits_delivered} delivered != length {self.length}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Message(id={self.id}, {self.source}->{self.dest}, "
            f"len={self.length}, status={self.status.value})"
        )


def describe_path(message: Message) -> Sequence[str]:
    """Human-readable description of the channels a worm spans (for traces)."""
    return [f"{vc.pc.describe()}#vc{vc.index}({vc.flits}f)" for vc in message.spans]
