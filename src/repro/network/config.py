"""Simulation configuration.

One :class:`SimulationConfig` fully determines a simulation run (given the
seed, runs are bit-reproducible).  The defaults mirror the paper's network
model (Sec. 4.1): true fully adaptive routing, 3 virtual channels per
physical channel, 4-flit buffers, four injection/ejection ports per node,
message injection limitation, and the new detection mechanism with t1 = 1.

The full-scale topology of the paper is ``radix=8, dimensions=3`` (512
nodes); the default here is the 64-node 8-ary 2-cube used by the quick
benchmark mode (see DESIGN.md, substitutions).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.network.topology import KAryNCube, Mesh, Topology


@dataclass
class TrafficConfig:
    """Workload: destination pattern, message lengths and injection rate.

    Attributes:
        pattern: destination pattern name (see ``repro.traffic.patterns``).
        pattern_params: extra keyword arguments for the pattern
            (e.g. ``{"radius": 1}`` for locality, ``{"fraction": 0.05}``
            for hot-spot).
        lengths: message length spec name (see ``repro.traffic.lengths``):
            ``"s"`` (16 flits), ``"l"`` (64), ``"L"`` (256) or ``"sl"``
            (60 % 16-flit / 40 % 64-flit), or ``"fixed"`` with
            ``length_params={"flits": n}``.
        length_params: extra keyword arguments for the length spec.
        injection_rate: offered load in flits/cycle/node (the paper's unit).
    """

    pattern: str = "uniform"
    pattern_params: Dict[str, Any] = field(default_factory=dict)
    lengths: str = "s"
    length_params: Dict[str, Any] = field(default_factory=dict)
    injection_rate: float = 0.2


@dataclass
class DetectorConfig:
    """Which deadlock detection mechanism runs and with what thresholds.

    Attributes:
        mechanism: ``"ndm"`` (the paper's contribution), ``"pdm"``
            (previous mechanism [13]), ``"timeout"`` (crude header-blocked
            timeout, Disha-style), ``"source-age"`` / ``"injection-stall"``
            (source-side timeouts [16], [10]), ``"probe"`` (edge-chasing
            probe family, ``repro.core.probe``) or ``"none"``.
        threshold: the detection threshold in cycles (t2 for NDM, the IF
            threshold for PDM, the timeout for the crude mechanisms, the
            probe launch cadence for the probe family).
        t1: NDM inactivity threshold for the I flag (paper uses 1 cycle).
        selective_promotion: if True, use the selective variant of the NDM
            G/P promotion rule (only inputs waiting on the reset output are
            promoted) instead of the paper's simple all-P-to-G variant.
        probe_max_hops: probe family only — hard cap on a probe's path
            length; a wait cycle longer than this is undetectable by
            configuration.
        probe_max_outstanding: probe family only — storm guard capping the
            probes simultaneously in flight per initiator session.
    """

    mechanism: str = "ndm"
    threshold: int = 32
    t1: int = 1
    selective_promotion: bool = False
    probe_max_hops: int = 64
    probe_max_outstanding: int = 64


@dataclass
class SimulationConfig:
    """Everything needed to build and run one simulation."""

    # --- topology -----------------------------------------------------
    topology: str = "torus"  # "torus" (k-ary n-cube) or "mesh"
    radix: int = 8
    dimensions: int = 2

    # --- router / channel model (paper Sec. 4.1) ----------------------
    vcs_per_channel: int = 3
    buffer_depth: int = 4
    injection_ports: int = 4
    ejection_ports: int = 4
    routing: str = "fully-adaptive"
    #: If True, at most one flit per cycle may leave each input physical
    #: channel through the crossbar (per-physical-port crossbar).  The
    #: paper's model is a full crossbar switch (per-VC ports), so the
    #: default leaves only the channel-side constraint of one flit per
    #: cycle per physical channel.
    crossbar_input_limit: bool = False

    # --- injection limitation [11, 12] ---------------------------------
    #: Inject a new message only while the number of busy network output
    #: VCs at the node is *at most* floor(fraction * total).  ``None``
    #: disables the mechanism.
    injection_limit_fraction: Optional[float] = 0.4

    # --- workload -------------------------------------------------------
    traffic: TrafficConfig = field(default_factory=TrafficConfig)

    # --- deadlock handling ----------------------------------------------
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    #: "progressive" (recovery-lane delivery, default), "progressive-reinject"
    #: (absorb and re-inject at the header node), "regressive"
    #: (abort-and-retry at the source) or "none".
    recovery: str = "progressive"

    # --- fault injection --------------------------------------------------
    #: Deterministic fault schedule: a list of fault-spec dicts (see
    #: ``repro.faults.spec.FaultSpec`` and docs/faults.md), or ``None``
    #: for a healthy network.  Kept in plain JSON-safe form so schedules
    #: flow through config hashing, the campaign cache and provenance
    #: unchanged; the simulator parses and compiles them at build time.
    faults: Optional[List[Dict[str, Any]]] = None

    # --- simulation engine ----------------------------------------------
    #: ``"event"`` (default) parks fully blocked messages and frozen worms
    #: between wakeup events — VC releases, inactivity-counter resumes,
    #: G/P promotions, detection deadlines — instead of re-scanning them
    #: every cycle; ``"scan"`` is the reference per-cycle scan; ``"batch"``
    #: runs each simulation exactly like "event" and additionally lets the
    #: campaign executor group many cells that differ only in detection
    #: threshold into one shared run (``repro.network.batch``).  All
    #: engines produce bit-identical runs (asserted by
    #: ``tests/network/test_engine_equivalence.py`` and
    #: ``tests/network/test_batch_engine.py``); "event"/"batch" are much
    #: faster at and beyond saturation.
    engine: str = "event"
    #: Record wall-clock time per simulation phase (``stats.phase_time``)
    #: via two ``perf_counter`` calls per phase per cycle.  Off by default:
    #: the timer calls themselves are measurable on the hot path, so they
    #: are only taken when profiling is requested (the perf harness and
    #: ``docs/performance.md`` workflows turn this on).  With the flag off
    #: ``phase_time`` stays at its zero-initialized values.
    profile_phases: bool = False

    # --- run control ------------------------------------------------------
    seed: int = 1
    warmup_cycles: int = 1000
    measure_cycles: int = 5000
    #: After measurement, keep simulating (without generating new traffic)
    #: for at most this many cycles so in-flight messages can drain.
    drain_cycles: int = 0
    #: Run the ground-truth deadlock analyzer every N cycles (0 disables the
    #: periodic sweep; detection-time checks still run when enabled_truth).
    ground_truth_interval: int = 200
    #: Whether to classify each detection event as true/false deadlock.
    ground_truth_on_detection: bool = True
    #: Cap on source queue length per node; generation stalls (and is
    #: counted) when the queue is full.  0 means unbounded.
    source_queue_limit: int = 0

    # ------------------------------------------------------------------
    def build_topology(self) -> Topology:
        if self.topology == "torus":
            return KAryNCube(self.radix, self.dimensions)
        if self.topology == "mesh":
            return Mesh(self.radix, self.dimensions)
        raise ValueError(
            f"unknown topology {self.topology!r}; choose 'torus' or 'mesh'"
        )

    def injection_limit(self, total_network_vcs: int) -> Optional[int]:
        """Busy-VC cap implied by ``injection_limit_fraction`` (or None)."""
        if self.injection_limit_fraction is None:
            return None
        if not 0.0 < self.injection_limit_fraction <= 1.0:
            raise ValueError(
                "injection_limit_fraction must be in (0, 1], got "
                f"{self.injection_limit_fraction}"
            )
        return int(math.floor(self.injection_limit_fraction * total_network_vcs))

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if self.vcs_per_channel < 1:
            raise ValueError("vcs_per_channel must be >= 1")
        if self.buffer_depth < 1:
            raise ValueError("buffer_depth must be >= 1")
        if self.injection_ports < 1 or self.ejection_ports < 1:
            raise ValueError("need at least one injection and ejection port")
        if self.traffic.injection_rate < 0:
            raise ValueError("injection_rate must be >= 0")
        if self.warmup_cycles < 0 or self.measure_cycles < 1:
            raise ValueError("warmup_cycles >= 0 and measure_cycles >= 1 required")
        if self.detector.threshold < 1:
            raise ValueError("detector threshold must be >= 1")
        if self.detector.probe_max_hops < 1:
            raise ValueError("probe_max_hops must be >= 1")
        if self.detector.probe_max_outstanding < 1:
            raise ValueError("probe_max_outstanding must be >= 1")
        if self.engine not in ("event", "scan", "batch"):
            raise ValueError(
                f"unknown engine {self.engine!r}; choose 'event', 'scan' "
                "or 'batch'"
            )
        if self.recovery not in (
            "progressive",
            "progressive-reinject",
            "regressive",
            "none",
        ):
            raise ValueError(f"unknown recovery scheme {self.recovery!r}")
        if self.faults:
            # Imported here: repro.faults is a leaf package, but config is
            # imported everywhere and should not pull it in unconditionally.
            from repro.faults.spec import validate_fault_dicts

            validate_fault_dicts(self.faults)
        self.build_topology()  # validates radix/dimensions

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-serializable) for results provenance."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimulationConfig":
        """Inverse of :meth:`to_dict`; validates the rebuilt config."""
        data = dict(payload)
        traffic = TrafficConfig(**data.pop("traffic"))
        detector = DetectorConfig(**data.pop("detector"))
        config = cls(traffic=traffic, detector=detector, **data)
        config.validate()
        return config

    def replace(self, **changes: Any) -> "SimulationConfig":
        """Copy with top-level fields replaced (nested configs deep-copied)."""
        clone = dataclasses.replace(
            self,
            traffic=dataclasses.replace(
                self.traffic,
                pattern_params=dict(self.traffic.pattern_params),
                length_params=dict(self.traffic.length_params),
            ),
            detector=dataclasses.replace(self.detector),
            faults=(
                [dict(f) for f in self.faults]
                if self.faults is not None
                else None
            ),
        )
        return dataclasses.replace(clone, **changes)


def paper_config() -> SimulationConfig:
    """The paper's full-scale configuration: 8-ary 3-cube, 512 nodes."""
    return SimulationConfig(radix=8, dimensions=3)


def quick_config() -> SimulationConfig:
    """Scaled-down configuration for tests and quick benchmarks (64 nodes)."""
    return SimulationConfig(radix=8, dimensions=2)
