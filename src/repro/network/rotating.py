"""A message list with O(1) virtual rotation.

The simulator's routing and movement phases visit their message lists in
a per-cycle rotated order (``lst[offset:] + lst[:offset]`` with
``offset = cycle % len(lst)``) for fairness: no message is permanently
scanned first.  Materializing that rotation costs two slice copies and a
concatenation per phase per cycle — paid even on the event engine's
all-parked fast path, where the visit loop itself is skipped entirely.

:class:`RotatingList` removes those copies.  It stores a stable list
``items`` plus a cursor ``rot``; the *conceptual* order — what the
reference scan engine's plain list would contain — is::

    items[rot:] + items[:rot] + tail

``tail`` collects appends made while the cursor is displaced (a physical
append at ``items``'s end would land *before* the wrapped segment
``items[:rot]``, i.e. in the middle of the conceptual order, so appends
are staged separately and folded in at the start of the next visit).

The phase loops manipulate the fields directly; the operations are:

* **rotate** (all-parked fast path): advance ``rot`` — O(1), no copy;
* **fold** (start of a visiting cycle): splice ``tail`` into ``items``
  in conceptual order — O(n), but only on cycles after an append;
* **visit** (mixed cycle): walk ``items`` cyclically from the rotated
  start; if nothing was removed, the new conceptual order is exactly the
  visit order, so advancing ``rot`` suffices — again no copy;
* **compact** (a visit that dropped messages): rebuild ``items`` as the
  survivors in visit order and reset ``rot`` — the only O(n) allocation,
  paid exactly when the reference engine also had to drop entries.

Iteration, ``len`` and truthiness all reflect the conceptual order, so
consumers (detectors' periodic checks, the ground-truth analyzer, tests
comparing engine populations) observe the same sequence the reference
plain list would hold — bit-identical behaviour is preserved.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.network.message import Message


class RotatingList:
    """Stable list + virtual cursor + staged appends (see module doc)."""

    __slots__ = ("items", "rot", "tail")

    def __init__(self) -> None:
        self.items: List["Message"] = []
        self.rot = 0
        self.tail: List["Message"] = []

    # ------------------------------------------------------------------
    # Conceptual-order views (consumers outside the phase hot loops)
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator["Message"]:
        items = self.items
        rot = self.rot
        yield from items[rot:]
        yield from items[:rot]
        yield from self.tail

    def __len__(self) -> int:
        return len(self.items) + len(self.tail)

    def append(self, message: "Message") -> None:
        """Append at the conceptual end (staged until the next fold)."""
        self.tail.append(message)

    def to_list(self) -> List["Message"]:
        """The conceptual order as a plain list (tests, diagnostics)."""
        items = self.items
        rot = self.rot
        return items[rot:] + items[:rot] + self.tail

    # ------------------------------------------------------------------
    # Phase-loop operations
    # ------------------------------------------------------------------
    def fold(self) -> None:
        """Splice staged appends into ``items``, resetting the cursor.

        After a fold the physical order equals the conceptual order, so
        the visit loops can walk ``items`` with plain index arithmetic.
        With the cursor at zero (every visiting cycle resets it) this is
        a cheap in-place extend; slices are only paid after the all-parked
        fast path displaced the cursor.
        """
        rot = self.rot
        if rot:
            items = self.items
            self.items = items[rot:] + items[:rot] + self.tail
            self.rot = 0
            self.tail = []
        else:
            self.items.extend(self.tail)
            self.tail.clear()

    def start_index(self, offset: int) -> int:
        """Physical index of conceptual position ``offset`` (fold first
        if ``tail`` is non-empty; ``offset`` must be < ``len(items)``)."""
        start = self.rot + offset
        n = len(self.items)
        return start - n if start >= n else start

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RotatingList(n={len(self.items)}, rot={self.rot}, "
            f"staged={len(self.tail)})"
        )
