"""Router: the per-node bundle of channels and local allocation state.

A router owns its *outgoing* physical channels (network outputs plus the
ejection ports that deliver flits to the local node) and keeps references to
its *incoming* ones (network inputs plus the local injection ports).  It also
tracks the number of busy network output virtual channels, which drives the
message injection limitation mechanism of the paper's network model
(López & Duato [11]; López, Martínez, Petrini & Duato [12]).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.network.channel import PhysicalChannel, VirtualChannel
from repro.network.topology import Direction
from repro.network.types import NodeId, PortKind


class Router:
    """All channel endpoints attached to one node.

    Attributes:
        node: the node id this router serves.
        output_pcs: outgoing network channels, keyed by direction.
        input_pcs: incoming network channels (any direction order).
        injection_pcs: node-to-router ports through which new messages enter.
        ejection_pcs: router-to-node ports that consume delivered flits.
        busy_network_vcs: currently occupied network-output virtual channels
            (the quantity the injection limitation thresholds against).
    """

    __slots__ = (
        "node",
        "output_pcs",
        "output_pc_list",
        "input_pcs",
        "injection_pcs",
        "ejection_pcs",
        "busy_network_vcs",
    )

    def __init__(self, node: NodeId) -> None:
        self.node = node
        self.output_pcs: Dict[Direction, PhysicalChannel] = {}
        self.output_pc_list: List[PhysicalChannel] = []
        self.input_pcs: List[PhysicalChannel] = []
        self.injection_pcs: List[PhysicalChannel] = []
        self.ejection_pcs: List[PhysicalChannel] = []
        self.busy_network_vcs = 0

    # ------------------------------------------------------------------
    # Wiring (called once by the simulator builder)
    # ------------------------------------------------------------------
    def add_output(self, direction: Direction, pc: PhysicalChannel) -> None:
        self.output_pcs[direction] = pc
        self.output_pc_list.append(pc)

    def add_input(self, pc: PhysicalChannel) -> None:
        self.input_pcs.append(pc)

    def add_injection(self, pc: PhysicalChannel) -> None:
        self.injection_pcs.append(pc)

    def add_ejection(self, pc: PhysicalChannel) -> None:
        self.ejection_pcs.append(pc)

    # ------------------------------------------------------------------
    # Allocation bookkeeping
    # ------------------------------------------------------------------
    def note_network_vc_allocated(self) -> None:
        self.busy_network_vcs += 1

    def note_network_vc_released(self) -> None:
        self.busy_network_vcs -= 1
        if self.busy_network_vcs < 0:
            raise RuntimeError(f"router {self.node}: negative busy VC count")

    def total_network_vcs(self) -> int:
        return sum(len(pc.vcs) for pc in self.output_pc_list)

    # ------------------------------------------------------------------
    # Queries used by detection mechanisms
    # ------------------------------------------------------------------
    def header_input_pcs(self) -> List[PhysicalChannel]:
        """Input channels that can contain a waiting message header.

        These are the channels whose G/P flag the NDM's simple promotion
        rule flips to G when any I flag of this router resets.
        """
        return self.input_pcs + self.injection_pcs

    def free_injection_vc(self) -> Optional[VirtualChannel]:
        """A free virtual channel on any injection port, or ``None``.

        ``free_lanes`` is kept in lane-index order, so the first entry is
        the lowest-index free lane — the same lane a scan of ``pc.vcs``
        would have returned.  The free mask is ANDed with the channel's
        ``usable_mask`` so faulted injection ports (router stalls) accept
        nothing; the mask is all-ones on healthy channels.
        """
        for pc in self.injection_pcs:
            mask = pc.free_mask & pc.usable_mask
            table = pc.lanes_by_mask
            lanes = (
                table[mask] if table is not None else pc.usable_free_lanes()
            )
            if lanes:
                return lanes[0]
        return None

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Router(node={self.node}, outs={len(self.output_pc_list)}, "
            f"ins={len(self.input_pcs)}, inj={len(self.injection_pcs)}, "
            f"ej={len(self.ejection_pcs)})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


def kind_of(pc: PhysicalChannel) -> PortKind:
    """Convenience accessor kept for symmetry with older call sites."""
    return pc.kind
