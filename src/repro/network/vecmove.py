"""Vectorized SoA movement phase for the batch backend.

The movement phase dominates shared batch runs (roughly half the wall
time at saturation): every cycle it walks the full active list even
though, deep in congestion, most worms are structurally frozen
(``move_asleep``) and the scalar loop's work is almost entirely the
per-worm skip test.  This module keeps an id-indexed numpy ``bool``
mirror of the ``move_asleep`` flags plus an ``int64`` array of message
ids aligned with the active list, so the per-cycle visit set is one
fancy-index plus ``flatnonzero`` instead of ``n`` Python iterations.
The worms that *do* move still advance through the scalar
``Simulator._advance_message`` — bit-exactness with the reference
engines is the contract, and the win is skipping the frozen majority,
not vectorizing flit arithmetic.

Soundness of the mirror (why it cannot go stale):

* ``move_asleep`` is **set** only by the movement phase itself — which,
  once installed, is this class — so every set is mirrored locally;
* it is **cleared** only at the simulator's move-wake sites (routing
  grant, worm teardown, fault wake), all of which call
  ``sim._move_wake_hook`` — wired to :meth:`VectorizedMovement._wake` —
  before or as they clear the flag;
* installation is restricted to the batch backend (``recovery="none"``,
  no fault schedule), where every active-list entry is ``IN_NETWORK``
  at phase entry: worms leave the network only by delivering *inside*
  this phase, so the scalar loop's defensive status screen cannot fire
  for undelivered items and the mirror needs no "gone" bookkeeping.

The phase replays the scalar implementation exactly: fold the tail into
the conceptual rotation, compute the same ``rot + cycle % n`` start,
take the all-parked O(1) fast path, visit awake worms in identical
rotated order, park newly frozen worms, drop delivered ones, and adopt
the rotated order with ``rot = 0``.  The equivalence corpus asserts the
behavioural digests are bit-identical with the scalar path
(``tests/network/test_batch_engine.py``).

DET004 (no numpy under the kernel packages) is waived only on the
import line: the arrays here are integer/bool bookkeeping over message
ids — no float ever enters the trajectory — and the digest gate above
is the enforcement.  Without numpy the module degrades to
``install_vectorized_movement`` returning False and the scalar phase
keeps running, which is the supported fallback everywhere.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

try:
    import numpy as np  # repro-lint: disable=DET004 - integer/bool id mirrors only; digest-gated vs the scalar phase
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]

from repro.network.types import MessageStatus

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.network.simulator import Simulator

#: Whether the vectorized movement phase is available on this host.
HAVE_VECMOVE = np is not None

_MIN_CAPACITY = 1024


def install_vectorized_movement(sim: "Simulator") -> bool:
    """Swap ``sim``'s movement phase for the vectorized one.

    Returns False (leaving the scalar phase installed) when numpy is
    unavailable.  Intended for batch-backend simulators only — see the
    module docstring for the invariants the caller must guarantee.
    """
    if np is None:
        return False
    VectorizedMovement(sim)
    return True


class VectorizedMovement:
    """Id-mirrored movement phase; self-installs on construction."""

    def __init__(self, sim: "Simulator") -> None:
        if np is None:  # pragma: no cover - callers gate on HAVE_VECMOVE
            raise RuntimeError("the vectorized movement phase requires numpy")
        self.sim = sim
        self._asleep = np.zeros(_MIN_CAPACITY, dtype=bool)
        #: Message ids aligned element-for-element with the *stored*
        #: order of ``sim.active_messages.items`` (the rotation cursor
        #: applies to both identically).
        self._ids = np.empty(0, dtype=np.int64)
        # Adopt any pre-existing active list (normally empty: the batch
        # backend installs before run()).
        alist = sim.active_messages
        if alist.items or alist.tail:
            alist.fold()
            self._ids = np.fromiter(
                (m.id for m in alist.items), dtype=np.int64, count=len(alist.items)
            )
            if len(self._ids):
                self._ensure(int(self._ids.max()) + 1)
            for m in alist.items:
                if m.move_asleep:
                    self._asleep[m.id] = True
        sim._movement_impl = self._movement_phase
        sim._move_wake_hook = self._wake

    # ------------------------------------------------------------------
    def _wake(self, message_id: int) -> None:
        """Move-wake write-through (routing grant / teardown / faults)."""
        if message_id < len(self._asleep):
            self._asleep[message_id] = False
        # An id beyond capacity was never marked asleep: nothing to do.

    def _ensure(self, capacity: int) -> None:
        current = len(self._asleep)
        if capacity <= current:
            return
        grown = np.zeros(max(capacity, current * 2), dtype=bool)
        grown[:current] = self._asleep
        self._asleep = grown

    # ------------------------------------------------------------------
    # Named after the scalar phase so the effect analyzer (EFF001) holds
    # this implementation to the same movement-phase write contract.
    def _movement_phase(self, cycle: int) -> None:
        sim = self.sim
        alist = sim.active_messages
        ids = self._ids
        if alist.tail:
            # Messages injected last cycle: splice at the conceptual end,
            # keeping the id mirror in lockstep with fold()'s reordering.
            tail = alist.tail
            tail_ids = np.fromiter(
                (m.id for m in tail), dtype=np.int64, count=len(tail)
            )
            self._ensure(int(tail_ids.max()) + 1)
            rot = alist.rot
            if rot:
                ids = np.concatenate((ids[rot:], ids[:rot], tail_ids))
            else:
                ids = np.concatenate((ids, tail_ids))
            self._ids = ids
            alist.fold()
        items = alist.items
        n = len(items)
        if not n:
            return
        start = alist.rot + cycle % n
        if start >= n:
            start -= n
        if sim._move_parked == n:
            # Every worm frozen: advance the rotation cursor like the
            # scalar fast path (the mirror tracks stored order, which is
            # untouched).
            alist.rot = start
            sim._n_move_skips += n
            return
        if start:
            order = items[start:]
            order += items[:start]
            order_ids = np.concatenate((ids[start:], ids[:start]))
        else:
            order = items
            order_ids = ids
        visit = np.flatnonzero(~self._asleep[order_ids])
        asleep = self._asleep
        advance = sim._advance_message
        park = sim._park_enabled
        in_network = MessageStatus.IN_NETWORK
        keep = None
        for pos in visit.tolist():
            m = order[pos]
            frozen = advance(m, cycle)
            if m.status is in_network:
                if park and frozen and m.spans:
                    m.move_asleep = True
                    asleep[m.id] = True
                    sim._move_parked += 1
                    sim._n_move_parks += 1
            else:
                m.in_active = False
                if keep is None:
                    keep = np.ones(n, dtype=bool)
                keep[pos] = False
        n_visits = len(visit)
        sim._n_move_visits += n_visits
        sim._n_move_skips += n - n_visits
        if keep is None:
            alist.items = order
            self._ids = order_ids
        else:
            kept = np.flatnonzero(keep)
            alist.items = [order[i] for i in kept.tolist()]
            self._ids = order_ids[kept]
        alist.rot = 0
