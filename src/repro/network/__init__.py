"""The wormhole network simulator substrate."""

from repro.network.channel import PhysicalChannel, VirtualChannel
from repro.network.config import (
    DetectorConfig,
    SimulationConfig,
    TrafficConfig,
    paper_config,
    quick_config,
)
from repro.network.message import Message
from repro.network.router import Router
from repro.network.routing import (
    DimensionOrder,
    DuatoAdaptive,
    RoutingFunction,
    TrueFullyAdaptive,
    make_routing_function,
    routing_function_names,
)
from repro.network.simulator import Simulator
from repro.network.topology import KAryNCube, Mesh, Topology
from repro.network.tracing import Tracer, format_event
from repro.network.types import (
    DetectionEvent,
    GPState,
    MessageStatus,
    PortKind,
)

__all__ = [
    "DetectionEvent",
    "DetectorConfig",
    "DimensionOrder",
    "DuatoAdaptive",
    "GPState",
    "KAryNCube",
    "Mesh",
    "Message",
    "MessageStatus",
    "PhysicalChannel",
    "PortKind",
    "Router",
    "RoutingFunction",
    "SimulationConfig",
    "Simulator",
    "Topology",
    "Tracer",
    "format_event",
    "TrafficConfig",
    "TrueFullyAdaptive",
    "VirtualChannel",
    "make_routing_function",
    "paper_config",
    "quick_config",
    "routing_function_names",
]
