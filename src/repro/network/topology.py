"""Network topologies: k-ary n-cubes (tori) and meshes.

The paper evaluates a bidirectional 8-ary 3-cube (512 nodes).  A topology
object answers purely structural questions — node/coordinate mapping,
neighbours, and the set of *minimal* directions a header may take toward a
destination.  It holds no simulation state.

A *direction* is a ``(dimension, sign)`` pair with ``sign`` in ``{+1, -1}``.
Each node owns one outgoing physical channel per direction (plus injection
and ejection ports, which belong to the router model, not the topology).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, Sequence, Tuple

from repro.network.types import NodeId

#: A hop direction: (dimension index, +1 or -1).
Direction = Tuple[int, int]


class Topology:
    """Base class for regular direct-network topologies.

    Subclasses provide wrap-around behaviour (torus) or not (mesh).

    Args:
        radix: nodes per dimension (``k``).
        dimensions: number of dimensions (``n``).
    """

    #: Whether rings wrap around (torus) or not (mesh).
    wraps: bool = False

    def __init__(self, radix: int, dimensions: int) -> None:
        if radix < 2:
            raise ValueError(f"radix must be >= 2, got {radix}")
        if dimensions < 1:
            raise ValueError(f"dimensions must be >= 1, got {dimensions}")
        self.radix = radix
        self.dimensions = dimensions
        self.num_nodes = radix**dimensions
        # Pre-compute coordinate tables once; these are consulted on every
        # routing decision, so they must be O(1) lookups.
        self._coords = [self._compute_coords(n) for n in range(self.num_nodes)]

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def _compute_coords(self, node: NodeId) -> Tuple[int, ...]:
        coords = []
        for _ in range(self.dimensions):
            coords.append(node % self.radix)
            node //= self.radix
        return tuple(coords)

    def coords(self, node: NodeId) -> Tuple[int, ...]:
        """Return the coordinate tuple of ``node`` (dimension 0 first)."""
        return self._coords[node]

    def node_at(self, coords: Sequence[int]) -> NodeId:
        """Return the node id for a coordinate tuple (inverse of coords)."""
        if len(coords) != self.dimensions:
            raise ValueError(
                f"expected {self.dimensions} coordinates, got {len(coords)}"
            )
        node = 0
        for dim in reversed(range(self.dimensions)):
            c = coords[dim]
            if not 0 <= c < self.radix:
                raise ValueError(f"coordinate {c} out of range [0, {self.radix})")
            node = node * self.radix + c
        return node

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def directions(self) -> Iterator[Direction]:
        """Yield every direction a node may have an outgoing channel in."""
        for dim in range(self.dimensions):
            yield (dim, +1)
            yield (dim, -1)

    def has_channel(self, node: NodeId, direction: Direction) -> bool:
        """Whether ``node`` has an outgoing channel in ``direction``."""
        raise NotImplementedError

    def neighbor(self, node: NodeId, direction: Direction) -> NodeId:
        """The node reached from ``node`` going one hop in ``direction``."""
        raise NotImplementedError

    def neighbors(self, node: NodeId) -> Iterator[Tuple[Direction, NodeId]]:
        """Yield ``(direction, neighbor)`` for every outgoing channel."""
        for direction in self.directions():
            if self.has_channel(node, direction):
                yield direction, self.neighbor(node, direction)

    # ------------------------------------------------------------------
    # Routing support
    # ------------------------------------------------------------------
    def minimal_directions(
        self, current: NodeId, dest: NodeId
    ) -> Tuple[Direction, ...]:
        """All directions that reduce the distance from ``current`` to ``dest``.

        On a torus ring where both ways are equidistant (offset exactly
        ``k/2``) both directions are minimal and both are returned, which is
        what true fully adaptive *minimal* routing permits.
        Returns an empty tuple when ``current == dest``.
        """
        raise NotImplementedError

    def distance(self, a: NodeId, b: NodeId) -> int:
        """Minimal hop count between two nodes."""
        return sum(
            self._ring_distance(ca, cb)
            for ca, cb in zip(self.coords(a), self.coords(b))
        )

    def _ring_distance(self, a: int, b: int) -> int:
        raise NotImplementedError

    def average_distance(self) -> float:
        """Mean minimal distance from a node to every *other* node.

        Used by the saturation estimator; by symmetry it is identical for
        every source node, so it is computed from node 0.
        """
        total = sum(self.distance(0, n) for n in range(1, self.num_nodes))
        return total / (self.num_nodes - 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(radix={self.radix}, dimensions={self.dimensions})"


class KAryNCube(Topology):
    """Bidirectional k-ary n-cube (torus): every ring wraps around."""

    wraps = True

    def has_channel(self, node: NodeId, direction: Direction) -> bool:
        dim, _ = direction
        # Radix-2 rings would create duplicate (parallel) channels; treat
        # them like a mesh edge so each pair of nodes has one channel per
        # direction of travel.
        if self.radix == 2:
            coord = self.coords(node)[dim]
            return (coord == 0) == (direction[1] == +1)
        return True

    def neighbor(self, node: NodeId, direction: Direction) -> NodeId:
        dim, sign = direction
        coords = list(self.coords(node))
        coords[dim] = (coords[dim] + sign) % self.radix
        return self.node_at(coords)

    def _ring_distance(self, a: int, b: int) -> int:
        d = abs(a - b)
        return min(d, self.radix - d)

    def minimal_directions(
        self, current: NodeId, dest: NodeId
    ) -> Tuple[Direction, ...]:
        return _torus_minimal_directions(
            self.coords(current), self.coords(dest), self.radix
        )


class Mesh(Topology):
    """Bidirectional k-ary n-dimensional mesh: no wrap-around channels."""

    wraps = False

    def has_channel(self, node: NodeId, direction: Direction) -> bool:
        dim, sign = direction
        coord = self.coords(node)[dim]
        if sign == +1:
            return coord < self.radix - 1
        return coord > 0

    def neighbor(self, node: NodeId, direction: Direction) -> NodeId:
        dim, sign = direction
        coords = list(self.coords(node))
        new = coords[dim] + sign
        if not 0 <= new < self.radix:
            raise ValueError(f"no channel from {node} in direction {direction}")
        coords[dim] = new
        return self.node_at(coords)

    def _ring_distance(self, a: int, b: int) -> int:
        return abs(a - b)

    def minimal_directions(
        self, current: NodeId, dest: NodeId
    ) -> Tuple[Direction, ...]:
        dirs = []
        cur = self.coords(current)
        dst = self.coords(dest)
        for dim in range(self.dimensions):
            if dst[dim] > cur[dim]:
                dirs.append((dim, +1))
            elif dst[dim] < cur[dim]:
                dirs.append((dim, -1))
        return tuple(dirs)


@lru_cache(maxsize=None)
def _torus_minimal_offsets(offset: int, radix: int) -> Tuple[int, ...]:
    """Signs of minimal travel for a ring offset ``(dest - cur) mod radix``."""
    if offset == 0:
        return ()
    other = radix - offset
    if offset < other:
        return (+1,)
    if other < offset:
        return (-1,)
    return (+1, -1)  # exactly half-way round: both ways are minimal


def _torus_minimal_directions(
    cur: Tuple[int, ...], dst: Tuple[int, ...], radix: int
) -> Tuple[Direction, ...]:
    dirs = []
    for dim, (c, d) in enumerate(zip(cur, dst)):
        for sign in _torus_minimal_offsets((d - c) % radix, radix):
            dirs.append((dim, sign))
    return tuple(dirs)
