"""Routing functions.

A routing function maps ``(current node, destination)`` to the set of output
*directions* the header may take.  The paper's evaluation uses **true fully
adaptive minimal routing**: any virtual channel of any physical channel that
brings the message closer to its destination may be used, with every virtual
channel treated identically.  This maximizes routing freedom and is exactly
the regime in which deadlock becomes possible and recovery (hence detection)
is required.

A deterministic dimension-order router is provided as a deadlock-free
baseline (useful for tests: with it, the ground-truth analyzer must never
find a deadlock).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.network.topology import Direction, Topology
from repro.network.types import NodeId

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.network.channel import PhysicalChannel, VirtualChannel


class RoutingFunction:
    """Strategy interface: which directions may the header take next."""

    #: Short name used by configs and reports.
    name = "abstract"

    #: Whether the function can introduce cyclic channel dependencies
    #: (and therefore requires deadlock detection + recovery).
    deadlock_prone = True

    #: Whether virtual channels within a physical channel are partitioned
    #: into classes (escape vs adaptive).  When False the simulator uses a
    #: faster any-free-VC path and the paper's physical-channel-level
    #: detection monitoring applies.
    uses_vc_classes = False

    def candidates(
        self, topology: Topology, current: NodeId, dest: NodeId
    ) -> Tuple[Direction, ...]:
        """Directions the header at ``current`` may take toward ``dest``.

        Empty iff ``current == dest`` (the message must eject).
        """
        raise NotImplementedError

    def allowed_vcs(
        self,
        topology: Topology,
        pc: "PhysicalChannel",
        current: NodeId,
        dest: NodeId,
    ) -> List["VirtualChannel"]:
        """Virtual channels of ``pc`` this message's header may acquire.

        Only consulted when ``uses_vc_classes`` is True; the default grants
        every lane (true fully adaptive usage).
        """
        return pc.vcs


class TrueFullyAdaptive(RoutingFunction):
    """All minimal directions, all virtual channels equivalent (the paper)."""

    name = "fully-adaptive"
    deadlock_prone = True

    def __init__(self) -> None:
        # (current, dest) -> direction tuple.  The map is pure in the
        # topology, and a routing-function instance serves exactly one
        # simulator (one topology), so the cache is sound; it caps out at
        # num_nodes**2 entries and turns the per-hop minimal-direction
        # computation into a dict hit on the routing hot path.
        self._cache: Dict[Tuple[NodeId, NodeId], Tuple[Direction, ...]] = {}

    def candidates(
        self, topology: Topology, current: NodeId, dest: NodeId
    ) -> Tuple[Direction, ...]:
        key = (current, dest)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        dirs = topology.minimal_directions(current, dest)
        if len(dirs) > 1:
            # Radix-2 tori only materialize one channel per node pair;
            # drop directions with no physical channel behind them.
            dirs = tuple(d for d in dirs if topology.has_channel(current, d))
        self._cache[key] = dirs
        return dirs


class DimensionOrder(RoutingFunction):
    """Deterministic e-cube routing: correct dimensions lowest-first.

    Deadlock-free on meshes.  On tori it can still deadlock across the
    wrap-around channels unless combined with VC classes, so it is used as a
    baseline on meshes and for micro-tests only.
    """

    name = "dimension-order"
    deadlock_prone = False

    def candidates(
        self, topology: Topology, current: NodeId, dest: NodeId
    ) -> Tuple[Direction, ...]:
        dirs = topology.minimal_directions(current, dest)
        if not dirs:
            return ()
        usable = [d for d in dirs if topology.has_channel(current, d)]
        lowest_dim = min(d[0] for d in usable)
        # On a torus a half-way-round offset yields two minimal directions in
        # the same dimension; break the tie toward +1 to stay deterministic.
        in_dim = [d for d in usable if d[0] == lowest_dim]
        in_dim.sort(key=lambda d: -d[1])
        return (in_dim[0],)


class DuatoAdaptive(RoutingFunction):
    """Adaptive routing with escape channels (deadlock *avoidance*).

    Duato's design [6, 7]: virtual channels are split into *adaptive*
    lanes, usable on any minimal physical channel, and *escape* lanes that
    implement a deadlock-free sub-function — here dimension-order routing
    with the classic dateline scheme for torus rings (escape class 0 while
    the remaining path in the current dimension still crosses the
    wrap-around link, class 1 after).  Because a blocked header can always
    fall back to the acyclic escape sub-network, the network never
    deadlocks: no detection or recovery mechanism is needed.

    This is the avoidance baseline the paper's introduction argues
    against: it trades routing freedom (the escape lanes are restricted)
    for the deadlock-freedom guarantee.  With the paper's 3 VCs per
    channel, lanes 0-1 are the two escape classes and lane 2+ is adaptive.

    Note: the paper's detection mechanisms assume all VCs of a physical
    channel are used identically, so they do not apply under this routing
    function; run it with ``detector.mechanism = "none"``.
    """

    name = "duato-adaptive"
    deadlock_prone = False
    uses_vc_classes = True

    #: Lanes reserved for the escape sub-function (dateline classes 0/1).
    num_escape_vcs = 2

    def candidates(
        self, topology: Topology, current: NodeId, dest: NodeId
    ) -> Tuple[Direction, ...]:
        # Same physical-channel choices as true fully adaptive: the escape
        # direction (dimension-order) is always one of the minimal ones.
        dirs = topology.minimal_directions(current, dest)
        if len(dirs) <= 1:
            return dirs
        return tuple(d for d in dirs if topology.has_channel(current, d))

    def escape_direction(
        self, topology: Topology, current: NodeId, dest: NodeId
    ) -> Tuple[int, int]:
        """The dimension-order next hop (lowest unfinished dimension)."""
        usable = [
            d
            for d in topology.minimal_directions(current, dest)
            if topology.has_channel(current, d)
        ]
        lowest = min(d[0] for d in usable)
        in_dim = sorted((d for d in usable if d[0] == lowest),
                        key=lambda d: -d[1])
        return in_dim[0]

    def escape_class(
        self, topology: Topology, current: NodeId, dest: NodeId, dim: int,
        sign: int,
    ) -> int:
        """Dateline class on the ring of ``dim``: 0 before crossing the
        wrap-around link, 1 after (computable statelessly from how the
        remaining dimension-order path reaches the destination)."""
        if not topology.wraps or topology.radix == 2:
            return 0
        c = topology.coords(current)[dim]
        d = topology.coords(dest)[dim]
        if sign == +1:
            return 0 if c > d else 1  # still has to wrap / already past
        return 0 if c < d else 1

    def allowed_vcs(
        self,
        topology: Topology,
        pc: "PhysicalChannel",
        current: NodeId,
        dest: NodeId,
    ) -> List["VirtualChannel"]:
        num_escape = min(self.num_escape_vcs, max(len(pc.vcs) - 1, 1))
        lanes = list(pc.vcs[num_escape:])  # adaptive lanes: always allowed
        direction = pc.direction
        if direction is not None:
            escape_dir = self.escape_direction(topology, current, dest)
            if direction == escape_dir:
                cls = self.escape_class(
                    topology, current, dest, direction[0], direction[1]
                )
                if cls < num_escape:
                    lanes.append(pc.vcs[cls])
        else:
            # Injection/ejection ports carry no class restriction.
            return pc.vcs
        return lanes


_ROUTING_FUNCTIONS = {
    TrueFullyAdaptive.name: TrueFullyAdaptive,
    DimensionOrder.name: DimensionOrder,
    DuatoAdaptive.name: DuatoAdaptive,
}


def make_routing_function(name: str) -> RoutingFunction:
    """Instantiate a routing function by config name."""
    try:
        return _ROUTING_FUNCTIONS[name]()
    except KeyError:
        raise ValueError(
            f"unknown routing function {name!r}; "
            f"choose from {sorted(_ROUTING_FUNCTIONS)}"
        ) from None


def routing_function_names() -> Tuple[str, ...]:
    """Names accepted by :func:`make_routing_function`."""
    return tuple(sorted(_ROUTING_FUNCTIONS))
