"""The flit-level wormhole network simulator.

Synchronous cycle model.  Each cycle runs, in order:

0. fault-schedule edges (optional; see ``repro.faults``) — link windows
   open/close, lanes stick/unstick, counters freeze or lag — applied
   before any phase reads channel state, followed by a conservative wake
   of all parked event-engine state;
1. periodic ground-truth deadlock sweep (optional);
2. source-side detector checks (timeout mechanisms only);
3. **routing**: every pending header (newly arrived or blocked) attempts to
   acquire an output virtual channel; failed attempts feed the detection
   mechanism, which may mark the message and trigger recovery;
4. **movement**: one flit per physical channel per cycle advances, worms
   chain-advance front-to-back, tails release channels, deliveries finish;
5. **injection**: queued messages grab free injection-port VCs, subject to
   the injection limitation mechanism (recovery re-injections are exempt
   and prioritized);
6. **generation**: Bernoulli traffic sources enqueue new messages.

Timing matches the paper's model in the quantities that drive detection:
routing retried every cycle for blocked headers, one flit per cycle per
physical channel (virtual channels time-multiplexed), channel inactivity
measured from the last flit transmission.

Three engines execute this model (``SimulationConfig.engine``), each a
cycle kernel from :mod:`repro.network.kernel` sequencing the same phases:

* ``"scan"`` — the reference: every blocked header re-attempts routing
  and every worm is visited by the movement scan, each cycle.
* ``"event"`` (default) — the event-driven fast path: a blocked header
  whose failed attempt cannot change outcome is *parked* and skipped by
  the scans until a provable wakeup event — a lane freeing or an
  inactivity counter resuming on a feasible channel, a G/P promotion on
  its input channel, or its detector-computed detection deadline
  (re-derived lazily when a flit crossing a feasible channel pushes it
  out); worms with no structurally movable flit likewise park until
  routing grants their header a channel.
* ``"batch"`` — per-run identical to ``"event"``; additionally eligible
  for :class:`repro.network.batch.BatchSimulator`, which advances many
  threshold cells of a campaign grid over one shared trajectory.

Both engines keep the same message lists in the same (rotating) order
and consume the same RNG stream — failed routing attempts draw nothing —
so runs are *bit-identical*: same stats, same traces, same detection
cycles (asserted by ``tests/network/test_engine_equivalence.py``).  The
event engine merely skips work whose outcome is provably unchanged,
which is most of the per-cycle work at and beyond saturation where the
paper's tables are measured.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import (
    TYPE_CHECKING,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.deadlock import find_deadlocked
from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultSpec
from repro.metrics.stats import SimulationStats
from repro.network.channel import PhysicalChannel, VirtualChannel
from repro.network.config import SimulationConfig
from repro.network.kernel import make_kernel
from repro.network.message import Message
from repro.network.rotating import RotatingList
from repro.network.router import Router
from repro.network.routing import make_routing_function
from repro.network.types import DetectionEvent, MessageStatus, NodeId, PortKind
from repro.traffic.workload import Workload

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.detector import DeadlockDetector
    from repro.network.tracing import Tracer

#: Keys of the per-phase wall-time accumulators in ``stats.phase_time``.
PHASES = ("checks", "probes", "routing", "movement", "injection", "generation")


class Simulator:
    """One simulation instance built from a :class:`SimulationConfig`.

    Args:
        config: the fully resolved run description (validated here).
        detector: optional pre-built detection mechanism to use instead
            of the registry-built one — the batch backend injects a
            composite observer that evaluates many thresholds against
            one shared trajectory (see :mod:`repro.network.batch`).
            The injected detector must be side-effect-free on the
            network trajectory wherever the registry detector would be.
    """

    def __init__(
        self,
        config: SimulationConfig,
        detector: Optional["DeadlockDetector"] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.topology = config.build_topology()
        self.rng = random.Random(config.seed)
        self.routing_fn = make_routing_function(config.routing)
        # Hoisted off the per-attempt hot path (constant per run).
        self._vc_class_routing = self.routing_fn.uses_vc_classes
        self.workload = Workload(config.traffic, self.topology)

        self.routers: List[Router] = []
        self.channels: List[PhysicalChannel] = []
        self._build_network()

        # Fault injection (see repro.faults): compiled once, applied at
        # the top of every cycle.  ``_faults_on`` gates the (cheap) fault
        # tests on the movement path and the fault-aware oracle, so
        # healthy runs keep their exact pre-fault hot path.
        self._faults_on = bool(config.faults)
        self._fault_injector: Optional[FaultInjector] = None
        if config.faults:
            specs = [FaultSpec.from_dict(d) for d in config.faults]
            self._fault_injector = FaultInjector(self, specs)

        # Imported here, not at module level: repro.core detectors type-hint
        # against network classes, so a module-level import would be cyclic.
        from repro.core.recovery import make_recovery
        from repro.core.registry import make_detector

        self.detector = (
            detector if detector is not None else make_detector(config.detector)
        )
        self.detector.attach(self)
        self.recovery = make_recovery(config.recovery, self)

        self.stats = SimulationStats(
            warmup_cycles=config.warmup_cycles,
            measure_cycles=config.measure_cycles,
            num_nodes=self.topology.num_nodes,
            engine=config.engine,
        )
        self._phase_time = self.stats.phase_time
        for name in PHASES:
            self._phase_time[name] = 0.0

        # Per-phase wall-clock timing is opt-in: the ten perf_counter
        # calls per cycle are measurable on the hot path (see
        # docs/performance.md), so step() skips them unless profiling.
        self._profile = config.profile_phases
        # The cycle kernel sequences the phases (see repro.network.kernel);
        # per-run, "batch" behaves exactly like "event" — the batch win is
        # the shared advance in repro.network.batch.
        self._kernel = make_kernel(config.engine)
        # Event engine state.  Parking is only sound when the detector has
        # no per-attempt side effects on blocked messages.
        self._park_enabled = config.engine in ("event", "batch")
        self._detector_can_sleep = self.detector.can_sleep_blocked
        # Probe-family detectors get a dedicated out-of-band phase between
        # checks and routing; for every other detector the gate stays
        # False and step() never pays for the extra call.
        self._probe_phase_on = self.detector.has_probe_phase
        #: (deadline_cycle, seq, message) heap of sleeping headers whose
        #: detector predicate can first become true at deadline_cycle.
        self._route_deadlines: List[Tuple[int, int, Message]] = []
        self._deadline_seq = 0
        #: Shared one-element counter of currently route-parked messages;
        #: channels and the NDM decrement it on wake, so the routing phase
        #: can tell in O(1) when its entire pending list is asleep.
        self._route_parked_box: List[int] = [0]
        for pc in self.channels:
            pc.wake_box = self._route_parked_box
        #: Count of currently move-parked worms (simulator-internal: the
        #: only wake sites are routing grants and worm teardown).
        self._move_parked = 0
        #: Movement-phase dispatch.  The kernel advances through this
        #: seam so the batch backend can swap in the vectorized SoA
        #: implementation (repro.network.vecmove) for shared runs; every
        #: other engine keeps the scalar phase below.  Digest-exactness
        #: of any replacement is part of the batch contract.
        self._movement_impl: Callable[[int], None] = self._movement_phase
        #: Write-through for the vectorized phase's asleep mirror: called
        #: with the message id at every move-wake site (routing grant,
        #: worm teardown, fault wake) so the numpy bool array never goes
        #: stale relative to ``move_asleep``.
        self._move_wake_hook: Optional[Callable[[int], None]] = None
        # Work counters (flushed to stats.engine_counters by run()).
        self._n_route_attempts = 0
        self._n_route_skips = 0
        self._n_route_parks = 0
        self._n_move_visits = 0
        self._n_move_skips = 0
        self._n_move_parks = 0
        self._n_deadline_wakeups = 0

        self.cycle = 0
        self.measuring = False
        self._input_limit = config.crossbar_input_limit
        #: Optional structured event recorder (see repro.network.tracing);
        #: assign a Tracer instance to enable, None keeps the hot path free.
        self.tracer: Optional[Tracer] = None
        self.generation_enabled = True
        self._next_message_id = 0
        # Rotating structures: the conceptual (reference-engine) order is
        # ``items[rot:] + items[:rot] + tail``; the phase loops advance
        # the cursor instead of materializing the per-cycle rotation.
        self.active_messages = RotatingList()
        self.pending_route = RotatingList()
        self.source_queues: List[Deque[Message]] = [
            deque() for _ in range(self.topology.num_nodes)
        ]
        self.recovery_queues: Dict[NodeId, Deque[Message]] = {}
        self._nodes_with_source: Set[NodeId] = set()
        self.injection_limits: List[Optional[int]] = [
            config.injection_limit(r.total_network_vcs()) for r in self.routers
        ]
        self._truth_cache_cycle = -1
        self._truth_cache: Set[Message] = set()
        self._ever_deadlocked: Set[int] = set()
        # (ready_cycle, seq, message) heap of recovery-lane deliveries.
        self._recovery_deliveries: List[Tuple[int, int, Message]] = []
        self._recovery_seq = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_network(self) -> None:
        cfg = self.config
        topo = self.topology
        self.routers = [Router(n) for n in range(topo.num_nodes)]
        index = 0
        for node in range(topo.num_nodes):
            for direction, neighbor in topo.neighbors(node):
                pc = PhysicalChannel(
                    index,
                    PortKind.NETWORK,
                    node,
                    neighbor,
                    direction,
                    cfg.vcs_per_channel,
                    cfg.buffer_depth,
                )
                index += 1
                self.channels.append(pc)
                self.routers[node].add_output(direction, pc)
                self.routers[neighbor].add_input(pc)
        for node in range(topo.num_nodes):
            for _ in range(cfg.injection_ports):
                pc = PhysicalChannel(
                    index,
                    PortKind.INJECTION,
                    None,
                    node,
                    None,
                    cfg.vcs_per_channel,
                    cfg.buffer_depth,
                )
                index += 1
                self.channels.append(pc)
                self.routers[node].add_injection(pc)
            for _ in range(cfg.ejection_ports):
                pc = PhysicalChannel(
                    index,
                    PortKind.EJECTION,
                    node,
                    None,
                    None,
                    cfg.vcs_per_channel,
                    cfg.buffer_depth,
                )
                index += 1
                self.channels.append(pc)
                self.routers[node].add_ejection(pc)

    # ------------------------------------------------------------------
    # Top-level control
    # ------------------------------------------------------------------
    def run(
        self, on_cycle: Optional[Callable[[int], None]] = None
    ) -> SimulationStats:
        """Run warmup + measurement (+ optional drain); return statistics.

        ``on_cycle``, if given, is called after every completed cycle with
        the cycle index just simulated — the conformance harness uses it
        to sweep the ground-truth oracle per cycle without duplicating
        this drive loop.  Passing ``None`` costs nothing.
        """
        cfg = self.config
        total = cfg.warmup_cycles + cfg.measure_cycles
        while self.cycle < total:
            self.step()
            if on_cycle is not None:
                on_cycle(self.cycle - 1)
        if cfg.drain_cycles > 0:
            self.generation_enabled = False
            self.measuring = False
            deadline = self.cycle + cfg.drain_cycles
            # In-flight traffic also lives in the recovery-lane delivery
            # heap and the recovery re-injection queues; stopping while
            # either is non-empty would silently drop those messages.
            while self.cycle < deadline and (
                self.active_messages
                or self._recovery_deliveries
                or self.recovery_queues
                or any(self.source_queues)
            ):
                self.step()
                if on_cycle is not None:
                    on_cycle(self.cycle - 1)
        self.stats.cycles_run = self.cycle
        self.flush_engine_counters()
        return self.stats

    def flush_engine_counters(self) -> None:
        """Copy the engine work counters into ``stats.engine_counters``.

        ``run()`` calls this automatically; call it manually after driving
        the simulator via :meth:`step` if you want the telemetry.
        """
        c = self.stats.engine_counters
        c["route_attempts"] = self._n_route_attempts
        c["route_parked_skips"] = self._n_route_skips
        c["route_parks"] = self._n_route_parks
        c["move_visits"] = self._n_move_visits
        c["move_parked_skips"] = self._n_move_skips
        c["move_parks"] = self._n_move_parks
        c["deadline_wakeups"] = self._n_deadline_wakeups

    def step(self) -> None:
        """Advance the simulation by one cycle."""
        cycle = self.cycle
        cfg = self.config
        if cycle == cfg.warmup_cycles:
            self.measuring = True
        if cycle == cfg.warmup_cycles + cfg.measure_cycles:
            self.measuring = False

        # Fault edges land before any phase reads channel state, so a
        # window boundary affects the whole cycle on both engines alike.
        injector = self._fault_injector
        if injector is not None:
            injector.apply(cycle)

        self._kernel.advance(self, cycle)
        self.cycle = cycle + 1

    # ------------------------------------------------------------------
    # Phases 1-2: ground truth, recovery-lane completions, source checks
    # ------------------------------------------------------------------
    def _checks_phase(self, cycle: int) -> None:
        interval = self.config.ground_truth_interval
        if interval and cycle and cycle % interval == 0:
            self._truth_sweep(cycle)

        if self._recovery_deliveries:
            self._complete_recovery_deliveries(cycle)

        if self.detector.needs_periodic_check:
            for m in self.detector.periodic_check(self.active_messages, cycle):
                if m.status is MessageStatus.IN_NETWORK and not m.marked_deadlocked:
                    self._handle_detection(m, cycle)

    # ------------------------------------------------------------------
    # Phase 2b: out-of-band probe transport (probe-family detectors only)
    # ------------------------------------------------------------------
    def _probes_phase(self, cycle: int) -> None:
        """Advance the detector's probe transport by one out-of-band hop.

        Runs after checks and before routing so probes observe the same
        wait-graph snapshot the oracle graded at the previous cycle's end,
        identically under both engines (parked headers keep their cached
        feasible sets, which is all the transport reads).  Victims elected
        by returning probes enter the normal recovery path exactly like
        periodic-check detections.
        """
        for victim in self.detector.probe_phase(cycle):
            if (
                victim.status is MessageStatus.IN_NETWORK
                and not victim.marked_deadlocked
            ):
                self._handle_detection(victim, cycle)

    # ------------------------------------------------------------------
    # Phase 3: routing
    # ------------------------------------------------------------------
    def _routing_phase(self, cycle: int) -> None:
        deadlines = self._route_deadlines
        if deadlines:
            box = self._route_parked_box
            while deadlines and deadlines[0][0] <= cycle:
                m = heapq.heappop(deadlines)[2]
                if m.route_asleep:
                    m.route_asleep = False
                    box[0] -= 1
                    self._n_deadline_wakeups += 1
        plist = self.pending_route
        if plist.tail:
            # Headers appended by the last movement phase: splice them in
            # at the conceptual end before this cycle's rotated visit.
            plist.fold()
        items = plist.items
        n = len(items)
        if not n:
            return
        start = plist.rot + cycle % n
        if start >= n:
            start -= n
        if self._route_parked_box[0] == n:
            # Every pending header is asleep (and therefore IN_NETWORK —
            # any status change wakes it): the reference scan would fail
            # every attempt and rebuild the list in rotated order.  The
            # cursor advance IS that rotation: O(1), no copy, no visits.
            plist.rot = start
            self._n_route_skips += n
            return
        if start:
            order = items[start:]
            order += items[:start]
        else:
            order = items
        survivors: Optional[List[Message]] = None
        sappend: Optional[Callable[[Message], None]] = None
        n_attempts = 0
        n_skips = 0
        in_network = MessageStatus.IN_NETWORK
        for pos, m in enumerate(order):
            if m.status is not in_network:
                # Recovered/removed since it was queued: drop it, as the
                # reference rebuild would.  Everything visited before the
                # first drop survived — backfill once, then append.
                if survivors is None:
                    survivors = order[:pos]
                    sappend = survivors.append
                continue
            if m.route_asleep:
                # Parked: the attempt would fail without side effects, so
                # skip it.  The message stays at the same position in the
                # visit order, keeping the rotation (and therefore the
                # RNG stream) identical to the reference scan engine.
                n_skips += 1
                if sappend is not None:
                    sappend(m)
                continue
            n_attempts += 1
            if self._attempt_route(m, cycle) or m.status is not in_network:
                if survivors is None:
                    survivors = order[:pos]
                    sappend = survivors.append
            elif sappend is not None:
                sappend(m)
        # Nothing dropped: the visit order itself is the new conceptual
        # order — adopt it wholesale, no per-message rebuild.
        plist.items = order if survivors is None else survivors
        plist.rot = 0
        self._n_route_attempts += n_attempts
        self._n_route_skips += n_skips

    def _park_blocked(self, m: Message, cycle: int) -> None:
        """Put a freshly failed header to sleep until a wakeup event.

        Sound because (a) a failed attempt proves no allowed VC is free,
        and any later free lane triggers ``note_released`` which clears
        ``route_asleep``; (b) the detector predicate can only first hold
        at ``blocked_deadline`` — earlier only if an inactivity counter
        restarts (``note_occupied`` wake) or the input channel is promoted
        to G (``header_waiters`` wake), each of which re-parks with a
        recomputed deadline on the next failed attempt.
        """
        if not m.wait_registered:
            # Waiter collections are insertion-ordered dicts, not sets:
            # the wake loops iterate them, and iteration order must not
            # depend on PYTHONHASHSEED (see DET003 in repro.lint).
            m.wait_registered = True
            for pc in m.feasible_pcs:
                waiters = pc.route_waiters
                if waiters is None:
                    waiters = pc.route_waiters = {}
                waiters[m] = None
            ipc = m.input_pc
            if ipc is not None:
                hwaiters = ipc.header_waiters
                if hwaiters is None:
                    hwaiters = ipc.header_waiters = {}
                hwaiters[m] = None
        if m.marked_deadlocked:
            # Already detected (recovery "none"): only a VC release matters.
            m.route_asleep = True
            self._route_parked_box[0] += 1
            self._n_route_parks += 1
            return
        deadline = self.detector.blocked_deadline(m, cycle)
        if deadline is None:
            m.route_asleep = True
        elif deadline > cycle:
            m.route_asleep = True
            self._deadline_seq += 1
            heapq.heappush(
                self._route_deadlines, (deadline, self._deadline_seq, m)
            )
        else:
            return  # inconsistent deadline; stay awake (reference behaviour)
        self._route_parked_box[0] += 1
        self._n_route_parks += 1

    def wake_all_parked(self) -> None:
        """Clear every park flag (fault edges invalidate parking proofs).

        Called by the fault injector whenever a fault appears or heals: a
        healed link can make a parked header's attempt succeed and let a
        wedged worm drain, and no channel-level wake event fires for
        either, so everything re-evaluates on the next scan.  Purely
        conservative — a spurious wake re-attempts, fails without side
        effects, and re-parks — so both engines stay bit-identical.
        Waiter registrations and queued heap deadlines stay in place
        (stale heap entries are skipped when they pop).
        """
        box = self._route_parked_box
        moves = 0
        for m in self.active_messages:
            if m.route_asleep:
                m.route_asleep = False
                box[0] -= 1
            if m.move_asleep:
                m.move_asleep = False
                moves += 1
                if self._move_wake_hook is not None:
                    self._move_wake_hook(m.id)
        self._move_parked -= moves

    def _unregister_parked(self, m: Message) -> None:
        """Drop ``m`` from all waiter maps (before feasible_pcs is cleared)."""
        m.wait_registered = False
        for pc in m.feasible_pcs:
            if pc.route_waiters is not None:
                pc.route_waiters.pop(m, None)
        ipc = m.input_pc
        if ipc is not None and ipc.header_waiters is not None:
            ipc.header_waiters.pop(m, None)

    def _attempt_route(self, m: Message, cycle: int) -> bool:
        """Try to allocate an output VC for ``m``'s header; True on success."""
        node = m.header_router()
        router = self.routers[node]
        if m.first_attempt_done:
            candidates = m.feasible_pcs
        elif m.dest == node:
            candidates = tuple(router.ejection_pcs)
        else:
            dirs = self.routing_fn.candidates(self.topology, node, m.dest)
            candidates = tuple(router.output_pcs[d] for d in dirs)

        free: Sequence[VirtualChannel]
        if self._vc_class_routing:
            allowed = m.feasible_vcs
            if allowed is None:
                allowed = tuple(
                    vc
                    for pc in candidates
                    for vc in self.routing_fn.allowed_vcs(
                        self.topology, pc, node, m.dest
                    )
                )
            if self._faults_on:
                free = [
                    vc
                    for vc in allowed
                    if vc.occupant is None
                    and (vc.pc.usable_mask >> vc.index) & 1
                ]
            else:
                free = [vc for vc in allowed if vc.occupant is None]
        else:
            allowed = None
            # The free lanes of each candidate come from the incremental
            # per-channel mask (kept lane-index-ordered via the mask ->
            # lanes table), so no rescan of ``pc.vcs`` per attempt.  The
            # tuples are read-only snapshots — safe to alias.  ANDing in
            # ``usable_mask`` (all-ones on healthy channels) filters out
            # faulted lanes at the cost of one integer op.
            if len(candidates) == 1:
                pc = candidates[0]
                table = pc.lanes_by_mask
                free = (
                    table[pc.free_mask & pc.usable_mask]
                    if table is not None
                    else pc.usable_free_lanes()
                )
            else:
                acc: List[VirtualChannel] = []
                for pc in candidates:
                    table = pc.lanes_by_mask
                    acc += (
                        table[pc.free_mask & pc.usable_mask]
                        if table is not None
                        else pc.usable_free_lanes()
                    )
                free = acc
        if free:
            vc = free[0] if len(free) == 1 else self.rng.choice(free)
            vc.allocate(m, cycle)
            if vc.pc.kind is PortKind.NETWORK:
                router.note_network_vc_allocated()
            m.allocated_vc = vc
            self.detector.on_message_routed(m, cycle)
            if m.wait_registered:
                self._unregister_parked(m)
            if m.move_asleep:
                self._move_parked -= 1
                if self._move_wake_hook is not None:
                    self._move_wake_hook(m.id)
            m.reset_routing_state()
            if self.tracer is not None:
                self.tracer.record(("route", cycle, m.id, node, vc.pc.index))
            return True

        first = not m.first_attempt_done
        if first:
            m.first_attempt_done = True
            m.blocked_since = cycle
            m.feasible_pcs = candidates
            m.feasible_vcs = allowed
            if self.tracer is not None:
                self.tracer.record(("block", cycle, m.id, node))
        if not m.marked_deadlocked and self.detector.on_blocked_attempt(
            m, router, cycle, first
        ):
            self._handle_detection(m, cycle)
        elif self._park_enabled and (
            self._detector_can_sleep or m.marked_deadlocked
        ):
            self._park_blocked(m, cycle)
        return False

    # ------------------------------------------------------------------
    # Phase 4: movement
    # ------------------------------------------------------------------
    def _movement_phase(self, cycle: int) -> None:
        alist = self.active_messages
        if alist.tail:
            # Messages injected last cycle: splice at the conceptual end.
            alist.fold()
        items = alist.items
        n = len(items)
        if not n:
            return
        start = alist.rot + cycle % n
        if start >= n:
            start -= n
        if self._move_parked == n:
            # Every worm is frozen (hence IN_NETWORK — teardown and
            # routing grants both unpark): the reference scan would move
            # nothing and rebuild the list in rotated order, which the
            # cursor advance expresses in O(1).
            alist.rot = start
            self._n_move_skips += n
            return
        if start:
            order = items[start:]
            order += items[:start]
        else:
            order = items
        survivors: Optional[List[Message]] = None
        sappend: Optional[Callable[[Message], None]] = None
        park = self._park_enabled
        n_visits = 0
        n_skips = 0
        in_network = MessageStatus.IN_NETWORK
        for pos, m in enumerate(order):
            if m.status is not in_network:
                m.in_active = False
                if survivors is None:
                    survivors = order[:pos]
                    sappend = survivors.append
                continue
            if m.move_asleep:
                # Structurally frozen worm: stays at the same position in
                # the visit order, woken by a routing grant.
                n_skips += 1
                if sappend is not None:
                    sappend(m)
                continue
            n_visits += 1
            frozen = self._advance_message(m, cycle)
            if m.status is in_network:
                if sappend is not None:
                    sappend(m)
                if park and frozen and m.spans:
                    m.move_asleep = True
                    self._move_parked += 1
                    self._n_move_parks += 1
            else:
                m.in_active = False
                if survivors is None:
                    survivors = order[:pos]
                    sappend = survivors.append
        alist.items = order if survivors is None else survivors
        alist.rot = 0
        self._n_move_visits += n_visits
        self._n_move_skips += n_skips

    @staticmethod
    def _worm_immovable(m: Message) -> bool:
        """True if no flit of ``m`` can advance at any future cycle until
        its header is granted an output VC.

        Checks only *structural* conditions (full downstream buffers, no
        ejection sink, source flits against a full first span); per-cycle
        bandwidth guards are transient and deliberately ignored, so this
        is conservative: False never parks a movable worm.
        """
        spans = m.spans
        if not spans:
            return False
        for i in range(len(spans) - 1, 0, -1):
            if spans[i - 1].flits == 0:
                continue
            down = spans[i]
            if down.pc.kind is PortKind.EJECTION or down.flits < down.capacity:
                return False
        if m.flits_at_source > 0 and spans[0].flits < spans[0].capacity:
            return False
        return True

    def _advance_message(self, m: Message, cycle: int) -> bool:
        """Advance one worm one cycle; return True if the worm is *frozen*.

        Frozen means structurally immovable: nothing moved this cycle, no
        output VC is granted, and every stalled flit is stopped by a full
        downstream buffer (or a full first span, for source flits) rather
        than by a transient per-cycle bandwidth guard — so no flit of this
        worm can advance at any future cycle until routing grants the
        header an output channel.  The event engine parks frozen worms
        (equivalent to :meth:`_worm_immovable`, which the invariant
        checker uses as the independent specification).
        """
        frozen = True
        spans = m.spans
        ejection = PortKind.EJECTION
        input_limit = self._input_limit
        # Fault guards are gated on one bool so healthy runs skip them.
        # A fault-blocked flit is *not* structural blockage: ``frozen``
        # stays False so the worm is never parked over a fault and simply
        # retries until the window closes (fault edges also wake all
        # parked state, so pre-existing parks cannot strand a worm).
        faults = self._faults_on
        # -- header into its granted output VC --------------------------
        avc = m.allocated_vc
        if avc is not None:
            frozen = False  # granted channel: advances now or next cycle
            tpc = avc.pc
            if faults and (
                not (tpc.usable_mask >> avc.index) & 1
                or (
                    spans
                    and (spans[-1].pc.stuck_mask >> spans[-1].index) & 1
                )
            ):
                pass  # granted lane dark or header's buffer stuck: hold
            elif tpc.last_flit_cycle != cycle:
                ok = True
                if spans and input_limit:
                    spc = spans[-1].pc
                    if spc.last_drain_cycle == cycle:
                        ok = False
                if ok:
                    if spans:
                        head = spans[-1]
                        head.flits -= 1
                        head.pc.last_drain_cycle = cycle
                    else:
                        m.flits_at_source -= 1
                        m.last_source_flit_cycle = cycle
                        if m.inject_cycle is None:
                            m.inject_cycle = cycle
                            if self.tracer is not None:
                                self.tracer.record(
                                    ("inject", cycle, m.id, m.inject_node)
                                )
                            if not m.ever_injected:
                                m.ever_injected = True
                                self.stats.injected += 1
                                if self.measuring:
                                    self.stats.injected_measured += 1
                    tpc.record_flit(cycle)
                    if tpc.kind is ejection:
                        m.flits_delivered += 1
                        spans.append(avc)
                        m.allocated_vc = None
                    else:
                        avc.flits += 1
                        spans.append(avc)
                        m.allocated_vc = None
                        # Header buffered at the next router: needs routing.
                        self.pending_route.append(m)

        # -- body flits, front (header side) to back (tail side) --------
        # The structural test (full downstream buffer) runs before the
        # per-cycle bandwidth guards: all are pure reads, so the movement
        # outcome is unchanged, and a pair stopped only by a transient
        # guard is recognized as movable-later (not frozen).  The loop
        # walks adjacent (up, down) pairs with a rolling ``down`` to
        # avoid indexing each span twice.
        n = len(spans)
        if n > 1:
            down = spans[n - 1]
            for i in range(n - 2, -1, -1):
                up = spans[i]
                if up.flits:
                    dpc = down.pc
                    sink = dpc.kind is ejection
                    if sink or down.flits < down.capacity:
                        frozen = False
                        if faults and (
                            not (dpc.usable_mask >> down.index) & 1
                            or (up.pc.stuck_mask >> up.index) & 1
                        ):
                            pass  # link down or a stuck lane on the hop
                        elif dpc.last_flit_cycle != cycle:
                            upc = up.pc
                            if not input_limit or upc.last_drain_cycle != cycle:
                                up.flits -= 1
                                upc.last_drain_cycle = cycle
                                # PhysicalChannel.record_flit, inlined:
                                # this is the hottest flit-accounting
                                # site (every body-flit hop), and the
                                # call overhead is measurable.
                                t1 = dpc.i_threshold
                                hook = dpc.on_i_reset
                                if (
                                    t1 is not None
                                    and hook is not None
                                    and dpc.occupied_count > 0
                                ):
                                    start_ = dpc.last_flit_cycle
                                    if dpc.active_since > start_:
                                        start_ = dpc.active_since
                                    if cycle - start_ - dpc.counter_lag > t1:
                                        hook(dpc, cycle)
                                dpc.last_flit_cycle = cycle
                                dpc.counter_lag = 0
                                if sink:
                                    m.flits_delivered += 1
                                else:
                                    down.flits += 1
                down = up

        # -- source flits into the injection VC -------------------------
        if m.flits_at_source > 0 and spans:
            first = spans[0]
            if first.flits < first.capacity:
                frozen = False
                fpc = first.pc
                if faults and not (fpc.usable_mask >> first.index) & 1:
                    pass  # injection span faulted: source flits hold
                elif fpc.last_flit_cycle != cycle:
                    m.flits_at_source -= 1
                    m.last_source_flit_cycle = cycle
                    fpc.record_flit(cycle)
                    first.flits += 1

        # -- tail release ------------------------------------------------
        # Guard order: ``flits_at_source`` first — it is non-zero for
        # every worm still injecting, which short-circuits the two
        # list inspections on the common path.
        while m.flits_at_source == 0 and len(spans) > 1 and spans[0].flits == 0:
            self._release_vc(spans.pop(0), cycle)
            frozen = False

        # -- delivery ------------------------------------------------------
        if m.flits_delivered == m.length:
            for vc in spans:
                self._release_vc(vc, cycle)
            spans.clear()
            self._finish_delivery(m, cycle)
        return frozen

    def _finish_delivery(self, m: Message, cycle: int) -> None:
        m.status = MessageStatus.DELIVERED
        m.deliver_cycle = cycle
        if self.tracer is not None:
            self.tracer.record(("deliver", cycle, m.id, m.dest))
        st = self.stats
        st.delivered += 1
        st.flits_delivered += m.length
        if self.measuring:
            st.delivered_measured += 1
            st.flits_delivered_measured += m.length
            if m.counted:
                latency = cycle - m.gen_cycle
                st.latency_sum += latency
                if m.inject_cycle is not None:
                    st.network_latency_sum += cycle - m.inject_cycle
                st.latency_count += 1
                if latency > st.max_latency:
                    st.max_latency = latency

    # ------------------------------------------------------------------
    # Phase 5: injection
    # ------------------------------------------------------------------
    def _injection_phase(self, cycle: int) -> None:
        # Recovery re-injections first: priority and exempt from limitation.
        if self.recovery_queues:
            done = []
            for node, queue in self.recovery_queues.items():
                router = self.routers[node]
                while queue:
                    vc = router.free_injection_vc()
                    if vc is None:
                        break
                    self._start_injection(queue.popleft(), vc, cycle)
                if not queue:
                    done.append(node)
            for node in done:
                del self.recovery_queues[node]

        if not self._nodes_with_source:
            return
        drained = []
        for node in self._nodes_with_source:
            queue = self.source_queues[node]
            router = self.routers[node]
            limit = self.injection_limits[node]
            while queue:
                if limit is not None and router.busy_network_vcs > limit:
                    break
                vc = router.free_injection_vc()
                if vc is None:
                    break
                self._start_injection(queue.popleft(), vc, cycle)
            if not queue:
                drained.append(node)
        for node in drained:
            self._nodes_with_source.discard(node)

    def _start_injection(self, m: Message, vc: VirtualChannel, cycle: int) -> None:
        vc.allocate(m, cycle)
        m.allocated_vc = vc
        m.status = MessageStatus.IN_NETWORK
        if not m.in_active:
            m.in_active = True
            self.active_messages.append(m)

    # ------------------------------------------------------------------
    # Phase 6: generation
    # ------------------------------------------------------------------
    def _generation_phase(self, cycle: int) -> None:
        p = self.workload.generation_probability
        if p <= 0.0:
            return
        # Per-node Bernoulli draws from the single seeded ``random.Random``
        # stream, drawn in node order *before* any destination/length
        # draws.  Deliberately backend-free: a (config, seed) pair must
        # produce the same run on every host (see
        # tests/network/test_determinism.py), so no numpy fast path here.
        num = self.topology.num_nodes
        rng_random = self.rng.random
        sources = [n for n in range(num) if rng_random() < p]
        for source in sources:
            self._generate_at(source, cycle)

    def _generate_at(self, source: NodeId, cycle: int) -> None:
        draw = self.workload.pattern.destination(source, self.rng)
        if draw is None:
            return
        limit = self.config.source_queue_limit
        queue = self.source_queues[source]
        if limit and len(queue) >= limit:
            self.stats.source_queue_drops += 1
            return
        length = self.workload.lengths.draw(self.rng)
        m = Message(self._next_message_id, source, draw, length, cycle)
        self._next_message_id += 1
        m.counted = self.measuring
        self.stats.generated += 1
        if self.measuring:
            self.stats.generated_measured += 1
        queue.append(m)
        self._nodes_with_source.add(source)

    # ------------------------------------------------------------------
    # Detection & recovery plumbing
    # ------------------------------------------------------------------
    def _handle_detection(self, m: Message, cycle: int) -> None:
        truly: Optional[bool] = None
        if self.config.ground_truth_on_detection:
            truly = m in self._truth_at(cycle)
        node = m.header_router()
        event = DetectionEvent(
            cycle=cycle,
            message_id=m.id,
            node=node if node is not None else m.inject_node,
            mechanism=self.detector.name,
            truly_deadlocked=truly,
        )
        st = self.stats
        st.detection_events.append(event)
        st.detections += 1
        if self.measuring:
            st.detections_measured += 1
        if truly is None:
            st.unclassified_detections += 1
        elif truly:
            st.true_detections += 1
        else:
            st.false_detections += 1
        if m.times_detected == 0:
            st.messages_detected += 1
            if self.measuring:
                st.messages_detected_measured += 1
        m.times_detected += 1
        m.marked_deadlocked = True
        if self.tracer is not None:
            self.tracer.record(
                ("detect", cycle, m.id, event.node, self.detector.name)
            )
        self.recovery.recover(m, cycle)

    def free_worm(self, m: Message, cycle: int) -> None:
        """Release every channel the worm holds (recovery teardown)."""
        if self.tracer is not None:
            node = m.header_router()
            self.tracer.record(
                ("recover", cycle, m.id, node if node is not None else -1)
            )
        self.detector.on_message_removed(m, cycle)
        if m.wait_registered:
            # Before releasing: the releases below would "wake" the dying
            # worm, and reset_for_reinjection clears feasible_pcs.
            self._unregister_parked(m)
        if m.route_asleep:
            m.route_asleep = False
            self._route_parked_box[0] -= 1
        if m.move_asleep:
            m.move_asleep = False
            self._move_parked -= 1
            if self._move_wake_hook is not None:
                self._move_wake_hook(m.id)
        vcs = list(m.spans)
        if m.allocated_vc is not None:
            vcs.append(m.allocated_vc)
            m.allocated_vc = None
        m.spans = []
        for vc in vcs:
            self._release_vc(vc, cycle)

    def _release_vc(self, vc: VirtualChannel, cycle: int) -> None:
        pc = vc.pc
        vc.release(cycle)
        if pc.kind is PortKind.NETWORK:
            self.routers[pc.src_node].note_network_vc_released()
        self.detector.on_vc_released(vc, cycle)

    def schedule_recovery_delivery(self, m: Message, ready_cycle: int) -> None:
        """Deliver ``m`` through the out-of-band recovery lane at a cycle.

        The worm's channels must already be freed; the message sits in
        node-local software buffers until the lane finishes transferring it.
        """
        m.status = MessageStatus.RECOVERING
        self._recovery_seq += 1
        heapq.heappush(
            self._recovery_deliveries, (ready_cycle, self._recovery_seq, m)
        )

    def _complete_recovery_deliveries(self, cycle: int) -> None:
        heap = self._recovery_deliveries
        while heap and heap[0][0] <= cycle:
            _, _, m = heapq.heappop(heap)
            m.flits_at_source = 0
            m.flits_delivered = m.length
            self._finish_delivery(m, cycle)

    def enqueue_recovery(self, m: Message, node: NodeId) -> None:
        """Queue a progressive-recovery re-injection at ``node``."""
        queue = self.recovery_queues.get(node)
        if queue is None:
            queue = deque()
            self.recovery_queues[node] = queue
        queue.append(m)

    def enqueue_source(self, m: Message, node: NodeId, front: bool = False) -> None:
        """Queue a message at a node's normal source queue."""
        if front:
            self.source_queues[node].appendleft(m)
        else:
            self.source_queues[node].append(m)
        self._nodes_with_source.add(node)

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------
    def _truth_at(self, cycle: int) -> Set[Message]:
        """Deadlocked-message set for this cycle (cached per cycle)."""
        if self._truth_cache_cycle != cycle:
            # Under fault schedules the oracle must not count faulted
            # lanes as escapes (a free lane on a dead link frees no one).
            self._truth_cache = find_deadlocked(
                self.active_messages, honor_faults=self._faults_on
            )
            self._truth_cache_cycle = cycle
        return self._truth_cache

    def _truth_sweep(self, cycle: int) -> None:
        deadlocked = self._truth_at(cycle)
        st = self.stats
        st.truth_sweeps += 1
        if deadlocked:
            st.truth_sweeps_with_deadlock += 1
            if len(deadlocked) > st.max_deadlock_set_size:
                st.max_deadlock_set_size = len(deadlocked)
            # Order-insensitive: only ids are unioned into a set.
            for m in deadlocked:  # repro-lint: disable=DET003
                self._ever_deadlocked.add(m.id)
            st.truly_deadlocked_messages = len(self._ever_deadlocked)

    # ------------------------------------------------------------------
    # Introspection helpers (tests, examples)
    # ------------------------------------------------------------------
    def message_count_in_network(self) -> int:
        """Number of messages currently holding network resources."""
        return sum(
            1
            for m in self.active_messages
            if m.status is MessageStatus.IN_NETWORK
        )

    def check_invariants(self) -> None:
        """Verify global conservation invariants; raise on violation."""
        for m in self.active_messages:
            if m.status is MessageStatus.IN_NETWORK:
                m.check_conservation()
                self._check_parked_state(m)
        for router in self.routers:
            busy = sum(
                1
                for pc in router.output_pc_list
                for vc in pc.vcs
                if vc.occupant is not None
            )
            if busy != router.busy_network_vcs:
                raise AssertionError(
                    f"router {router.node}: busy VC count {router.busy_network_vcs} "
                    f"!= actual {busy}"
                )
        for pc in self.channels:
            occupied = sum(1 for vc in pc.vcs if vc.occupant is not None)
            if occupied != pc.occupied_count:
                raise AssertionError(
                    f"{pc}: occupied_count {pc.occupied_count} != actual {occupied}"
                )
            actual_free = tuple(vc for vc in pc.vcs if vc.occupant is None)
            if actual_free != pc.free_lanes:
                # Order matters too: routing draws rng.choice over these
                # lanes, so a permuted free_lanes silently changes runs.
                raise AssertionError(
                    f"{pc}: free_lanes {pc.free_lanes} != actual free "
                    f"{actual_free} (stale free_mask or misordered table)"
                )
            full = (1 << len(pc.vcs)) - 1
            expected_usable = 0 if pc.fault_down else full & ~pc.stuck_mask
            if pc.usable_mask != expected_usable:
                raise AssertionError(
                    f"{pc}: usable_mask {pc.usable_mask:#x} inconsistent "
                    f"with fault_down={pc.fault_down} "
                    f"stuck_mask={pc.stuck_mask:#x}"
                )
            if pc.counter_lag < 0:
                raise AssertionError(f"{pc}: negative counter_lag")
        n_route = sum(1 for m in self.active_messages if m.route_asleep)
        if n_route != self._route_parked_box[0]:
            raise AssertionError(
                f"route-parked count {self._route_parked_box[0]} != actual "
                f"{n_route} (a stale count defeats the all-asleep fast path)"
            )
        n_move = sum(1 for m in self.active_messages if m.move_asleep)
        if n_move != self._move_parked:
            raise AssertionError(
                f"move-parked count {self._move_parked} != actual {n_move}"
            )

    def _check_parked_state(self, m: Message) -> None:
        """Event-engine safety: a parked message must have no way forward.

        A violation means a wakeup event was lost and the fast path could
        diverge from the reference scan (stranding the message).
        """
        if m.route_asleep:
            if not m.wait_registered:
                raise AssertionError(
                    f"message {m.id}: route_asleep but not in any waiter set"
                )
            # usable_mask is all-ones on healthy channels, so the filter
            # is exact for both fault and no-fault runs.
            if m.feasible_vcs is not None:
                free = [
                    vc
                    for vc in m.feasible_vcs
                    if vc.occupant is None
                    and (vc.pc.usable_mask >> vc.index) & 1
                ]
            else:
                free = [
                    vc
                    for pc in m.feasible_pcs
                    for vc in pc.vcs
                    if vc.occupant is None
                    and (pc.usable_mask >> vc.index) & 1
                ]
            if free:
                raise AssertionError(
                    f"message {m.id}: route_asleep with free allowed VC {free[0]}"
                )
        if m.move_asleep:
            if m.allocated_vc is not None:
                raise AssertionError(
                    f"message {m.id}: move_asleep despite a granted output VC"
                )
            if not self._worm_immovable(m):
                raise AssertionError(
                    f"message {m.id}: move_asleep but a flit could advance"
                )
