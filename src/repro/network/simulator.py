"""The flit-level wormhole network simulator.

Synchronous cycle model.  Each cycle runs, in order:

1. periodic ground-truth deadlock sweep (optional);
2. source-side detector checks (timeout mechanisms only);
3. **routing**: every pending header (newly arrived or blocked) attempts to
   acquire an output virtual channel; failed attempts feed the detection
   mechanism, which may mark the message and trigger recovery;
4. **movement**: one flit per physical channel per cycle advances, worms
   chain-advance front-to-back, tails release channels, deliveries finish;
5. **injection**: queued messages grab free injection-port VCs, subject to
   the injection limitation mechanism (recovery re-injections are exempt
   and prioritized);
6. **generation**: Bernoulli traffic sources enqueue new messages.

Timing matches the paper's model in the quantities that drive detection:
routing retried every cycle for blocked headers, one flit per cycle per
physical channel (virtual channels time-multiplexed), channel inactivity
measured from the last flit transmission.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import Deque, Dict, List, Optional, Set

from repro.analysis.deadlock import find_deadlocked
from repro.metrics.stats import SimulationStats
from repro.network.channel import PhysicalChannel, VirtualChannel
from repro.network.config import SimulationConfig
from repro.network.message import Message
from repro.network.router import Router
from repro.network.routing import make_routing_function
from repro.network.types import DetectionEvent, MessageStatus, NodeId, PortKind
from repro.traffic.workload import Workload

try:  # optional fast path for traffic generation
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is installed in CI
    _np = None


class Simulator:
    """One simulation instance built from a :class:`SimulationConfig`."""

    def __init__(self, config: SimulationConfig):
        config.validate()
        self.config = config
        self.topology = config.build_topology()
        self.rng = random.Random(config.seed)
        self._gen_rng = (
            _np.random.default_rng(config.seed ^ 0x5EED) if _np is not None else None
        )
        self.routing_fn = make_routing_function(config.routing)
        self.workload = Workload(config.traffic, self.topology)

        self.routers: List[Router] = []
        self.channels: List[PhysicalChannel] = []
        self._build_network()

        # Imported here, not at module level: repro.core detectors type-hint
        # against network classes, so a module-level import would be cyclic.
        from repro.core.recovery import make_recovery
        from repro.core.registry import make_detector

        self.detector = make_detector(config.detector)
        self.detector.attach(self)
        self.recovery = make_recovery(config.recovery, self)

        self.stats = SimulationStats(
            warmup_cycles=config.warmup_cycles,
            measure_cycles=config.measure_cycles,
            num_nodes=self.topology.num_nodes,
        )

        self.cycle = 0
        self.measuring = False
        self._input_limit = config.crossbar_input_limit
        #: Optional structured event recorder (see repro.network.tracing);
        #: assign a Tracer instance to enable, None keeps the hot path free.
        self.tracer = None
        self.generation_enabled = True
        self._next_message_id = 0
        self.active_messages: List[Message] = []
        self.pending_route: List[Message] = []
        self.source_queues: List[Deque[Message]] = [
            deque() for _ in range(self.topology.num_nodes)
        ]
        self.recovery_queues: Dict[NodeId, Deque[Message]] = {}
        self._nodes_with_source: Set[NodeId] = set()
        self.injection_limits: List[Optional[int]] = [
            config.injection_limit(r.total_network_vcs()) for r in self.routers
        ]
        self._truth_cache_cycle = -1
        self._truth_cache: Set[Message] = set()
        self._ever_deadlocked: Set[int] = set()
        # (ready_cycle, seq, message) heap of recovery-lane deliveries.
        self._recovery_deliveries: List = []
        self._recovery_seq = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_network(self) -> None:
        cfg = self.config
        topo = self.topology
        self.routers = [Router(n) for n in range(topo.num_nodes)]
        index = 0
        for node in range(topo.num_nodes):
            for direction, neighbor in topo.neighbors(node):
                pc = PhysicalChannel(
                    index,
                    PortKind.NETWORK,
                    node,
                    neighbor,
                    direction,
                    cfg.vcs_per_channel,
                    cfg.buffer_depth,
                )
                index += 1
                self.channels.append(pc)
                self.routers[node].add_output(direction, pc)
                self.routers[neighbor].add_input(pc)
        for node in range(topo.num_nodes):
            for _ in range(cfg.injection_ports):
                pc = PhysicalChannel(
                    index,
                    PortKind.INJECTION,
                    None,
                    node,
                    None,
                    cfg.vcs_per_channel,
                    cfg.buffer_depth,
                )
                index += 1
                self.channels.append(pc)
                self.routers[node].add_injection(pc)
            for _ in range(cfg.ejection_ports):
                pc = PhysicalChannel(
                    index,
                    PortKind.EJECTION,
                    node,
                    None,
                    None,
                    cfg.vcs_per_channel,
                    cfg.buffer_depth,
                )
                index += 1
                self.channels.append(pc)
                self.routers[node].add_ejection(pc)

    # ------------------------------------------------------------------
    # Top-level control
    # ------------------------------------------------------------------
    def run(self) -> SimulationStats:
        """Run warmup + measurement (+ optional drain); return statistics."""
        cfg = self.config
        total = cfg.warmup_cycles + cfg.measure_cycles
        while self.cycle < total:
            self.step()
        if cfg.drain_cycles > 0:
            self.generation_enabled = False
            self.measuring = False
            deadline = self.cycle + cfg.drain_cycles
            while self.cycle < deadline and (
                self.active_messages or any(self.source_queues)
            ):
                self.step()
        self.stats.cycles_run = self.cycle
        return self.stats

    def step(self) -> None:
        """Advance the simulation by one cycle."""
        cycle = self.cycle
        cfg = self.config
        if cycle == cfg.warmup_cycles:
            self.measuring = True
        if cycle == cfg.warmup_cycles + cfg.measure_cycles:
            self.measuring = False

        interval = cfg.ground_truth_interval
        if interval and cycle and cycle % interval == 0:
            self._truth_sweep(cycle)

        if self._recovery_deliveries:
            self._complete_recovery_deliveries(cycle)

        if self.detector.needs_periodic_check:
            for m in self.detector.periodic_check(self.active_messages, cycle):
                if m.status is MessageStatus.IN_NETWORK and not m.marked_deadlocked:
                    self._handle_detection(m, cycle)

        self._routing_phase(cycle)
        self._movement_phase(cycle)
        self._injection_phase(cycle)
        if self.generation_enabled:
            self._generation_phase(cycle)
        self.cycle = cycle + 1

    # ------------------------------------------------------------------
    # Phase 3: routing
    # ------------------------------------------------------------------
    def _routing_phase(self, cycle: int) -> None:
        pending = self.pending_route
        if not pending:
            return
        still_pending: List[Message] = []
        offset = cycle % len(pending)
        order = pending[offset:] + pending[:offset]
        self.pending_route = still_pending
        for m in order:
            if m.status is not MessageStatus.IN_NETWORK:
                continue  # recovered/removed since it was queued
            if not self._attempt_route(m, cycle):
                if m.status is MessageStatus.IN_NETWORK:
                    still_pending.append(m)

    def _attempt_route(self, m: Message, cycle: int) -> bool:
        """Try to allocate an output VC for ``m``'s header; True on success."""
        node = m.header_router()
        router = self.routers[node]
        if m.first_attempt_done:
            candidates = m.feasible_pcs
        elif m.dest == node:
            candidates = tuple(router.ejection_pcs)
        else:
            dirs = self.routing_fn.candidates(self.topology, node, m.dest)
            candidates = tuple(router.output_pcs[d] for d in dirs)

        free: List[VirtualChannel] = []
        if self.routing_fn.uses_vc_classes:
            allowed = m.feasible_vcs
            if allowed is None:
                allowed = tuple(
                    vc
                    for pc in candidates
                    for vc in self.routing_fn.allowed_vcs(
                        self.topology, pc, node, m.dest
                    )
                )
            for vc in allowed:
                if vc.occupant is None:
                    free.append(vc)
        else:
            allowed = None
            for pc in candidates:
                if pc.occupied_count < len(pc.vcs):
                    for vc in pc.vcs:
                        if vc.occupant is None:
                            free.append(vc)
        if free:
            vc = free[0] if len(free) == 1 else self.rng.choice(free)
            vc.allocate(m, cycle)
            if vc.pc.kind is PortKind.NETWORK:
                router.note_network_vc_allocated()
            m.allocated_vc = vc
            self.detector.on_message_routed(m, cycle)
            m.reset_routing_state()
            if self.tracer is not None:
                self.tracer.record(("route", cycle, m.id, node, vc.pc.index))
            return True

        first = not m.first_attempt_done
        if first:
            m.first_attempt_done = True
            m.blocked_since = cycle
            m.feasible_pcs = candidates
            m.feasible_vcs = allowed
            if self.tracer is not None:
                self.tracer.record(("block", cycle, m.id, node))
        if not m.marked_deadlocked and self.detector.on_blocked_attempt(
            m, router, cycle, first
        ):
            self._handle_detection(m, cycle)
        return False

    # ------------------------------------------------------------------
    # Phase 4: movement
    # ------------------------------------------------------------------
    def _movement_phase(self, cycle: int) -> None:
        active = self.active_messages
        if not active:
            return
        keep: List[Message] = []
        offset = cycle % len(active)
        order = active[offset:] + active[:offset]
        self.active_messages = keep
        for m in order:
            if m.status is not MessageStatus.IN_NETWORK:
                m.in_active = False
                continue
            self._advance_message(m, cycle)
            if m.status is MessageStatus.IN_NETWORK:
                keep.append(m)
            else:
                m.in_active = False

    def _advance_message(self, m: Message, cycle: int) -> None:
        spans = m.spans
        # -- header into its granted output VC --------------------------
        avc = m.allocated_vc
        if avc is not None:
            tpc = avc.pc
            if tpc.last_flit_cycle != cycle:
                ok = True
                if spans and self._input_limit:
                    spc = spans[-1].pc
                    if spc.last_drain_cycle == cycle:
                        ok = False
                if ok:
                    if spans:
                        head = spans[-1]
                        head.flits -= 1
                        head.pc.last_drain_cycle = cycle
                    else:
                        m.flits_at_source -= 1
                        m.last_source_flit_cycle = cycle
                        if m.inject_cycle is None:
                            m.inject_cycle = cycle
                            if self.tracer is not None:
                                self.tracer.record(
                                    ("inject", cycle, m.id, m.inject_node)
                                )
                            if not m.ever_injected:
                                m.ever_injected = True
                                self.stats.injected += 1
                                if self.measuring:
                                    self.stats.injected_measured += 1
                    tpc.record_flit(cycle)
                    if tpc.kind is PortKind.EJECTION:
                        m.flits_delivered += 1
                    else:
                        avc.flits += 1
                    spans.append(avc)
                    m.allocated_vc = None
                    if tpc.kind is not PortKind.EJECTION:
                        # Header buffered at the next router: needs routing.
                        self.pending_route.append(m)

        # -- body flits, front (header side) to back (tail side) --------
        n = len(spans)
        for i in range(n - 1, 0, -1):
            up = spans[i - 1]
            if up.flits == 0:
                continue
            down = spans[i]
            dpc = down.pc
            if dpc.last_flit_cycle == cycle:
                continue
            sink = dpc.kind is PortKind.EJECTION
            if not sink and down.flits >= down.capacity:
                continue
            upc = up.pc
            if self._input_limit and upc.last_drain_cycle == cycle:
                continue
            up.flits -= 1
            upc.last_drain_cycle = cycle
            dpc.record_flit(cycle)
            if sink:
                m.flits_delivered += 1
            else:
                down.flits += 1

        # -- source flits into the injection VC -------------------------
        if m.flits_at_source > 0 and spans:
            first = spans[0]
            fpc = first.pc
            if fpc.last_flit_cycle != cycle and first.flits < first.capacity:
                m.flits_at_source -= 1
                m.last_source_flit_cycle = cycle
                fpc.record_flit(cycle)
                first.flits += 1

        # -- tail release ------------------------------------------------
        while len(spans) > 1 and m.flits_at_source == 0 and spans[0].flits == 0:
            self._release_vc(spans.pop(0), cycle)

        # -- delivery ------------------------------------------------------
        if m.flits_delivered == m.length:
            for vc in spans:
                self._release_vc(vc, cycle)
            spans.clear()
            self._finish_delivery(m, cycle)

    def _finish_delivery(self, m: Message, cycle: int) -> None:
        m.status = MessageStatus.DELIVERED
        m.deliver_cycle = cycle
        if self.tracer is not None:
            self.tracer.record(("deliver", cycle, m.id, m.dest))
        st = self.stats
        st.delivered += 1
        st.flits_delivered += m.length
        if self.measuring:
            st.delivered_measured += 1
            st.flits_delivered_measured += m.length
            if m.counted:
                latency = cycle - m.gen_cycle
                st.latency_sum += latency
                if m.inject_cycle is not None:
                    st.network_latency_sum += cycle - m.inject_cycle
                st.latency_count += 1
                if latency > st.max_latency:
                    st.max_latency = latency

    # ------------------------------------------------------------------
    # Phase 5: injection
    # ------------------------------------------------------------------
    def _injection_phase(self, cycle: int) -> None:
        # Recovery re-injections first: priority and exempt from limitation.
        if self.recovery_queues:
            done = []
            for node, queue in self.recovery_queues.items():
                router = self.routers[node]
                while queue:
                    vc = router.free_injection_vc()
                    if vc is None:
                        break
                    self._start_injection(queue.popleft(), vc, cycle)
                if not queue:
                    done.append(node)
            for node in done:
                del self.recovery_queues[node]

        if not self._nodes_with_source:
            return
        drained = []
        for node in self._nodes_with_source:
            queue = self.source_queues[node]
            router = self.routers[node]
            limit = self.injection_limits[node]
            while queue:
                if limit is not None and router.busy_network_vcs > limit:
                    break
                vc = router.free_injection_vc()
                if vc is None:
                    break
                self._start_injection(queue.popleft(), vc, cycle)
            if not queue:
                drained.append(node)
        for node in drained:
            self._nodes_with_source.discard(node)

    def _start_injection(self, m: Message, vc: VirtualChannel, cycle: int) -> None:
        vc.allocate(m, cycle)
        m.allocated_vc = vc
        m.status = MessageStatus.IN_NETWORK
        if not m.in_active:
            m.in_active = True
            self.active_messages.append(m)

    # ------------------------------------------------------------------
    # Phase 6: generation
    # ------------------------------------------------------------------
    def _generation_phase(self, cycle: int) -> None:
        p = self.workload.generation_probability
        if p <= 0.0:
            return
        num = self.topology.num_nodes
        if self._gen_rng is not None:
            count = int(self._gen_rng.binomial(num, p))
            if count == 0:
                return
            sources = self.rng.sample(range(num), count)
        else:
            sources = [n for n in range(num) if self.rng.random() < p]
        for source in sources:
            self._generate_at(source, cycle)

    def _generate_at(self, source: NodeId, cycle: int) -> None:
        draw = self.workload.pattern.destination(source, self.rng)
        if draw is None:
            return
        limit = self.config.source_queue_limit
        queue = self.source_queues[source]
        if limit and len(queue) >= limit:
            self.stats.source_queue_drops += 1
            return
        length = self.workload.lengths.draw(self.rng)
        m = Message(self._next_message_id, source, draw, length, cycle)
        self._next_message_id += 1
        m.counted = self.measuring
        self.stats.generated += 1
        if self.measuring:
            self.stats.generated_measured += 1
        queue.append(m)
        self._nodes_with_source.add(source)

    # ------------------------------------------------------------------
    # Detection & recovery plumbing
    # ------------------------------------------------------------------
    def _handle_detection(self, m: Message, cycle: int) -> None:
        truly: Optional[bool] = None
        if self.config.ground_truth_on_detection:
            truly = m in self._truth_at(cycle)
        node = m.header_router()
        event = DetectionEvent(
            cycle=cycle,
            message_id=m.id,
            node=node if node is not None else m.inject_node,
            mechanism=self.detector.name,
            truly_deadlocked=truly,
        )
        st = self.stats
        st.detection_events.append(event)
        st.detections += 1
        if self.measuring:
            st.detections_measured += 1
        if truly is None:
            st.unclassified_detections += 1
        elif truly:
            st.true_detections += 1
        else:
            st.false_detections += 1
        if m.times_detected == 0:
            st.messages_detected += 1
            if self.measuring:
                st.messages_detected_measured += 1
        m.times_detected += 1
        m.marked_deadlocked = True
        if self.tracer is not None:
            self.tracer.record(
                ("detect", cycle, m.id, event.node, self.detector.name)
            )
        self.recovery.recover(m, cycle)

    def free_worm(self, m: Message, cycle: int) -> None:
        """Release every channel the worm holds (recovery teardown)."""
        if self.tracer is not None:
            node = m.header_router()
            self.tracer.record(
                ("recover", cycle, m.id, node if node is not None else -1)
            )
        self.detector.on_message_removed(m, cycle)
        vcs = list(m.spans)
        if m.allocated_vc is not None:
            vcs.append(m.allocated_vc)
            m.allocated_vc = None
        m.spans = []
        for vc in vcs:
            self._release_vc(vc, cycle)

    def _release_vc(self, vc: VirtualChannel, cycle: int) -> None:
        pc = vc.pc
        vc.release(cycle)
        if pc.kind is PortKind.NETWORK:
            self.routers[pc.src_node].note_network_vc_released()
        self.detector.on_vc_released(vc, cycle)

    def schedule_recovery_delivery(self, m: Message, ready_cycle: int) -> None:
        """Deliver ``m`` through the out-of-band recovery lane at a cycle.

        The worm's channels must already be freed; the message sits in
        node-local software buffers until the lane finishes transferring it.
        """
        m.status = MessageStatus.RECOVERING
        self._recovery_seq += 1
        heapq.heappush(
            self._recovery_deliveries, (ready_cycle, self._recovery_seq, m)
        )

    def _complete_recovery_deliveries(self, cycle: int) -> None:
        heap = self._recovery_deliveries
        while heap and heap[0][0] <= cycle:
            _, _, m = heapq.heappop(heap)
            m.flits_at_source = 0
            m.flits_delivered = m.length
            self._finish_delivery(m, cycle)

    def enqueue_recovery(self, m: Message, node: NodeId) -> None:
        """Queue a progressive-recovery re-injection at ``node``."""
        queue = self.recovery_queues.get(node)
        if queue is None:
            queue = deque()
            self.recovery_queues[node] = queue
        queue.append(m)

    def enqueue_source(self, m: Message, node: NodeId, front: bool = False) -> None:
        """Queue a message at a node's normal source queue."""
        if front:
            self.source_queues[node].appendleft(m)
        else:
            self.source_queues[node].append(m)
        self._nodes_with_source.add(node)

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------
    def _truth_at(self, cycle: int) -> Set[Message]:
        """Deadlocked-message set for this cycle (cached per cycle)."""
        if self._truth_cache_cycle != cycle:
            self._truth_cache = find_deadlocked(self.active_messages)
            self._truth_cache_cycle = cycle
        return self._truth_cache

    def _truth_sweep(self, cycle: int) -> None:
        deadlocked = self._truth_at(cycle)
        st = self.stats
        st.truth_sweeps += 1
        if deadlocked:
            st.truth_sweeps_with_deadlock += 1
            if len(deadlocked) > st.max_deadlock_set_size:
                st.max_deadlock_set_size = len(deadlocked)
            for m in deadlocked:
                self._ever_deadlocked.add(m.id)
            st.truly_deadlocked_messages = len(self._ever_deadlocked)

    # ------------------------------------------------------------------
    # Introspection helpers (tests, examples)
    # ------------------------------------------------------------------
    def message_count_in_network(self) -> int:
        """Number of messages currently holding network resources."""
        return sum(
            1
            for m in self.active_messages
            if m.status is MessageStatus.IN_NETWORK
        )

    def check_invariants(self) -> None:
        """Verify global conservation invariants; raise on violation."""
        for m in self.active_messages:
            if m.status is MessageStatus.IN_NETWORK:
                m.check_conservation()
        for router in self.routers:
            busy = sum(
                1
                for pc in router.output_pc_list
                for vc in pc.vcs
                if vc.occupant is not None
            )
            if busy != router.busy_network_vcs:
                raise AssertionError(
                    f"router {router.node}: busy VC count {router.busy_network_vcs} "
                    f"!= actual {busy}"
                )
        for pc in self.channels:
            occupied = sum(1 for vc in pc.vcs if vc.occupant is not None)
            if occupied != pc.occupied_count:
                raise AssertionError(
                    f"{pc}: occupied_count {pc.occupied_count} != actual {occupied}"
                )
