"""Shared identifiers, enumerations and small value types for the network.

The simulator models a direct network of routers connected by unidirectional
*physical channels*, each multiplexed into several *virtual channels* (VCs).
Identifiers here are deliberately plain (ints / small frozen dataclasses) so
they hash fast and print readably in traces and test failures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: A node (router) identifier: dense integers ``0 .. num_nodes - 1``.
NodeId = int

#: A message identifier: dense integers in injection order.
MessageId = int


class PortKind(enum.Enum):
    """The role of a physical channel relative to a router."""

    #: Router-to-router link.
    NETWORK = "network"
    #: Node-to-router link used to inject new messages.
    INJECTION = "injection"
    #: Router-to-node link used to deliver (eject) messages.
    EJECTION = "ejection"


class GPState(enum.Enum):
    """Value of the per-input-channel Generate/Propagate flag (paper, Sec. 3).

    ``PROPAGATE`` suppresses deadlock detection for messages whose header
    waits at that input channel; ``GENERATE`` enables it (the waiting message
    may be the first of a branch in the tree of blocked messages).
    """

    PROPAGATE = "P"
    GENERATE = "G"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class MessageStatus(enum.Enum):
    """Lifecycle of a message from generation to delivery."""

    #: Generated but its header has not yet entered an injection channel.
    QUEUED = "queued"
    #: At least the header occupies a virtual channel.
    IN_NETWORK = "in-network"
    #: Detected as deadlocked and currently being recovered.
    RECOVERING = "recovering"
    #: Every flit has been ejected at the destination.
    DELIVERED = "delivered"
    #: Killed by regressive recovery; a retry clone was queued at the source.
    ABORTED = "aborted"


@dataclass(frozen=True)
class DetectionEvent:
    """One deadlock-detection verdict raised by a detection mechanism.

    Attributes:
        cycle: simulation cycle at which the message was marked.
        message_id: the marked message.
        node: router holding the message header when it was marked.
        mechanism: short name of the detector that raised it.
        truly_deadlocked: filled in by the ground-truth analyzer when
            enabled; ``None`` when the analyzer did not run for this event.
    """

    cycle: int
    message_id: MessageId
    node: NodeId
    mechanism: str
    truly_deadlocked: bool | None = None
