"""Physical and virtual channels with lazy inactivity monitoring.

The detection mechanisms of the paper are built on one counter per physical
output channel that counts cycles of *inactivity while occupied* and resets
whenever a flit crosses the channel (any of its virtual channels).  Keeping a
literal counter would cost O(channels) work per cycle; instead each channel
stores the cycle of the last flit transmission and the cycle at which it last
became occupied, and derives the counter value on demand:

    inactivity(now) = now - max(last_flit_cycle, active_since)   if occupied
                    = frozen value at last release               otherwise

This is exactly the paper's counter at O(1) per event: it advances only
while at least one virtual channel is occupied, resets on every flit, and
— like the hardware, which gates the increment but not the register —
*freezes* (rather than resets) across unoccupied gaps.  The freeze matters
for the paper's Figure 5 situation: a channel freed by recovery and
immediately re-acquired still shows its long inactivity, so the first flit
of the new occupant clears a set I flag and re-labels the tree root.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.network.types import GPState, NodeId, PortKind
from repro.network.topology import Direction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.network.message import Message

#: Sentinel meaning "never": far enough in the past that any difference with a
#: real cycle number exceeds every practical threshold.
NEVER = -(1 << 60)

#: Widest channel for which the mask -> free-lane-tuple table is built
#: (the table has 2**num_vcs entries per channel).  Wider channels fall
#: back to scanning ``vcs`` — same result, without the table memory.
MASK_TABLE_MAX_VCS = 8


class VirtualChannel:
    """One virtual channel (lane) of a physical channel.

    Holds at most one *occupant* worm at a time; ``flits`` counts how many of
    the occupant's flits currently sit in this channel's input buffer.  Sink
    channels (ejection ports) consume flits instantly, so their ``flits``
    stays at zero while they are occupied.
    """

    __slots__ = ("pc", "index", "capacity", "occupant", "flits")

    def __init__(self, pc: "PhysicalChannel", index: int, capacity: int) -> None:
        self.pc = pc
        self.index = index
        self.capacity = capacity
        self.occupant: Optional["Message"] = None
        self.flits = 0

    @property
    def is_free(self) -> bool:
        return self.occupant is None

    def allocate(self, message: "Message", cycle: int) -> None:
        """Reserve this virtual channel for ``message``'s worm."""
        if self.occupant is not None:
            raise RuntimeError(
                f"{self} already occupied by message {self.occupant.id}"
            )
        self.pc.free_mask &= ~(1 << self.index)
        self.pc.note_occupied(cycle)
        self.occupant = message

    def release(self, cycle: int) -> None:
        """Free the channel after the occupant's tail passed (or recovery)."""
        if self.occupant is None:
            raise RuntimeError(f"{self} released while already free")
        self.occupant = None
        self.flits = 0
        self.pc.free_mask |= 1 << self.index
        self.pc.note_released(cycle)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VC({self.pc.describe()}, lane={self.index})"


class PhysicalChannel:
    """A unidirectional physical channel multiplexed into virtual channels.

    One flit per cycle may cross a physical channel regardless of which
    virtual channel it belongs to; ``last_flit_cycle`` doubles as the
    transmit-side bandwidth guard.  ``last_drain_cycle`` is the receive-side
    guard: at most one flit per cycle leaves this channel's input buffers
    through the downstream router's crossbar.

    The channel also carries the state the detection hardware of the paper
    associates with it:

    * the inactivity monitor (see module docstring) read by the I/DT/IF
      flags of the detectors;
    * the per-*input*-channel Generate/Propagate flag (``gp``) used by the
      new detection mechanism (NDM);
    * an optional ``on_i_reset`` callback fired when a flit transmission
      clears an I flag that was set (inactivity exceeded ``i_threshold``),
      which NDM uses to promote P flags back to G (paper, Fig. 5 situation).
    """

    __slots__ = (
        "index",
        "kind",
        "src_node",
        "dst_node",
        "direction",
        "vcs",
        "free_mask",
        "lanes_by_mask",
        "occupied_count",
        "last_flit_cycle",
        "active_since",
        "last_drain_cycle",
        "gp",
        "i_threshold",
        "on_i_reset",
        "waiters",
        "route_waiters",
        "header_waiters",
        "wake_box",
        "_frozen_inactivity",
        "fault_down",
        "stuck_mask",
        "usable_mask",
        "counter_lag",
    )

    def __init__(
        self,
        index: int,
        kind: PortKind,
        src_node: Optional[NodeId],
        dst_node: Optional[NodeId],
        direction: Optional[Direction],
        num_vcs: int,
        buffer_depth: int,
    ) -> None:
        self.index = index
        self.kind = kind
        self.src_node = src_node
        self.dst_node = dst_node
        self.direction = direction
        self.vcs: List[VirtualChannel] = [
            VirtualChannel(self, i, buffer_depth) for i in range(num_vcs)
        ]
        # Incremental free-lane structure: bit ``i`` of ``free_mask`` is
        # set iff lane ``i`` is unoccupied, maintained by VirtualChannel
        # allocate/release as two integer ops.  ``lanes_by_mask[mask]``
        # is the precomputed tuple of free lanes for that mask, in
        # lane-index order — the exact order a scan of ``vcs`` would
        # collect them, so ``rng.choice`` over it draws identically.
        # The table is skipped for very wide channels (2**n entries).
        self.free_mask = (1 << num_vcs) - 1
        self.lanes_by_mask: Optional[List[Tuple[VirtualChannel, ...]]] = None
        if num_vcs <= MASK_TABLE_MAX_VCS:
            self.lanes_by_mask = [
                tuple(
                    vc for vc in self.vcs if mask & (1 << vc.index)
                )
                for mask in range(1 << num_vcs)
            ]
        self.occupied_count = 0
        self.last_flit_cycle = NEVER
        self.active_since = NEVER
        self.last_drain_cycle = NEVER
        self.gp = GPState.PROPAGATE
        self.i_threshold: Optional[int] = None
        self.on_i_reset: Optional[Callable[["PhysicalChannel", int], None]] = None
        # Input channels whose blocked header waits on this output channel
        # (refcounted); maintained only when the selective G/P promotion
        # variant is active.
        self.waiters: Optional[Dict["PhysicalChannel", int]] = None
        # Event-driven quiescence (see repro.network.simulator): parked
        # messages whose feasible set contains this output channel.  They
        # are woken — route_asleep cleared — whenever a lane frees or the
        # channel's inactivity counter resumes from a frozen value (both
        # can only make routing or detection possible *earlier*).
        # Insertion-ordered dicts (values unused) rather than sets: waiter
        # iteration order must not depend on PYTHONHASHSEED.
        self.route_waiters: Optional[Dict["Message", None]] = None
        # Parked messages whose header sits on this (input) channel; woken
        # by a G/P Propagate->Generate promotion (see repro.core.ndm).
        self.header_waiters: Optional[Dict["Message", None]] = None
        # One-element list shared with the simulator, counting messages
        # currently parked for routing; every wake site decrements it so
        # the routing phase knows when its whole pending list is asleep.
        # (A throwaway box until the simulator installs the shared one.)
        self.wake_box: List[int] = [0]
        # Counter value latched when the channel became fully unoccupied;
        # the hardware register keeps its value across unoccupied gaps.
        self._frozen_inactivity = 0
        # --- fault-injection state (see repro.faults) -------------------
        # ``usable_mask`` is the set of lanes routing/injection may
        # allocate: all lanes while healthy, 0 while the link is down,
        # and the complement of ``stuck_mask`` otherwise.  Healthy runs
        # keep it at the all-ones value, so hot paths may AND it in
        # unconditionally.  ``counter_lag`` distorts the inactivity
        # reading (frozen/delayed counter faults) without touching the
        # timestamps the bandwidth guards depend on; it can only move a
        # threshold crossing *later*, so cached detection deadlines stay
        # valid lower bounds.
        self.fault_down = False
        self.stuck_mask = 0
        self.usable_mask = (1 << num_vcs) - 1
        self.counter_lag = 0

    # ------------------------------------------------------------------
    # Occupancy bookkeeping (called by VirtualChannel)
    # ------------------------------------------------------------------
    def note_occupied(self, cycle: int) -> None:
        """Register one more occupied lane (starts/resumes the counter)."""
        if self.occupied_count == 0:
            # Resume the counter from its frozen value: the virtual start
            # is back-dated so inactivity(cycle) == frozen value now.
            self.active_since = cycle - self._frozen_inactivity
            # The counter starts advancing again, so a parked waiter's
            # detection deadline may now be reachable: wake them all.
            if self.route_waiters:
                box = self.wake_box
                for m in self.route_waiters:
                    if m.route_asleep:
                        m.route_asleep = False
                        box[0] -= 1
        self.occupied_count += 1

    def note_released(self, cycle: int) -> None:
        """Register one freed lane (freezes the counter at zero lanes)."""
        self.occupied_count -= 1
        if self.occupied_count < 0:
            raise RuntimeError(f"{self.describe()}: negative occupancy")
        if self.occupied_count == 0:
            start = self.last_flit_cycle
            if self.active_since > start:
                start = self.active_since
            frozen = cycle - start - self.counter_lag
            self._frozen_inactivity = frozen if frozen > 0 else 0
            # The latched register value already reflects the lag; the
            # counter resumes from it on re-occupation with a clean slate.
            self.counter_lag = 0
        # A freed lane may let a parked header route on its next attempt.
        if self.route_waiters:
            box = self.wake_box
            for m in self.route_waiters:
                if m.route_asleep:
                    m.route_asleep = False
                    box[0] -= 1

    # ------------------------------------------------------------------
    # Monitor
    # ------------------------------------------------------------------
    def inactivity(self, cycle: int) -> int:
        """Cycles since the last flit crossed, while at least one VC is held.

        This is the value of the paper's per-channel counter at ``cycle``.
        """
        if self.occupied_count == 0:
            return self._frozen_inactivity
        start = self.last_flit_cycle
        if self.active_since > start:
            start = self.active_since
        value = cycle - start - self.counter_lag
        return value if value > 0 else 0

    def inactivity_deadline(self, threshold: int) -> Optional[int]:
        """First cycle at which ``inactivity(cycle) > threshold`` can hold.

        Assumes no further events on this channel: the returned cycle is a
        *lower bound* on the real crossing (a flit transmission only pushes
        it later; occupancy transitions wake the waiters that cached it).
        Returns ``None`` when the counter is frozen at or below the
        threshold — it cannot cross until the channel is re-occupied.
        A value in the past means the threshold is already exceeded.
        """
        if self.occupied_count == 0:
            if self._frozen_inactivity > threshold:
                return NEVER  # frozen above threshold: holds at any cycle
            return None
        start = self.last_flit_cycle
        if self.active_since > start:
            start = self.active_since
        return start + threshold + 1 + self.counter_lag

    def record_flit(self, cycle: int) -> None:
        """Account for one flit crossing the channel at ``cycle``.

        Resets the inactivity monitor; if that transition clears a set
        I flag, the ``on_i_reset`` hook fires *before* the reset so the
        detector observes the transition (the paper's root-relabeling rule).
        """
        if (
            self.i_threshold is not None
            and self.on_i_reset is not None
            and self.occupied_count > 0
        ):
            start = self.last_flit_cycle
            if self.active_since > start:
                start = self.active_since
            if cycle - start - self.counter_lag > self.i_threshold:
                self.on_i_reset(self, cycle)
        self.last_flit_cycle = cycle
        self.counter_lag = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def free_lanes(self) -> Tuple[VirtualChannel, ...]:
        """The currently unoccupied lanes, in lane-index order.

        Hot paths read ``lanes_by_mask[free_mask]`` inline instead; this
        accessor serves checks, tests and wide-channel fallback.
        """
        table = self.lanes_by_mask
        if table is not None:
            return table[self.free_mask]
        mask = self.free_mask
        return tuple(vc for vc in self.vcs if mask & (1 << vc.index))

    def free_vcs(self) -> List[VirtualChannel]:
        """The currently unoccupied lanes of this channel (index order)."""
        return list(self.free_lanes)

    # ------------------------------------------------------------------
    # Fault state (mutated only by repro.faults.injector.FaultInjector)
    # ------------------------------------------------------------------
    def recompute_usable(self) -> None:
        """Refresh ``usable_mask`` from ``fault_down`` / ``stuck_mask``.

        A widening recompute (a heal) can unblock parked waiters, but the
        wake is deliberately not issued here: the only caller is
        ``FaultInjector.apply``, which mutates many channels per event and
        ends with one ``sim.wake_all_parked()`` covering them all.
        """
        mask = 0 if self.fault_down else (1 << len(self.vcs)) - 1
        self.usable_mask = mask & ~self.stuck_mask  # repro-lint: disable=EFF002 - FaultInjector.apply wakes after the batch of recomputes

    def usable_free_lanes(self) -> Tuple[VirtualChannel, ...]:
        """Free lanes routing may actually allocate (fault-aware).

        Identical to :attr:`free_lanes` on a healthy channel; hot paths
        inline the ``free_mask & usable_mask`` table lookup instead.
        """
        mask = self.free_mask & self.usable_mask
        table = self.lanes_by_mask
        if table is not None:
            return table[mask]
        return tuple(vc for vc in self.vcs if mask & (1 << vc.index))

    def has_free_vc(self) -> bool:
        """Whether any lane of this channel is unoccupied."""
        return self.occupied_count < len(self.vcs)

    def describe(self) -> str:
        """Short human-readable identity (endpoint nodes and kind)."""
        if self.kind is PortKind.NETWORK:
            return f"net[{self.src_node}->{self.dst_node} dir={self.direction}]"
        if self.kind is PortKind.INJECTION:
            return f"inj[node={self.dst_node}]"
        return f"ej[node={self.src_node}]"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PC#{self.index} {self.describe()}"
