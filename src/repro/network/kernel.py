"""Cycle kernels: the narrow interface behind the simulator's phase loop.

A *kernel* owns the per-cycle phase sequencing — checks, probes, routing,
movement, injection, generation — that :meth:`Simulator.step` used to
inline.  The simulator builds the network, the detector and the message
lists; the kernel decides how one cycle of that state is advanced.  This
is the seam the engines plug into:

* ``"scan"`` — the reference kernel: the phase methods re-scan every
  message every cycle (the simulator's park flags stay off).
* ``"event"`` — same phase sequence, with parking enabled: blocked
  headers and frozen worms are skipped until a provable wakeup event.
* ``"batch"`` — per-run identical to ``"event"``; the batch win comes
  from :mod:`repro.network.batch`, which shares one kernel advance
  across many threshold cells of a campaign grid.

All three kernels sequence the *same* phase methods in the same order,
so runs are bit-identical across engines by construction; the engines
differ only in which work they can prove skippable.  Keeping the
sequencing here (rather than in ``step()``) gives batch/vectorized
backends a single override point without touching the simulator's state
machine.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Dict, FrozenSet, Tuple, Type

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.network.simulator import Simulator


# ----------------------------------------------------------------------
# Phase effect contracts (read by repro.lint.contracts / rule EFF001)
# ----------------------------------------------------------------------
# The effect *domain* is the behavioural state shared by the three
# engines: every attribute of Message / VirtualChannel / PhysicalChannel
# / Router that feeds the trajectory or the behavioural digest.  The
# groups below partition it; each phase declares which groups it may
# write, and the phase-effect analyzer (``repro lint``, rule EFF001)
# verifies the *transitive* write set of each phase method against this
# table.  Telemetry (stats, tracers, perf counters) is deliberately
# outside the domain — writing it is always allowed.
EFFECT_GROUPS: Dict[str, FrozenSet[str]] = {
    # Event-engine parking surface: sleep flags, waiter registries and
    # the shared parked-message counter box.
    "park": frozenset(
        {
            "route_asleep",
            "move_asleep",
            "wait_registered",
            "route_waiters",
            "header_waiters",
            "wake_box",
        }
    ),
    # NDM Generate/Propagate flags and the selective-promotion waiter
    # refcounts that drive them.
    "gp": frozenset({"gp", "waiters"}),
    # Channel occupancy: lane ownership, buffered flits, free-lane masks
    # and the inactivity-monitor activation state derived from them.
    "occupancy": frozenset(
        {
            "occupant",
            "flits",
            "free_mask",
            "occupied_count",
            "active_since",
            "_frozen_inactivity",
            "busy_network_vcs",
        }
    ),
    # The paper's per-channel counters and the detector plumbing wired
    # into them.
    "counters": frozenset(
        {
            "last_flit_cycle",
            "last_drain_cycle",
            "counter_lag",
            "i_threshold",
            "on_i_reset",
        }
    ),
    # Worm extent: the span list and source/delivery flit accounting.
    "worm": frozenset(
        {
            "spans",
            "allocated_vc",
            "flits_at_source",
            "flits_delivered",
            "last_source_flit_cycle",
        }
    ),
    # Per-message routing bookkeeping between attempts.
    "routing_state": frozenset(
        {
            "first_attempt_done",
            "blocked_since",
            "feasible_pcs",
            "feasible_vcs",
        }
    ),
    # Message lifecycle: status transitions and the flags the stats
    # fold reads.
    "lifecycle": frozenset(
        {
            "status",
            "inject_cycle",
            "deliver_cycle",
            "inject_node",
            "in_active",
            "ever_injected",
            "counted",
        }
    ),
    # Detection/recovery outcomes recorded on the message.
    "detection": frozenset(
        {
            "marked_deadlocked",
            "times_detected",
            "recoveries",
            "retries",
            "is_recovery_reinjection",
        }
    ),
    # Fault-injection state: written only by repro.faults.injector,
    # never by a cycle phase.
    "faults": frozenset({"fault_down", "stuck_mask", "usable_mask"}),
}


def _effects(*groups: str) -> FrozenSet[str]:
    out: FrozenSet[str] = frozenset()
    for group in groups:
        out |= EFFECT_GROUPS[group]
    return out


#: Simulator phase-method name -> phase name, in canonical order (the
#: order :meth:`ScanKernel.advance` sequences them).
PHASE_METHODS: Dict[str, str] = {
    "_checks_phase": "checks",
    "_probes_phase": "probes",
    "_routing_phase": "routing",
    "_movement_phase": "movement",
    "_injection_phase": "injection",
    "_generation_phase": "generation",
}

#: The canonical phase order (documentation + table-driven tests).
PHASE_SEQUENCE: Tuple[str, ...] = (
    "checks",
    "probes",
    "routing",
    "movement",
    "injection",
    "generation",
)

#: Phase name -> attributes the phase (transitively) may write.  The
#: checks/probes/routing phases can reach detection and therefore the
#: full recovery path (worm teardown touches nearly everything), so
#: their contract is the whole domain minus fault state; the later
#: phases are meaningfully narrower.  Fault state is writable by *no*
#: phase: the injector mutates it in ``step()`` before the kernel runs.
PHASE_EFFECTS: Dict[str, FrozenSet[str]] = {
    "checks": _effects(
        "park", "gp", "occupancy", "counters", "worm",
        "routing_state", "lifecycle", "detection",
    ),
    "probes": _effects(
        "park", "gp", "occupancy", "counters", "worm",
        "routing_state", "lifecycle", "detection",
    ),
    "routing": _effects(
        "park", "gp", "occupancy", "counters", "worm",
        "routing_state", "lifecycle", "detection",
    ),
    "movement": _effects(
        "park", "gp", "occupancy", "counters", "worm", "lifecycle",
    ),
    "injection": _effects("park", "occupancy", "worm", "lifecycle"),
    "generation": _effects("lifecycle"),
}


class CycleKernel:
    """Advance one simulator by one cycle (phase sequencing only).

    Kernels are stateless: all simulation state lives on the simulator,
    so one kernel instance may drive any number of runs.
    """

    #: Engine name this kernel implements (matches ``config.engine``).
    name = "abstract"

    def advance(self, sim: "Simulator", cycle: int) -> None:
        """Run every phase of ``cycle`` in the model's canonical order."""
        raise NotImplementedError


class ScanKernel(CycleKernel):
    """The reference phase sequence (also reused by event and batch).

    The phase *methods* belong to the simulator — they read and mutate
    its state — and whether they park or re-scan is decided by the
    simulator's engine flags, not here.  This class is purely the
    canonical ordering plus the opt-in per-phase wall-clock profiling.
    """

    name = "scan"

    def advance(self, sim: "Simulator", cycle: int) -> None:
        if sim._profile:
            self._advance_profiled(sim, cycle)
            return
        sim._checks_phase(cycle)
        if sim._probe_phase_on:
            sim._probes_phase(cycle)
        sim._routing_phase(cycle)
        # Dispatched through the seam: the batch backend may have swapped
        # in the vectorized SoA movement phase (repro.network.vecmove).
        sim._movement_impl(cycle)
        sim._injection_phase(cycle)
        if sim.generation_enabled:
            sim._generation_phase(cycle)

    def _advance_profiled(self, sim: "Simulator", cycle: int) -> None:
        t0 = perf_counter()
        sim._checks_phase(cycle)
        t1 = perf_counter()
        if sim._probe_phase_on:
            sim._probes_phase(cycle)
        t1b = perf_counter()
        sim._routing_phase(cycle)
        t2 = perf_counter()
        sim._movement_impl(cycle)
        t3 = perf_counter()
        sim._injection_phase(cycle)
        t4 = perf_counter()
        if sim.generation_enabled:
            sim._generation_phase(cycle)
        t5 = perf_counter()
        pt = sim._phase_time
        pt["checks"] += t1 - t0
        pt["probes"] += t1b - t1
        pt["routing"] += t2 - t1b
        pt["movement"] += t3 - t2
        pt["injection"] += t4 - t3
        pt["generation"] += t5 - t4


class EventKernel(ScanKernel):
    """Event-driven engine: same sequence, parking enabled by the sim."""

    name = "event"


class BatchKernel(EventKernel):
    """Batch engine's per-run kernel: event semantics for one config.

    A standalone ``engine="batch"`` run is bit-identical to ``"event"``
    (asserted by ``tests/network/test_batch_engine.py``); the actual
    batching — one shared advance serving many threshold cells — lives
    in :class:`repro.network.batch.BatchSimulator`, which drives this
    kernel once per group instead of once per cell.
    """

    name = "batch"


KERNELS: Dict[str, Type[CycleKernel]] = {
    ScanKernel.name: ScanKernel,
    EventKernel.name: EventKernel,
    BatchKernel.name: BatchKernel,
}


def make_kernel(engine: str) -> CycleKernel:
    """Kernel instance for a ``config.engine`` value."""
    try:
        return KERNELS[engine]()
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; choose one of {tuple(KERNELS)}"
        ) from None
