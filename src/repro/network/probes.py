"""Out-of-band edge-chasing probe transport.

The probe detector (``repro.core.probe``) works like the classic
Chandy-Misra-Haas edge-chasing scheme, adapted to wormhole channel
wait-graphs: when a header has been blocked past a launch deadline, its
router starts a *probe session* and sends one probe along every wait
edge — every occupied, usable virtual channel the header could route
through.  Each probe advances one hop per cycle, out of band (a
dedicated simulator phase, no network bandwidth consumed), following the
wait edges of whichever blocked message it currently sits at.  A probe
that arrives back at its initiator has traversed a cycle of the wait
graph: the session declares deadlock and elects a victim for the
recovery path.

Protocol rules, in evaluation order at each hop (all state reads, no
writes to network state — the transport is a pure observer):

* **return** — the probe reached its initiator again: deadlock; the
  victim is the *youngest* (highest-id) message on the probe's path.
* **progress** — the current message is no longer blocked, was already
  marked for recovery, or has a free usable lane (an escape): the wait
  path is not a deadlock cycle; the probe dies.
* **election** — the probe sits at a blocked message with a *lower* id
  that is itself running a session: this probe dies and leaves the cycle
  to the lowest-id initiator (exactly one session survives per cycle).
* **forward** — otherwise the probe fans out along the message's wait
  edges, in deterministic per-channel order (feasible channels in cached
  routing order, lanes in index order), skipping fault-unusable lanes
  exactly as the ground-truth oracle does.

Probe storms are bounded three ways, all per initiator: a visited-set
(each message is probed at most once per session), a 64-bit rolling
*path digest* dedupe (the snippet-classic graph summarization — two
probes carrying the same digest walked the same edge path), and hard
``max_hops`` / ``max_outstanding`` caps.  A session whose probes all die
simply ends; the detector relaunches on its cadence while the initiator
stays blocked, so a deadlock that forms *later* is still found.

One special case keeps the false-negative guarantee under faults: a
blocked header with **no** usable lane at all — every alternative dead
or stuck, nothing to wait on and nothing to escape through — can never
advance under the current fault state.  The oracle classifies it as
deadlocked, and no cycle-chasing probe would ever return to it, so the
launch declares it deadlocked directly (a *dead-end self-detection*).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.network.message import Message
from repro.network.types import MessageStatus

#: 64-bit rolling digest parameters (FNV-1a prime, golden-ratio salt).
DIGEST_MASK = (1 << 64) - 1
_DIGEST_PRIME = 0x100000001B3
_DIGEST_SALT = 0x9E3779B97F4A7C15


def roll_digest(
    digest: int, channel_index: int, lane_index: int, holder_id: int
) -> int:
    """Fold one wait edge into a 64-bit rolling path digest.

    Deterministic and backend-free (no ``hash()``): the digest must be
    identical across hosts and PYTHONHASHSEED values because it feeds
    the per-initiator dedupe, whose drops are behavioural (counted in
    stats and therefore in the engine-equivalence digests).
    """
    for value in (channel_index, lane_index, holder_id):
        digest ^= (value + _DIGEST_SALT) & DIGEST_MASK
        digest = (digest * _DIGEST_PRIME) & DIGEST_MASK
    return digest


def wait_edges(m: Message) -> Tuple[bool, List[Tuple[int, int, Message]]]:
    """Escape test plus ordered wait edges of the blocked message ``m``.

    Returns ``(has_escape, edges)`` where ``edges`` is the ordered list
    of ``(channel_index, lane_index, holder)`` over ``m``'s feasible
    lanes.  A free usable lane is an escape: the caller should drop the
    probe (the message can advance), so ``edges`` is not meaningful when
    ``has_escape`` is True.  Fault-unusable lanes are skipped entirely —
    neither escape nor wait — mirroring the fault-aware oracle in
    :func:`repro.analysis.deadlock.find_deadlocked`.
    """
    edges: List[Tuple[int, int, Message]] = []
    lanes = m.feasible_vcs
    if lanes is None:
        for pc in m.feasible_pcs:
            usable = pc.usable_mask
            for vc in pc.vcs:
                if not (usable >> vc.index) & 1:
                    continue
                occupant = vc.occupant
                if occupant is None:
                    return True, edges
                edges.append((pc.index, vc.index, occupant))
    else:
        for vc in lanes:
            if not (vc.pc.usable_mask >> vc.index) & 1:
                continue
            occupant = vc.occupant
            if occupant is None:
                return True, edges
            edges.append((vc.pc.index, vc.index, occupant))
    return False, edges


class Probe:
    """One in-flight probe: arrives at ``at`` on the next probe phase."""

    __slots__ = ("at", "digest", "hops", "victim")

    def __init__(self, at: Message, digest: int, hops: int, victim: Message):
        self.at = at
        self.digest = digest
        self.hops = hops
        #: Youngest (highest-id) message on the probe's path so far — the
        #: victim candidate if this probe closes the cycle.
        self.victim = victim

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Probe(at={self.at.id}, hops={self.hops}, "
            f"digest={self.digest:#018x})"
        )


class ProbeSession:
    """All probes chasing edges on behalf of one blocked initiator."""

    __slots__ = (
        "initiator",
        "episode",
        "started",
        "visited",
        "digests",
        "probes",
        "has_returning",
    )

    def __init__(self, initiator: Message, cycle: int) -> None:
        self.initiator = initiator
        #: ``blocked_since`` at session start: the initiator advancing and
        #: re-blocking elsewhere starts a new episode, staling this session.
        self.episode = initiator.blocked_since
        self.started = cycle
        #: Per-initiator dedupe: message ids already carrying a probe of
        #: this session (insertion-ordered dict used as an ordered set).
        self.visited: Dict[int, None] = {}
        #: Path digests already seen in this session.
        self.digests: Dict[int, None] = {}
        self.probes: List[Probe] = []
        #: Whether a returning probe (next hop = initiator) is in flight.
        #: One suffices — it ends the session on arrival — so further
        #: returning probes are deduped, which caps outstanding probes at
        #: ``max_outstanding + 1`` even though returns bypass the guard.
        self.has_returning = False


class ProbeTransport:
    """Deterministic out-of-band carrier for every active probe session.

    Holds no reference to the simulator: it reads only message/channel
    state that is bit-identical across the scan and event engines at the
    probe phase, so every counter it maintains is behavioural (safe to
    include in the engine-equivalence digests).
    """

    def __init__(self, max_hops: int, max_outstanding: int) -> None:
        if max_hops < 1:
            raise ValueError(f"probe max_hops must be >= 1, got {max_hops}")
        if max_outstanding < 1:
            raise ValueError(
                f"probe max_outstanding must be >= 1, got {max_outstanding}"
            )
        self.max_hops = max_hops
        self.max_outstanding = max_outstanding
        #: initiator id -> active session (insertion-ordered: sessions are
        #: advanced in launch order, keeping victim order deterministic).
        self.sessions: Dict[int, ProbeSession] = {}
        # Behavioural counters (flushed into SimulationStats by the
        # detector): launches and detections, hop work, and one counter
        # per drop rule so the grading tables can tell a dedupe from an
        # election from a storm-guard cap.
        self.launches = 0
        self.hops = 0
        self.cycle_detections = 0
        self.deadend_detections = 0
        self.dropped_progress = 0
        self.dropped_dedupe = 0
        self.dropped_election = 0
        self.dropped_hops = 0
        self.dropped_overflow = 0
        self.peak_outstanding = 0

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def _marked(self, message: Message) -> bool:
        """Is ``message`` already detected *from this transport's view*?

        Seam mirroring :meth:`repro.core.probe.ProbeDetection._marked`:
        the batch backend's per-cell transports override it to read the
        cell's pending bit, since a shared multi-cell run never sets the
        global ``marked_deadlocked`` flag.
        """
        return message.marked_deadlocked

    def has_session(self, initiator_id: int) -> bool:
        return initiator_id in self.sessions

    def outstanding(self, initiator_id: int) -> int:
        """Probes currently in flight for one initiator (tests, bounds)."""
        session = self.sessions.get(initiator_id)
        return len(session.probes) if session is not None else 0

    def start_session(self, m: Message, cycle: int) -> Optional[Message]:
        """Launch a probe session from the blocked initiator ``m``.

        Returns ``m`` itself when the launch immediately proves deadlock
        (the fault-wedged dead-end case: no usable lane to wait on *or*
        escape through), ``None`` otherwise.  A launch finding an escape
        starts nothing — the message can still advance.
        """
        escape, edges = wait_edges(m)
        if escape:
            self.dropped_progress += 1
            return None
        if not edges:
            # Every alternative is fault-unusable: the header can never
            # advance under the current fault state, and no probe could
            # chase a cycle back to it.  Declare directly.
            self.launches += 1
            self.deadend_detections += 1
            return m
        session = ProbeSession(m, cycle)
        for channel_index, lane_index, holder in edges:
            if holder is m:
                # Self-wait (a lane the initiator itself still holds):
                # not a cycle through another message; skip, as the
                # exemplar protocol does.
                self.dropped_dedupe += 1
                continue
            self._forward(session, 0, 0, channel_index, lane_index, holder, m)
        self.launches += 1
        if not session.probes:
            # Everything deduped away at launch: nothing in flight.
            return None
        self.sessions[m.id] = session
        if len(session.probes) > self.peak_outstanding:
            self.peak_outstanding = len(session.probes)
        return None

    # ------------------------------------------------------------------
    # Per-cycle advance
    # ------------------------------------------------------------------
    def advance(self, cycle: int) -> List[Message]:
        """Advance every in-flight probe one hop; return elected victims."""
        victims: List[Message] = []
        ended: List[int] = []
        in_network = MessageStatus.IN_NETWORK
        for initiator_id, session in self.sessions.items():
            initiator = session.initiator
            if (
                initiator.status is not in_network
                or self._marked(initiator)
                or initiator.blocked_since != session.episode
                or not initiator.is_blocked()
            ):
                # Initiator advanced, was recovered, or re-blocked in a
                # new episode: every probe of this session is moot.
                ended.append(initiator_id)
                continue
            victim = self._advance_session(session)
            if victim is not None:
                victims.append(victim)
                ended.append(initiator_id)
            elif not session.probes:
                ended.append(initiator_id)  # dried up; cadence relaunches
        for initiator_id in ended:
            del self.sessions[initiator_id]
        return victims

    def _advance_session(self, session: ProbeSession) -> Optional[Message]:
        """One hop for each of a session's probes; victim on detection."""
        out: List[Probe] = []
        in_network = MessageStatus.IN_NETWORK
        initiator = session.initiator
        for probe in session.probes:
            self.hops += 1
            x = probe.at
            if x is initiator:
                # The probe closed a cycle of the wait graph.
                self.cycle_detections += 1
                victim = probe.victim
                if (
                    victim.status is not in_network
                    or self._marked(victim)
                ):
                    victim = initiator
                return victim
            if (
                x.status is not in_network
                or self._marked(x)
                or not x.is_blocked()
            ):
                self.dropped_progress += 1
                continue
            if x.id < initiator.id and x.id in self.sessions:
                # Lowest-id root election: leave the cycle to the
                # lower-id initiator's own session.
                self.dropped_election += 1
                continue
            escape, edges = wait_edges(x)
            if escape:
                self.dropped_progress += 1
                continue
            for channel_index, lane_index, holder in edges:
                if holder is x:
                    self.dropped_dedupe += 1
                    continue
                self._forward(
                    session,
                    probe.digest,
                    probe.hops,
                    channel_index,
                    lane_index,
                    holder,
                    probe.victim,
                    out,
                )
        session.probes = out
        if len(out) > self.peak_outstanding:
            self.peak_outstanding = len(out)
        return None

    def _forward(
        self,
        session: ProbeSession,
        digest: int,
        hops: int,
        channel_index: int,
        lane_index: int,
        holder: Message,
        victim: Message,
        out: Optional[List[Probe]] = None,
    ) -> None:
        """Create (or drop) one child probe along a wait edge."""
        sink = session.probes if out is None else out
        returning = holder is session.initiator
        next_digest = roll_digest(digest, channel_index, lane_index, holder.id)
        if returning:
            # Returning probes bypass the visited/digest dedupe and the
            # outstanding cap: dropping one would lose the very detection
            # the session exists for.  One in flight is enough, though —
            # it ends the session on arrival — so further returns dedupe
            # against it.  (max_hops still applies — a cycle longer than
            # the cap is declared undetectable by configuration.)
            if session.has_returning:
                self.dropped_dedupe += 1
                return
        elif holder.id in session.visited or next_digest in session.digests:
            self.dropped_dedupe += 1
            return
        if hops + 1 > self.max_hops:
            self.dropped_hops += 1
            return
        if not returning and len(sink) >= self.max_outstanding:
            self.dropped_overflow += 1
            return
        if returning:
            session.has_returning = True
        else:
            session.visited[holder.id] = None
            session.digests[next_digest] = None
        if holder.id > victim.id:
            victim = holder
        sink.append(Probe(holder, next_digest, hops + 1, victim))
