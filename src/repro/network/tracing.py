"""Structured event tracing.

A :class:`Tracer` records simulator events as plain tuples for debugging,
trace-driven tests, and the anatomy example.  Tracing is pull-free: the
simulator exposes a ``tracer`` attribute that is ``None`` by default, and
every hot-path call site guards with ``if tracer is not None`` — zero cost
when disabled.

Event kinds (first tuple element):

* ``("inject", cycle, message_id, node)`` — header entered an injection VC;
* ``("route", cycle, message_id, node, channel_index)`` — output granted;
* ``("block", cycle, message_id, node)`` — first failed routing attempt;
* ``("deliver", cycle, message_id, node)`` — message fully ejected;
* ``("detect", cycle, message_id, node, mechanism)`` — marked deadlocked;
* ``("recover", cycle, message_id, node)`` — worm torn down by recovery;
* ``("fault", cycle, -1, channel_index, op, arg)`` — a fault-schedule
  edge fired on a channel (op is e.g. ``"link-down"``/``"link-up"``,
  ``"vc-stuck"``/``"vc-unstuck"``, ``"counter-lag"``,
  ``"counter-freeze"``/``"counter-thaw"``; arg is the lane or lag).
  The message-id slot is ``-1``: fault edges target hardware, not worms.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterable, List, Optional, Tuple

Event = Tuple[Any, ...]  # ("kind", cycle, message_id, ...)


class Tracer:
    """Bounded in-memory event recorder.

    Args:
        capacity: maximum events retained (oldest dropped first);
            0 means unbounded.
        kinds: optional whitelist of event kinds to record.
    """

    def __init__(self, capacity: int = 100_000, kinds: Optional[Iterable[str]] = None) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.events: Deque[Event] = deque(
            maxlen=capacity if capacity else None
        )
        self.dropped = 0

    def record(self, event: Event) -> None:
        if self.kinds is not None and event[0] not in self.kinds:
            return
        if self.capacity and len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self.events if e[0] == kind]

    def for_message(self, message_id: int) -> List[Event]:
        return [e for e in self.events if e[2] == message_id]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e[0] == kind)

    def lifecycle(self, message_id: int) -> List[str]:
        """The ordered event kinds one message went through."""
        return [e[0] for e in self.for_message(message_id)]

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer({len(self.events)} events, dropped={self.dropped})"


def format_event(event: Event) -> str:
    """Human-readable single-line rendering of one event."""
    kind, cycle, message_id, *rest = event
    extra = " ".join(str(r) for r in rest)
    return f"[{cycle:>7}] {kind:<8} msg={message_id} {extra}".rstrip()
