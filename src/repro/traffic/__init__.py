"""Traffic patterns and message-length workloads."""

from repro.traffic.lengths import (
    BimodalLength,
    FixedLength,
    LengthSpec,
    PAPER_SIZES,
    UniformLength,
    make_length_spec,
)
from repro.traffic.patterns import (
    BitReversalPattern,
    ButterflyPattern,
    ComplementPattern,
    HotSpotPattern,
    LocalityPattern,
    PerfectShufflePattern,
    TrafficPattern,
    TransposePattern,
    UniformPattern,
    make_pattern,
    pattern_names,
)
from repro.traffic.workload import Workload

__all__ = [
    "BimodalLength",
    "BitReversalPattern",
    "ButterflyPattern",
    "ComplementPattern",
    "FixedLength",
    "HotSpotPattern",
    "LengthSpec",
    "LocalityPattern",
    "PAPER_SIZES",
    "PerfectShufflePattern",
    "TrafficPattern",
    "TransposePattern",
    "UniformLength",
    "UniformPattern",
    "Workload",
    "make_length_spec",
    "make_pattern",
    "pattern_names",
]
