"""Message length distributions.

The paper evaluates 16-flit messages (**s**), 64-flit (**l**), 256-flit
(**L**) and a hybrid load (**sl**) of 60 % 16-flit and 40 % 64-flit
messages.  The mean length converts the paper's flits/cycle/node injection
rates into per-cycle message generation probabilities.
"""

from __future__ import annotations

import random
from typing import Dict


class LengthSpec:
    """Strategy interface for drawing message lengths (in flits)."""

    name = "abstract"

    def draw(self, rng: random.Random) -> int:
        raise NotImplementedError

    def mean(self) -> float:
        raise NotImplementedError


class FixedLength(LengthSpec):
    """Every message has exactly ``flits`` flits."""

    name = "fixed"

    def __init__(self, flits: int) -> None:
        if flits < 1:
            raise ValueError(f"message length must be >= 1 flit, got {flits}")
        self.flits = flits

    def draw(self, rng: random.Random) -> int:
        return self.flits

    def mean(self) -> float:
        return float(self.flits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedLength({self.flits})"


class BimodalLength(LengthSpec):
    """Mix of two fixed lengths (the paper's ``sl`` load)."""

    name = "bimodal"

    def __init__(self, short: int = 16, long: int = 64, short_fraction: float = 0.6) -> None:
        if short < 1 or long < 1:
            raise ValueError("message lengths must be >= 1 flit")
        if not 0.0 <= short_fraction <= 1.0:
            raise ValueError(
                f"short_fraction must be in [0, 1], got {short_fraction}"
            )
        self.short = short
        self.long = long
        self.short_fraction = short_fraction

    def draw(self, rng: random.Random) -> int:
        if rng.random() < self.short_fraction:
            return self.short
        return self.long

    def mean(self) -> float:
        return self.short_fraction * self.short + (1 - self.short_fraction) * self.long

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BimodalLength(short={self.short}, long={self.long}, "
            f"short_fraction={self.short_fraction})"
        )


class UniformLength(LengthSpec):
    """Lengths uniform on ``[low, high]`` (extra, not in the paper)."""

    name = "uniform"

    def __init__(self, low: int, high: int) -> None:
        if low < 1 or high < low:
            raise ValueError(f"need 1 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def draw(self, rng: random.Random) -> int:
        return rng.randint(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformLength({self.low}, {self.high})"


#: The paper's named message-size workloads (Table captions: s, l, L, sl).
PAPER_SIZES: Dict[str, str] = {
    "s": "16-flit messages",
    "l": "64-flit messages",
    "L": "256-flit messages",
    "sl": "60% 16-flit + 40% 64-flit",
}


def make_length_spec(name: str, **params: object) -> LengthSpec:
    """Instantiate a length spec by config name.

    Accepts the paper's shorthand names (``"s"``, ``"l"``, ``"L"``,
    ``"sl"``) plus ``"fixed"``, ``"bimodal"`` and ``"uniform"`` with
    explicit parameters.
    """
    if name == "s":
        return FixedLength(16)
    if name == "l":
        return FixedLength(64)
    if name == "L":
        return FixedLength(256)
    if name == "sl":
        return BimodalLength(short=16, long=64, short_fraction=0.6)
    if name == "fixed":
        return FixedLength(**params)  # type: ignore[arg-type]
    if name == "bimodal":
        return BimodalLength(**params)  # type: ignore[arg-type]
    if name == "uniform":
        return UniformLength(**params)  # type: ignore[arg-type]
    raise ValueError(
        f"unknown length spec {name!r}; choose from "
        f"{sorted(PAPER_SIZES) + ['fixed', 'bimodal', 'uniform']}"
    )
