"""Message destination patterns used in the paper's evaluation (Sec. 4).

The paper evaluates: uniform, uniform with locality, bit-reversal,
perfect-shuffle, butterfly, and a hot-spot pattern in which 5 % of messages
are destined for one node.  Transpose and complement are also provided as
commonly used extras.

Bit-permutation patterns are defined on the binary representation of the
node index and therefore need a power-of-two node count (the paper's 8-ary
3-cube has 512 = 2**9 nodes; the quick 8-ary 2-cube has 64 = 2**6).
A permutation may map a node to itself; such nodes generate no traffic
(``destination`` returns ``None``), the standard convention.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple, Type

from repro.network.topology import Topology
from repro.network.types import NodeId


class TrafficPattern:
    """Strategy interface mapping a source to a destination draw."""

    name = "abstract"

    def __init__(self, topology: Topology) -> None:
        self.topology = topology

    def destination(self, source: NodeId, rng: random.Random) -> Optional[NodeId]:
        """Destination for a message generated at ``source``.

        Returns ``None`` when the pattern generates no traffic from
        ``source`` (fixed-permutation patterns with a fixed point there).
        """
        raise NotImplementedError

    def sending_fraction(self) -> float:
        """Fraction of nodes that generate traffic (permutation patterns
        have fixed points which stay silent)."""
        return 1.0


class UniformPattern(TrafficPattern):
    """Every other node equally likely."""

    name = "uniform"

    def destination(self, source: NodeId, rng: random.Random) -> Optional[NodeId]:
        dest = rng.randrange(self.topology.num_nodes - 1)
        if dest >= source:
            dest += 1
        return dest


class LocalityPattern(TrafficPattern):
    """Uniform among nodes within ``radius`` hops per dimension.

    The paper's "uniform distribution of message destinations with locality"
    sustains ~3x the uniform injection rate, implying a mean distance of
    roughly 2 hops on the 8-ary 3-cube; per-dimension radius 1 (the default)
    matches that.  Destinations are drawn uniformly from the hypercube of
    offsets ``[-radius, +radius]`` per dimension, excluding the all-zero
    offset.
    """

    name = "locality"

    def __init__(self, topology: Topology, radius: int = 1) -> None:
        super().__init__(topology)
        if radius < 1:
            raise ValueError(f"locality radius must be >= 1, got {radius}")
        if 2 * radius + 1 > topology.radix:
            raise ValueError(
                f"locality radius {radius} too large for radix {topology.radix}"
            )
        self.radius = radius

    def destination(self, source: NodeId, rng: random.Random) -> Optional[NodeId]:
        span = 2 * self.radius + 1
        coords = list(self.topology.coords(source))
        while True:
            offsets = [
                rng.randrange(span) - self.radius
                for _ in range(self.topology.dimensions)
            ]
            if any(offsets):
                break
        dest_coords = [
            (c + o) % self.topology.radix for c, o in zip(coords, offsets)
        ]
        return self.topology.node_at(dest_coords)


class _BitPermutationPattern(TrafficPattern):
    """Base for fixed permutations of the node-index bits."""

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)
        n = topology.num_nodes
        if n & (n - 1):
            raise ValueError(
                f"{self.name} traffic needs a power-of-two node count, got {n}"
            )
        self.bits = n.bit_length() - 1

    def permute(self, index: int) -> int:
        raise NotImplementedError

    def destination(self, source: NodeId, rng: random.Random) -> Optional[NodeId]:
        dest = self.permute(source)
        return None if dest == source else dest

    def sending_fraction(self) -> float:
        n = self.topology.num_nodes
        fixed = sum(1 for i in range(n) if self.permute(i) == i)
        return (n - fixed) / n


class BitReversalPattern(_BitPermutationPattern):
    """Destination index = source index with its bits reversed."""

    name = "bit-reversal"

    def permute(self, index: int) -> int:
        out = 0
        for _ in range(self.bits):
            out = (out << 1) | (index & 1)
            index >>= 1
        return out


class PerfectShufflePattern(_BitPermutationPattern):
    """Destination index = source index rotated left by one bit."""

    name = "perfect-shuffle"

    def permute(self, index: int) -> int:
        mask = (1 << self.bits) - 1
        return ((index << 1) | (index >> (self.bits - 1))) & mask


class ButterflyPattern(_BitPermutationPattern):
    """Destination index = source index with MSB and LSB swapped."""

    name = "butterfly"

    def permute(self, index: int) -> int:
        hi = 1 << (self.bits - 1)
        lo = 1
        high_bit = 1 if index & hi else 0
        low_bit = index & lo
        out = index & ~(hi | lo)
        if low_bit:
            out |= hi
        if high_bit:
            out |= lo
        return out


class TransposePattern(_BitPermutationPattern):
    """Destination index = source index with bit halves swapped (extra)."""

    name = "transpose"

    def permute(self, index: int) -> int:
        half = self.bits // 2
        low = index & ((1 << half) - 1)
        high = index >> half
        return (low << (self.bits - half)) | high


class ComplementPattern(_BitPermutationPattern):
    """Destination index = bitwise complement of the source index (extra)."""

    name = "complement"

    def permute(self, index: int) -> int:
        return index ^ ((1 << self.bits) - 1)


class HotSpotPattern(TrafficPattern):
    """Uniform traffic except ``fraction`` of messages target one node.

    The paper modifies the uniform distribution so that 5 % of the messages
    are destined for the same node.
    """

    name = "hot-spot"

    def __init__(
        self,
        topology: Topology,
        fraction: float = 0.05,
        hot_node: Optional[NodeId] = None,
    ) -> None:
        super().__init__(topology)
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"hot-spot fraction must be in (0, 1), got {fraction}")
        self.fraction = fraction
        # Default hot node: the network center-ish node (node with all
        # coordinates radix // 2), matching common practice.
        if hot_node is None:
            hot_node = topology.node_at(
                [topology.radix // 2] * topology.dimensions
            )
        if not 0 <= hot_node < topology.num_nodes:
            raise ValueError(f"hot node {hot_node} out of range")
        self.hot_node = hot_node
        self._uniform = UniformPattern(topology)

    def destination(self, source: NodeId, rng: random.Random) -> Optional[NodeId]:
        if rng.random() < self.fraction and source != self.hot_node:
            return self.hot_node
        return self._uniform.destination(source, rng)


_PATTERNS: Dict[str, Type[TrafficPattern]] = {
    cls.name: cls
    for cls in (
        UniformPattern,
        LocalityPattern,
        BitReversalPattern,
        PerfectShufflePattern,
        ButterflyPattern,
        TransposePattern,
        ComplementPattern,
        HotSpotPattern,
    )
}


def make_pattern(name: str, topology: Topology, **params: object) -> TrafficPattern:
    """Instantiate a traffic pattern by config name."""
    try:
        cls = _PATTERNS[name]
    except KeyError:
        raise ValueError(
            f"unknown traffic pattern {name!r}; choose from {sorted(_PATTERNS)}"
        ) from None
    return cls(topology, **params)  # type: ignore[arg-type]


def pattern_names() -> Tuple[str, ...]:
    """Names accepted by :func:`make_pattern`."""
    return tuple(sorted(_PATTERNS))
