"""Workload: glue between the traffic config and the simulator.

Converts a :class:`~repro.network.config.TrafficConfig` into live pattern /
length objects and turns the paper's flits/cycle/node injection rate into a
Bernoulli per-cycle message generation probability:

    P(generate this cycle) = injection_rate / mean_message_length

so the *offered* load in flits/cycle/node equals the configured rate.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.network.config import TrafficConfig
from repro.network.topology import Topology
from repro.network.types import NodeId
from repro.traffic.lengths import LengthSpec, make_length_spec
from repro.traffic.patterns import TrafficPattern, make_pattern


class Workload:
    """Live workload generator for one simulation.

    Args:
        config: the traffic section of the simulation config.
        topology: network topology (patterns need coordinates / node count).
    """

    def __init__(self, config: TrafficConfig, topology: Topology) -> None:
        self.config = config
        self.pattern: TrafficPattern = make_pattern(
            config.pattern, topology, **config.pattern_params
        )
        self.lengths: LengthSpec = make_length_spec(
            config.lengths, **config.length_params
        )
        mean = self.lengths.mean()
        if mean <= 0:
            raise ValueError("mean message length must be positive")
        self.generation_probability = config.injection_rate / mean
        if self.generation_probability > 1.0:
            raise ValueError(
                f"injection rate {config.injection_rate} flits/cycle/node "
                f"exceeds one message per cycle at mean length {mean}; "
                "the single-queue source model cannot offer that load"
            )

    def maybe_generate(
        self, source: NodeId, rng: random.Random
    ) -> Optional[Tuple[NodeId, int]]:
        """One Bernoulli trial for ``source``; returns (dest, length) or None.

        Returns ``None`` either when the trial fails or when the pattern
        generates no traffic from this source (permutation fixed point).
        """
        if rng.random() >= self.generation_probability:
            return None
        dest = self.pattern.destination(source, rng)
        if dest is None:
            return None
        return dest, self.lengths.draw(rng)

    def describe(self) -> str:
        return (
            f"{self.config.pattern} / {self.config.lengths} @ "
            f"{self.config.injection_rate} flits/cycle/node"
        )
