"""Ground-truth deadlock analysis.

The detection mechanisms are *heuristics*; to score them (true vs. false
detections, the tables' ``(*)`` annotations, and the claim that NDM detects
every real deadlock) we need an oracle.  With OR-semantics waiting — a
blocked wormhole header may proceed through *any* of its feasible virtual
channels — a set of blocked messages is truly deadlocked iff it is
irreducible under the standard reduction:

    repeatedly remove a blocked message that has (a) a free feasible
    virtual channel, or (b) a feasible virtual channel held by a message
    not in the remaining set (that holder is advancing or was already
    removed, so its tail will eventually release the channel).

What remains after the fixpoint can never advance no matter how the rest of
the network evolves, which is exactly the resource-deadlock condition used
by Warnakulasuriya & Pinkston's deadlock characterization work.

Non-blocked messages can always make progress in this model: an allocated
output means the header only waits for fair channel multiplexing, and
ejection ports consume flits unconditionally (no protocol deadlock).
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.network.message import Message
from repro.network.types import MessageStatus


def find_deadlocked(
    messages: Iterable[Message], honor_faults: bool = False
) -> Set[Message]:
    """Return the set of truly deadlocked messages among ``messages``.

    Only messages whose header is blocked at a router (failed at least one
    routing attempt, no output granted) can participate; everything else is
    treated as able to advance.

    With ``honor_faults`` (fault-schedule runs), virtual channels whose
    lane is currently unusable — link down or lane stuck, i.e. the bit is
    clear in ``PhysicalChannel.usable_mask`` — are skipped entirely: a
    free lane on a dead link is not an escape, and a message holding one
    cannot hand it over.  The verdict is therefore "deadlocked under the
    *current* fault state"; a later heal may dissolve the set, which the
    conformance harness accounts for by re-sweeping each cycle.
    """
    # The blocked test is inlined (attribute reads instead of a method
    # call per message): this oracle runs on every detection event, so
    # its constant factors are on the simulator's hot path.
    in_network = MessageStatus.IN_NETWORK
    candidates = [
        m
        for m in messages
        if m.first_attempt_done
        and m.allocated_vc is None
        and m.status is in_network
        and m.spans
    ]
    if not candidates:
        return set()

    # The reduction fixpoint is confluent (the irreducible set is unique),
    # but we still reduce in a deterministic order — iterating the stable
    # candidate list, not the hash-ordered set — so intermediate states
    # and work done are identical across PYTHONHASHSEED values.  The
    # escape test is inlined in the pass loop; in the common wedged-network
    # case the fixpoint converges in two passes, so per-call overhead
    # dominates any asymptotically cleverer scheme.
    deadlocked: Set[Message] = set(candidates)
    changed = True
    while changed:
        changed = False
        for m in candidates:
            if m not in deadlocked:
                continue
            lanes = m.feasible_vcs
            if lanes is None:
                escaped = False
                for pc in m.feasible_pcs:
                    usable = pc.usable_mask if honor_faults else -1
                    for vc in pc.vcs:
                        if not (usable >> vc.index) & 1:
                            continue  # faulted lane: neither escape nor wait
                        occupant = vc.occupant
                        if occupant is None or occupant not in deadlocked:
                            escaped = True
                            break
                    if escaped:
                        break
            else:
                escaped = False
                for vc in lanes:
                    if (
                        honor_faults
                        and not (vc.pc.usable_mask >> vc.index) & 1
                    ):
                        continue
                    occupant = vc.occupant
                    if occupant is None or occupant not in deadlocked:
                        escaped = True
                        break
            if escaped:
                deadlocked.discard(m)
                changed = True
    return deadlocked


def waiting_chain(message: Message, limit: int = 32) -> List[Message]:
    """Follow one holder chain from ``message`` (diagnostic helper).

    Picks, at each step, the first occupied feasible VC's holder.  Useful
    in tests and examples to show who a blocked message is waiting on.
    Stops at ``limit`` hops, at a non-blocked message, or when a cycle
    closes (the repeated message is included once more as the closing
    element so callers can see the loop).
    """
    chain = [message]
    seen = {message.id}
    current = message
    for _ in range(limit):
        holder = None
        for pc in current.feasible_pcs:
            for vc in pc.vcs:
                if vc.occupant is not None:
                    holder = vc.occupant
                    break
            if holder is not None:
                break
        if holder is None:
            break
        chain.append(holder)
        if holder.id in seen or not holder.is_blocked():
            break
        seen.add(holder.id)
        current = holder
    return chain
