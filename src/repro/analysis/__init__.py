"""Ground-truth deadlock analysis and saturation estimation."""

from repro.analysis.channels import (
    ChannelSnapshot,
    hottest_nodes,
    inactivity_histogram,
    network_occupancy,
    occupancy_by_node,
    snapshot_channels,
    stalled_channels,
)
from repro.analysis.deadlock import find_deadlocked, waiting_chain
from repro.analysis.saturation import SaturationResult, find_saturation
from repro.analysis.waitgraph import (
    WaitEdge,
    WaitGraph,
    build_wait_graph,
    describe_deadlock,
    tree_depth_histogram,
)

__all__ = [
    "ChannelSnapshot",
    "SaturationResult",
    "WaitEdge",
    "WaitGraph",
    "build_wait_graph",
    "describe_deadlock",
    "hottest_nodes",
    "inactivity_histogram",
    "network_occupancy",
    "occupancy_by_node",
    "snapshot_channels",
    "stalled_channels",
    "find_deadlocked",
    "find_saturation",
    "tree_depth_histogram",
    "waiting_chain",
]
