"""Channel wait-for graph construction and cycle analysis.

The fixpoint in :mod:`repro.analysis.deadlock` answers *whether* messages
are deadlocked; this module builds the explicit structure — who waits on
whom, through which channels — for diagnosis, examples and the dependency
ablations.  The graph is returned both as plain adjacency dictionaries and,
when available, as a ``networkx`` digraph for cycle enumeration.

Semantics (OR-wait model): there is an edge ``m -> holder`` for every
occupied virtual channel ``m``'s blocked header may use.  A set of blocked
messages is deadlocked iff it forms a *knot* under OR-semantics — every
message's every alternative leads back into the set — which is what the
fixpoint computes; simple cycles found here are necessary-but-not-
sufficient evidence and therefore reported as *candidates*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set

from repro.network.message import Message

try:  # networkx is optional; cycle enumeration degrades gracefully
    import networkx as _nx
except ImportError:  # pragma: no cover - networkx is installed in CI
    _nx = None  # type: ignore[assignment]


@dataclass
class WaitEdge:
    """One wait dependency: ``waiter`` wants a VC held by ``holder``."""

    waiter: Message
    holder: Message
    channel_index: int
    vc_index: int


@dataclass
class WaitGraph:
    """The wait-for structure of one simulation instant."""

    #: All blocked messages considered, keyed by id.
    messages: Dict[int, Message] = field(default_factory=dict)
    #: waiter id -> list of edges (one per occupied alternative VC).
    edges: Dict[int, List[WaitEdge]] = field(default_factory=dict)
    #: waiter id -> number of *free* alternative VCs (escapes).
    free_alternatives: Dict[int, int] = field(default_factory=dict)

    def holders_of(self, message: Message) -> Set[int]:
        return {e.holder.id for e in self.edges.get(message.id, [])}

    def out_degree(self, message: Message) -> int:
        return len(self.edges.get(message.id, []))

    def blocked_count(self) -> int:
        return len(self.messages)

    # ------------------------------------------------------------------
    # Cycle analysis
    # ------------------------------------------------------------------
    def to_networkx(self) -> Any:
        """The graph as a ``networkx.DiGraph`` (nodes are message ids)."""
        if _nx is None:  # pragma: no cover - networkx is installed in CI
            raise RuntimeError("networkx is not available")
        graph = _nx.DiGraph()
        graph.add_nodes_from(self.messages)
        for waiter_id, edges in self.edges.items():
            for edge in edges:
                if edge.holder.id in self.messages:
                    graph.add_edge(waiter_id, edge.holder.id)
        return graph

    def candidate_cycles(self, limit: int = 64) -> List[List[int]]:
        """Simple cycles among blocked messages (message-id lists).

        Cycles are necessary for deadlock but, under OR-waiting, not
        sufficient; compare with the fixpoint's verdict.
        """
        graph = self.to_networkx()
        cycles: List[List[int]] = []
        for cycle in _nx.simple_cycles(graph):
            cycles.append(cycle)
            if len(cycles) >= limit:
                break
        return cycles

    def knot_members(self, honor_faults: bool = False) -> Set[int]:
        """Message ids with no escape path (matches the fixpoint oracle)."""
        from repro.analysis.deadlock import find_deadlocked

        return {
            m.id
            for m in find_deadlocked(
                self.messages.values(), honor_faults=honor_faults
            )
        }


def build_wait_graph(
    messages: Iterable[Message], honor_faults: bool = False
) -> WaitGraph:
    """Snapshot the wait-for structure over the blocked messages.

    With ``honor_faults`` (fault-schedule runs), lanes that are currently
    unusable — link down or lane stuck — contribute neither wait edges nor
    free alternatives, matching the fault-aware oracle's escape semantics.
    """
    graph = WaitGraph()
    blocked = [m for m in messages if m.is_blocked() and m.spans]
    for m in blocked:
        graph.messages[m.id] = m
    for m in blocked:
        edges: List[WaitEdge] = []
        free = 0
        for pc in m.feasible_pcs:
            usable = pc.usable_mask if honor_faults else -1
            for vc in pc.vcs:
                if not (usable >> vc.index) & 1:
                    continue  # faulted lane: not an alternative at all
                if vc.occupant is None:
                    free += 1
                else:
                    edges.append(
                        WaitEdge(
                            waiter=m,
                            holder=vc.occupant,
                            channel_index=pc.index,
                            vc_index=vc.index,
                        )
                    )
        graph.edges[m.id] = edges
        graph.free_alternatives[m.id] = free
    return graph


def describe_deadlock(
    graph: WaitGraph, names: Optional[Dict[int, str]] = None
) -> List[str]:
    """Human-readable lines describing the knot (for examples/debugging)."""
    knot = graph.knot_members()
    lines = []
    for message_id in sorted(knot):
        message = graph.messages[message_id]
        label = names.get(message_id, str(message_id)) if names else str(message_id)
        holders = sorted(
            names.get(h, str(h)) if names else str(h)
            for h in graph.holders_of(message)
        )
        lines.append(
            f"message {label} ({message.source}->{message.dest}) waits on "
            f"{', '.join(holders) or 'nothing'}"
        )
    return lines


def tree_depth_histogram(graph: WaitGraph) -> Dict[int, int]:
    """Distribution of wait-chain depths (how deep blocked trees grow).

    Depth of a blocked message = longest holder chain until a non-blocked
    holder (or a repeated message).  Used by the deviation analysis in
    EXPERIMENTS.md.
    """
    histogram: Dict[int, int] = {}
    for message in graph.messages.values():
        depth = _chain_depth(graph, message)
        histogram[depth] = histogram.get(depth, 0) + 1
    return histogram


def _chain_depth(graph: WaitGraph, message: Message, limit: int = 64) -> int:
    seen = {message.id}
    frontier = [message.id]
    depth = 0
    while frontier and depth < limit:
        nxt: List[int] = []
        for waiter_id in frontier:
            for edge in graph.edges.get(waiter_id, []):
                holder_id = edge.holder.id
                if holder_id in graph.messages and holder_id not in seen:
                    seen.add(holder_id)
                    nxt.append(holder_id)
        if not nxt:
            break
        depth += 1
        frontier = nxt
    return depth
