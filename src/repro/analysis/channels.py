"""Per-channel utilization and occupancy analysis.

Channel-level views of a (running or finished) simulation: which links
carry the traffic, where the stalled regions are, how evenly the pattern
loads the network.  Used by the saturation/pattern examples and the
hot-spot tests; everything is computed on demand from simulator state, no
per-cycle collection cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.network.types import PortKind

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.network.simulator import Simulator


@dataclass(frozen=True)
class ChannelSnapshot:
    """Instantaneous state of one physical channel."""

    index: int
    kind: str
    src_node: object
    dst_node: object
    occupied_vcs: int
    total_vcs: int
    buffered_flits: int
    inactivity: int

    @property
    def occupancy(self) -> float:
        return self.occupied_vcs / self.total_vcs


def snapshot_channels(sim: "Simulator") -> List[ChannelSnapshot]:
    """State of every physical channel at the current cycle."""
    cycle = sim.cycle
    out = []
    for pc in sim.channels:
        out.append(
            ChannelSnapshot(
                index=pc.index,
                kind=pc.kind.value,
                src_node=pc.src_node,
                dst_node=pc.dst_node,
                occupied_vcs=pc.occupied_count,
                total_vcs=len(pc.vcs),
                buffered_flits=sum(vc.flits for vc in pc.vcs),
                inactivity=pc.inactivity(cycle),
            )
        )
    return out


def network_occupancy(sim: "Simulator") -> float:
    """Fraction of network virtual channels currently held."""
    held = total = 0
    for pc in sim.channels:
        if pc.kind is not PortKind.NETWORK:
            continue
        held += pc.occupied_count
        total += len(pc.vcs)
    return held / total if total else 0.0


def stalled_channels(sim: "Simulator", threshold: int) -> List[ChannelSnapshot]:
    """Occupied network channels inactive longer than ``threshold``."""
    return [
        snap
        for snap in snapshot_channels(sim)
        if snap.kind == PortKind.NETWORK.value
        and snap.occupied_vcs > 0
        and snap.inactivity > threshold
    ]


def occupancy_by_node(sim: "Simulator") -> Dict[int, float]:
    """Mean network-output VC occupancy per node (hot-region map)."""
    result: Dict[int, float] = {}
    for router in sim.routers:
        held = sum(pc.occupied_count for pc in router.output_pc_list)
        total = sum(len(pc.vcs) for pc in router.output_pc_list)
        result[router.node] = held / total if total else 0.0
    return result


def hottest_nodes(sim: "Simulator", count: int = 5) -> List[Tuple[int, float]]:
    """The ``count`` nodes with the highest output-VC occupancy."""
    ranked = sorted(
        occupancy_by_node(sim).items(), key=lambda item: -item[1]
    )
    return ranked[:count]


def inactivity_histogram(
    sim: "Simulator", bucket: int = 4, cap: int = 64
) -> Dict[int, int]:
    """Histogram of occupied network channels by inactivity bucket.

    Bucket key ``b`` counts channels with ``b <= inactivity < b + bucket``
    (the last bucket, at ``cap``, absorbs everything longer).  This is the
    distribution underlying the detection mechanisms: the paper's
    thresholds slice exactly this histogram.
    """
    if bucket < 1:
        raise ValueError(f"bucket must be >= 1, got {bucket}")
    histogram: Dict[int, int] = {}
    cycle = sim.cycle
    for pc in sim.channels:
        if pc.kind is not PortKind.NETWORK or pc.occupied_count == 0:
            continue
        value = min(pc.inactivity(cycle), cap)
        key = (value // bucket) * bucket
        histogram[key] = histogram.get(key, 0) + 1
    return histogram
