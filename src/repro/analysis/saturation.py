"""Saturation-point estimation.

The paper expresses its operating points as injection rates up to "the
saturation point" of each traffic pattern (its tables' highest load is
annotated "(saturated)").  Our substrate saturates at different absolute
rates than the authors' testbed, so the experiment harness measures the
saturation rate per (topology, pattern, length) combination and places its
loads at the same *fractions* of saturation the paper used.

Saturation here means the classic throughput definition: the offered load
at which accepted throughput stops tracking offered load (within
``tolerance``).  For permutation patterns the *effective* offered load is
scaled by the fraction of nodes that actually send (fixed points of the
permutation stay silent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.network.config import SimulationConfig


@dataclass(frozen=True)
class SaturationResult:
    """Outcome of a saturation search."""

    #: Offered load (flits/cycle/node) at which throughput stops tracking.
    saturation_rate: float
    #: Accepted throughput measured at that rate.
    saturation_throughput: float
    #: The (rate, throughput) samples taken during the search.
    samples: List[tuple]


def measure_throughput(config: SimulationConfig, rate: float) -> float:
    """Accepted throughput (flits/cycle/node) at one offered rate."""
    # Imported here: repro.analysis is imported by the simulator module,
    # so a module-level import would be cyclic.
    from repro.network.simulator import Simulator

    cfg = config.replace()
    cfg.traffic.injection_rate = rate
    cfg.detector = cfg.detector  # keep configured detector/recovery
    stats = Simulator(cfg).run()
    return stats.throughput()


def find_saturation(
    config: SimulationConfig,
    low: float = 0.05,
    high: Optional[float] = None,
    tolerance: float = 0.05,
    steps: int = 7,
) -> SaturationResult:
    """Estimate the saturation rate for ``config``'s workload.

    Doubles the offered rate from ``low`` until accepted throughput falls
    short of offered by more than ``tolerance`` (relative), then refines
    with a bisection between the last tracking rate and the first
    non-tracking rate.

    Args:
        config: base configuration (its ``traffic.injection_rate`` is
            ignored).  Use short warmup/measure windows; saturation search
            only needs coarse throughput estimates.
        low: starting offered rate, assumed below saturation.
        high: optional upper bound; defaults to growing by doubling.
        tolerance: relative shortfall that marks saturation.
        steps: bisection refinement steps.
    """
    samples: List[tuple] = []
    # Fixed points of permutation patterns never send; track against the
    # effective offered load.
    from repro.traffic.patterns import make_pattern

    pattern = make_pattern(
        config.traffic.pattern,
        config.build_topology(),
        **config.traffic.pattern_params,
    )
    sending = pattern.sending_fraction()

    def tracks(rate: float) -> bool:
        thr = measure_throughput(config, rate)
        samples.append((rate, thr))
        return thr >= rate * sending * (1.0 - tolerance)

    lo = low
    if not tracks(lo):
        # Even the starting rate saturates; report it directly.
        return SaturationResult(lo, samples[-1][1], samples)
    hi = high if high is not None else lo * 2
    while tracks(hi):
        lo = hi
        hi *= 2
        if hi > 4.0:  # physical limit: ~1 flit/cycle/node per port set
            break
    for _ in range(steps):
        mid = (lo + hi) / 2
        if tracks(mid):
            lo = mid
        else:
            hi = mid
    # lo is the highest tracking rate found; throughput there is the
    # saturation throughput estimate.
    thr_lo = max(thr for rate, thr in samples if rate <= lo + 1e-9)
    return SaturationResult(lo, thr_lo, samples)
