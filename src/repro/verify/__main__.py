"""``python -m repro.verify`` — alias of ``repro verify``."""

from repro.verify.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
