"""Scripted nondeterminism: recorded choice points and their enumeration.

The simulator has exactly two sources of nondeterminism once random
traffic generation is disabled:

* the **arbitration draw** — ``sim.rng.choice(free)`` when a routing
  attempt finds more than one free allowed lane;
* the **injection window** — each scripted message may be enqueued on
  any cycle of its window (see :class:`repro.verify.scenario.MessageSpec`).

Both are funnelled through one flat per-cycle *choice vector*: a list of
small integers consumed left to right.  :class:`ChoiceLog` replays a
scripted vector, padding with zeroes past its end, and records the domain
size of every draw it served.  The recorded domains let the checker
enumerate the full choice tree of a cycle with the classic stateless
search loop: replay, then :func:`next_vector` — increment the last
non-exhausted position and truncate — until the tree is exhausted.
Domains discovered at position ``i`` depend only on the state and the
choices before ``i``, so the walk visits every leaf exactly once.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, TypeVar

T = TypeVar("T")


class ChoiceError(RuntimeError):
    """An unscripted RNG surface was consulted during verification."""


class ChoiceLog:
    """One cycle's scripted choices plus the domains actually served."""

    __slots__ = ("script", "domains", "pos")

    def __init__(self, script: Sequence[int] = ()) -> None:
        self.script: List[int] = list(script)
        self.domains: List[int] = []
        self.pos = 0

    def draw(self, domain: int) -> int:
        """Serve one choice over ``range(domain)``; 0 past the script."""
        if domain < 1:
            raise ChoiceError("choice domain must be >= 1")
        index = self.script[self.pos] if self.pos < len(self.script) else 0
        if not 0 <= index < domain:
            raise ChoiceError(
                f"scripted choice {index} out of range for domain {domain} "
                f"at position {self.pos}"
            )
        self.domains.append(domain)
        self.pos += 1
        return index

    def vector(self) -> List[int]:
        """The effective full-length vector this replay consumed."""
        out = list(self.script[: len(self.domains)])
        out.extend(0 for _ in range(len(self.domains) - len(out)))
        return out


class ScriptedRNG(random.Random):
    """Drop-in for ``Simulator.rng`` that routes ``choice`` through a log.

    Every other draw method raises: scripted runs must never consult an
    unmodelled random surface (generation is off, so none should fire).
    """

    def __init__(self) -> None:
        super().__init__(0)
        self.log: Optional[ChoiceLog] = None

    def _fail(self, surface: str) -> ChoiceError:
        return ChoiceError(
            f"unexpected RNG draw ({surface}) during verification; "
            "the checker only models arbitration choice()"
        )

    def choice(self, seq: Sequence[T]) -> T:  # type: ignore[override]
        log = self.log
        if log is None:
            raise self._fail("choice before a cycle began")
        return seq[log.draw(len(seq))]

    def random(self) -> float:
        raise self._fail("random")

    def randrange(self, *args: object, **kwargs: object) -> int:
        raise self._fail("randrange")

    def randint(self, a: int, b: int) -> int:
        raise self._fail("randint")

    def shuffle(self, x: object) -> None:  # type: ignore[override]
        raise self._fail("shuffle")

    def sample(self, *args: object, **kwargs: object) -> List[T]:
        raise self._fail("sample")


def next_vector(vector: Sequence[int], domains: Sequence[int]) -> Optional[List[int]]:
    """The next choice vector in the cycle's enumeration, or ``None``.

    ``vector`` is the script just replayed (conceptually zero-padded to
    ``len(domains)``); ``domains`` are the domain sizes that replay
    recorded.  Odometer order: increment the rightmost position that is
    not exhausted, drop everything after it (later domains may change).
    """
    padded = list(vector[: len(domains)])
    padded.extend(0 for _ in range(len(domains) - len(padded)))
    for i in range(len(domains) - 1, -1, -1):
        if padded[i] + 1 < domains[i]:
            return padded[: i] + [padded[i] + 1]
    return None
