"""Static deadlock-existence oracle: channel-dependency cycle check.

Mendlovic & Matias (PAPERS.md) give an existence condition for
deadlock-free routing on arbitrary networks in terms of the routing
relation's resource dependencies.  This module applies the classic
channel-dependency form of that condition to a verification scenario:
build the directed graph whose vertices are physical channels and whose
edges connect each channel a scripted message can *hold* to each channel
its header may *request next* under the configured routing function, and
test it for cycles.

An **acyclic** dependency graph proves no wait-graph cycle — and hence
no true deadlock — is reachable for this workload, independent of the
enumeration: it is the checker's second opinion.  A cyclic graph proves
nothing by itself (adaptive OR-routing may always escape); the
enumeration decides.  The checker cross-validates the two: a reachable
oracle knot in a statically-acyclic scenario is reported as an internal
contradiction, failing the run loudly.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.network.config import SimulationConfig
from repro.network.routing import make_routing_function
from repro.verify.scenario import VerifyCase, VerifyScenario


def dependency_edges(
    scenario: VerifyScenario, config: SimulationConfig
) -> Set[Tuple[int, int]]:
    """Channel-index dependency edges induced by the scripted workload."""
    from repro.network.simulator import Simulator

    sim = Simulator(config)
    topology = sim.topology
    routing = make_routing_function(config.routing)
    edges: Set[Tuple[int, int]] = set()
    for spec in scenario.messages:
        injection = sim.routers[spec.source].injection_pcs[0]
        # (node, holding channel index) pairs the worm's header can be at.
        frontier: List[Tuple[int, int]] = [(spec.source, injection.index)]
        seen: Set[Tuple[int, int]] = set(frontier)
        while frontier:
            node, held = frontier.pop()
            router = sim.routers[node]
            if node == spec.dest:
                for pc in router.ejection_pcs:
                    edges.add((held, pc.index))
                continue
            for direction in routing.candidates(topology, node, spec.dest):
                out = router.output_pcs[direction]
                edges.add((held, out.index))
                downstream = out.dst_node
                if downstream is None:
                    continue
                nxt = (downstream, out.index)
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
    return edges


def has_dependency_cycle(edges: Set[Tuple[int, int]]) -> bool:
    """Iterative three-colour DFS cycle test over the edge set."""
    adjacency: Dict[int, List[int]] = {}
    for src, dst in sorted(edges):
        adjacency.setdefault(src, []).append(dst)
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[int, int] = {}
    for root in sorted(adjacency):
        if colour.get(root, WHITE) is not WHITE:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        colour[root] = GREY
        while stack:
            node, child_index = stack[-1]
            children = adjacency.get(node, [])
            if child_index >= len(children):
                stack.pop()
                colour[node] = BLACK
                continue
            stack[-1] = (node, child_index + 1)
            child = children[child_index]
            state = colour.get(child, WHITE)
            if state == GREY:
                return True
            if state == WHITE:
                colour[child] = GREY
                stack.append((child, 0))
    return False


def statically_deadlock_free(case: VerifyCase) -> bool:
    """True when the dependency condition alone rules out deadlock."""
    config = case.build_config()
    edges = dependency_edges(case.scenario, config)
    return not has_dependency_cycle(edges)
