"""Replayable counterexamples: serialization, validation, seed corpus.

A refuted verdict carries everything needed to reproduce the violation
from scratch: the full :class:`~repro.verify.scenario.VerifyCase` and
the (BFS-shortest) choice trace, plus the lasso loop for liveness
refutations.  This module writes those out as standalone JSON files,
loads them back, and — crucially — *re-validates* them against the live
simulator, so a stale counterexample (one the implementation has since
fixed) fails loudly instead of silently passing.

Files dropped into ``tests/verify/counterexamples/`` are auto-loaded by
the regression suite (see ``tests/verify/test_counterexample_corpus.py``)
the same way ``tests/faults/golden_conformance.json`` pins conformance
gradings: every sweep-found refutation becomes a permanent regression
test by committing its JSON file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, Tuple

from repro.verify.checker import Verdict, Violation, classify_violation
from repro.verify.choices import ChoiceError
from repro.verify.driver import Instance
from repro.verify.encode import digest, encode_state
from repro.verify.scenario import VerifyCase

FORMAT_VERSION = 1


class ReplayMismatch(AssertionError):
    """A stored counterexample no longer reproduces its violation."""


def counterexample_payload(verdict: Verdict) -> Dict[str, Any]:
    """JSON-shaped payload for a refuted verdict."""
    if verdict.violation is None:
        raise ValueError("only refuted verdicts carry a counterexample")
    return {
        "format": FORMAT_VERSION,
        "label": verdict.case.label(),
        "case": verdict.case.to_dict(),
        "violation": verdict.violation.to_dict(),
    }


def write_counterexample(verdict: Verdict, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(counterexample_payload(verdict), indent=2, sort_keys=True)
        + "\n"
    )


def load_counterexample(path: Path) -> Tuple[VerifyCase, Violation]:
    payload = json.loads(path.read_text())
    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported counterexample format "
            f"{payload.get('format')!r}"
        )
    return (
        VerifyCase.from_dict(payload["case"]),
        Violation.from_dict(payload["violation"]),
    )


def iter_corpus(directory: Path) -> Iterator[Path]:
    """Counterexample files under ``directory``, stable order."""
    if not directory.is_dir():
        return
    yield from sorted(directory.glob("*.json"))


def check_counterexample(case: VerifyCase, violation: Violation) -> None:
    """Replay a counterexample; raise :class:`ReplayMismatch` if stale."""
    if violation.kind == "false-negative":
        _check_liveness(case, violation)
    else:
        _check_safety(case, violation)


def _check_liveness(case: VerifyCase, violation: Violation) -> None:
    if violation.loop is None or violation.message_id is None:
        raise ReplayMismatch(
            "false-negative counterexample missing loop or message id"
        )
    inst = Instance(case)
    inst.run_trace(violation.trace)
    mid = violation.message_id
    if mid not in inst.undetected_deadlocked():
        raise ReplayMismatch(
            f"message {mid} not oracle-deadlocked-and-undetected after "
            "the stem — the false negative no longer reproduces"
        )
    start = digest(encode_state(inst))
    inst.run_trace(violation.loop)
    if mid not in inst.undetected_deadlocked():
        raise ReplayMismatch(
            f"message {mid} escaped or was detected inside the loop — "
            "the false negative no longer reproduces"
        )
    if digest(encode_state(inst)) != start:
        raise ReplayMismatch(
            "loop did not return to its starting state — the stored "
            "lasso is stale"
        )


def _check_safety(case: VerifyCase, violation: Violation) -> None:
    inst = Instance(case)
    if violation.trace:
        inst.run_trace(violation.trace[:-1])
    try:
        if violation.trace:
            inst.step_cycle(violation.trace[-1])
        inst.check_structure()
    except (AssertionError, ChoiceError) as exc:
        reproduced = classify_violation(exc)
        if reproduced != violation.kind:
            raise ReplayMismatch(
                f"trace reproduced a {reproduced!r} violation, but the "
                f"stored counterexample claims {violation.kind!r}: {exc}"
            ) from exc
        return
    raise ReplayMismatch(
        f"trace completed without reproducing the stored "
        f"{violation.kind!r} violation"
    )
