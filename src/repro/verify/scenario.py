"""Verification scenarios: small closed-world configurations.

A :class:`VerifyScenario` describes everything the bounded model checker
needs to enumerate a configuration's reachable state space:

* a tiny network (2-4 node ring or line, one injection/ejection port per
  node) — small enough that the full reachable quotient fits in memory;
* a *scripted* workload: a fixed list of :class:`MessageSpec` entries with
  per-message injection windows, instead of random traffic.  Random
  generation is disabled (``injection_rate = 0``), so the only RNG the
  simulator ever consults is the routing arbitration draw — which the
  checker scripts (see :mod:`repro.verify.choices`);
* an optional fault schedule (``repro.faults`` dicts), entering the state
  graph as deterministic timed edges;
* the detector cell under test (mechanism / threshold / promotion
  variant) and the recovery scheme.

Scenarios serialize to plain JSON (:meth:`VerifyCase.to_dict`) so refuted
invariants can be written out as replayable counterexample files.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.network.config import DetectorConfig, SimulationConfig

#: Fault windows ending at or beyond this cycle are treated as permanent:
#: the end edge is beyond any explored horizon, so the checker's claims
#: are about the system with the fault never healing.
PERMANENT = 1 << 20


@dataclass(frozen=True)
class MessageSpec:
    """One scripted message with a nondeterministic injection window.

    The message may be enqueued at its source on any cycle in
    ``[earliest, latest]`` (the checker branches on every choice);
    reaching ``latest`` forces the injection so the pending set always
    drains.  ``latest=None`` allows deferring forever (one extra
    self-loop lobe in the state graph — use sparingly).
    """

    source: int
    dest: int
    length: int
    earliest: int = 0
    latest: Optional[int] = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "dest": self.dest,
            "length": self.length,
            "earliest": self.earliest,
            "latest": self.latest,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MessageSpec":
        return cls(
            source=int(payload["source"]),
            dest=int(payload["dest"]),
            length=int(payload["length"]),
            earliest=int(payload.get("earliest", 0)),
            latest=(
                None
                if payload.get("latest", 0) is None
                else int(payload.get("latest", 0))
            ),
        )


@dataclass(frozen=True)
class VerifyScenario:
    """Network + scripted workload + fault class (mechanism-independent)."""

    name: str
    messages: Tuple[MessageSpec, ...]
    topology: str = "torus"
    radix: int = 2
    dimensions: int = 1
    vcs_per_channel: int = 1
    buffer_depth: int = 1
    #: Fault schedule as ``repro.faults`` spec dicts (JSON-shaped).
    faults: Tuple[Dict[str, Any], ...] = ()
    #: Report label grouping scenarios by the fault family they exercise.
    fault_class: str = "none"

    @property
    def num_nodes(self) -> int:
        return self.radix**self.dimensions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "messages": [m.to_dict() for m in self.messages],
            "topology": self.topology,
            "radix": self.radix,
            "dimensions": self.dimensions,
            "vcs_per_channel": self.vcs_per_channel,
            "buffer_depth": self.buffer_depth,
            "faults": [dict(f) for f in self.faults],
            "fault_class": self.fault_class,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "VerifyScenario":
        return cls(
            name=str(payload["name"]),
            messages=tuple(
                MessageSpec.from_dict(m) for m in payload["messages"]
            ),
            topology=str(payload.get("topology", "torus")),
            radix=int(payload.get("radix", 2)),
            dimensions=int(payload.get("dimensions", 1)),
            vcs_per_channel=int(payload.get("vcs_per_channel", 1)),
            buffer_depth=int(payload.get("buffer_depth", 1)),
            faults=tuple(dict(f) for f in payload.get("faults", [])),
            fault_class=str(payload.get("fault_class", "none")),
        )


@dataclass(frozen=True)
class VerifyCase:
    """A scenario paired with the detector cell and recovery under test."""

    scenario: VerifyScenario
    mechanism: str = "ndm"
    threshold: int = 3
    t1: int = 1
    selective_promotion: bool = False
    probe_max_hops: int = 16
    probe_max_outstanding: int = 8
    recovery: str = "none"

    @property
    def promotion(self) -> str:
        """Report label for the promotion axis (NDM family only)."""
        if self.mechanism in ("ndm", "hybrid"):
            return "selective" if self.selective_promotion else "simple"
        return "n/a"

    def label(self) -> str:
        bits = [self.scenario.name, self.mechanism]
        if self.promotion != "n/a":
            bits.append(self.promotion)
        if self.recovery != "none":
            bits.append(self.recovery)
        return "/".join(bits)

    def detector_config(self) -> DetectorConfig:
        return DetectorConfig(
            mechanism=self.mechanism,
            threshold=self.threshold,
            t1=self.t1,
            selective_promotion=self.selective_promotion,
            probe_max_hops=self.probe_max_hops,
            probe_max_outstanding=self.probe_max_outstanding,
        )

    def build_config(self, engine: str = "event") -> SimulationConfig:
        """The exact :class:`SimulationConfig` the checker simulates.

        Generation, injection limitation, the periodic ground-truth
        sweep and detection-time grading are all off: the checker scripts
        the workload itself and runs the oracle per explored state.
        """
        sc = self.scenario
        config = SimulationConfig(
            topology=sc.topology,
            radix=sc.radix,
            dimensions=sc.dimensions,
            vcs_per_channel=sc.vcs_per_channel,
            buffer_depth=sc.buffer_depth,
            injection_ports=1,
            ejection_ports=1,
            routing="fully-adaptive",
            injection_limit_fraction=None,
            detector=self.detector_config(),
            recovery=self.recovery,
            faults=[dict(f) for f in sc.faults] or None,
            engine=engine,
            seed=0,
            warmup_cycles=0,
            measure_cycles=1,
            drain_cycles=0,
            ground_truth_interval=0,
            ground_truth_on_detection=False,
        )
        config.traffic.injection_rate = 0.0
        config.validate()
        return config

    # ------------------------------------------------------------------
    # Encoding parameters (see repro.verify.encode)
    # ------------------------------------------------------------------
    @property
    def counter_cap(self) -> int:
        """Clamp for relative counters: past this, every ``> threshold``
        predicate any mechanism evaluates is already decided."""
        return max(self.threshold, self.t1) + 2

    @property
    def max_counter_lag(self) -> int:
        """Largest counter-lag any fault in the schedule can install."""
        return max(
            (int(f.get("lag", 0)) for f in self.scenario.faults), default=0
        )

    @property
    def blocked_period(self) -> int:
        """Residue preserved when clamping blocked ages.

        The probe launch cadence is periodic in ``cycle - blocked_since``
        with period ``threshold``, so clamped ages must keep their value
        mod the period; every other mechanism only compares the age
        against a threshold (period 1 suffices).
        """
        return self.threshold if self.mechanism == "probe" else 1

    @property
    def time_mod(self) -> int:
        """Fairness-rotation residue: the phase visit order rotates the
        conceptual list by ``cycle % len(list)``, and every list length
        is at most the scripted message count."""
        n = max(1, len(self.scenario.messages))
        return math.lcm(*range(1, n + 1))

    @property
    def horizon(self) -> int:
        """Last cycle at which absolute time still matters.

        Beyond the horizon no scripted injection window opens or forces,
        and no (finite) fault edge fires, so states further out are
        time-shift invariant modulo :attr:`time_mod` and the clamped
        relative counters.
        """
        last = 0
        for spec in self.scenario.messages:
            last = max(last, spec.earliest)
            if spec.latest is not None:
                last = max(last, spec.latest)
        for fault in self.scenario.faults:
            last = max(last, int(fault.get("start", 0)))
            end = int(fault.get("end", 0))
            if end < PERMANENT:
                last = max(last, end)
        return last + 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario.to_dict(),
            "mechanism": self.mechanism,
            "threshold": self.threshold,
            "t1": self.t1,
            "selective_promotion": self.selective_promotion,
            "probe_max_hops": self.probe_max_hops,
            "probe_max_outstanding": self.probe_max_outstanding,
            "recovery": self.recovery,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "VerifyCase":
        return cls(
            scenario=VerifyScenario.from_dict(payload["scenario"]),
            mechanism=str(payload.get("mechanism", "ndm")),
            threshold=int(payload.get("threshold", 3)),
            t1=int(payload.get("t1", 1)),
            selective_promotion=bool(payload.get("selective_promotion", False)),
            probe_max_hops=int(payload.get("probe_max_hops", 16)),
            probe_max_outstanding=int(payload.get("probe_max_outstanding", 8)),
            recovery=str(payload.get("recovery", "none")),
        )
