"""Canonical, time-relative state encoding for the bounded model checker.

The encoding maps a live simulator onto a nested tuple of small integers
such that two states with equal encodings behave identically under equal
future choice vectors.  It mirrors the SoA snapshot fields of
``repro.network.batch`` (occupancy, flits, G/P flags, inactivity,
fault masks) but is pure Python — no numpy — and, crucially,
**time-relative**: every absolute timestamp in the simulator is replaced
by a clamped difference against the current cycle, so steady states
reached at different absolute cycles collapse onto one canonical state
and the enumeration reaches a fixpoint.

Soundness of each clamp (why behaviour is preserved):

* **channel inactivity** — every read is either a ``> threshold``
  comparison (I/DT/IF flags) or ``inactivity_deadline`` arithmetic, and
  both are functions of the *raw* counter ``cycle - start - lag``; once
  the raw value exceeds every configured threshold its exact magnitude
  is unobservable, so it is clamped at ``counter_cap``.  Negative raw
  values (a counter-lag fault pushing the virtual start into the
  future) are kept exact — they decide *when* a threshold crossing
  happens.
* **blocked age** — the timeout family compares it against a threshold;
  the probe launch cadence additionally depends on it mod the launch
  period, so the clamp preserves the residue (``blocked_period``).
* **heap entries** — deadline and launch heaps are encoded as their
  pop order with per-entry *relative* deadlines; past deadlines clamp
  to zero (they pop immediately regardless of how stale they are).
* **absolute time** — only two residues of the cycle counter are
  observable once every injection window and (finite) fault edge has
  passed: the fairness rotation ``cycle % len(list)`` (covered by
  ``time_mod``, the lcm of all possible list lengths) and nothing else;
  ``min(cycle, horizon)`` covers the transient prefix exactly.

Waiter dictionaries (route/header waiters) are deliberately *not*
encoded: membership is derivable (a registered blocked header sits in
exactly the waiter sets of its cached feasible channels), and the wake
loops that iterate them are idempotent flag-clears, so their insertion
order cannot influence any future state.  The checker's collision
cross-check (`tests/verify`) validates these arguments empirically by
re-expanding states that dedupe onto an existing encoding.
"""

from __future__ import annotations

import hashlib
from typing import Any, List, Optional, Tuple

from repro.core.probe import ProbeDetection
from repro.network.channel import PhysicalChannel
from repro.network.message import Message
from repro.network.types import GPState, MessageStatus
from repro.verify.driver import Instance

Encoded = Tuple[Any, ...]


def _clamp_rel(value: int, cap: int, period: int = 1) -> int:
    """Clamp a non-negative relative age, preserving its residue."""
    if value <= cap:
        return value
    if period <= 1:
        return cap
    return cap + (value - cap) % period


def _encode_channel(pc: PhysicalChannel, cycle: int, cap: int) -> Encoded:
    lanes = tuple(
        (vc.occupant.id if vc.occupant is not None else -1, vc.flits)
        for vc in pc.vcs
    )
    if pc.occupied_count == 0:
        inactivity: Tuple[str, int] = ("f", min(pc._frozen_inactivity, cap))
    else:
        start = pc.last_flit_cycle
        if pc.active_since > start:
            start = pc.active_since
        raw = cycle - start - pc.counter_lag
        inactivity = ("a", min(raw, cap))
    waiters: Tuple[Tuple[int, int], ...] = ()
    if pc.waiters:
        waiters = tuple(
            sorted((ipc.index, count) for ipc, count in pc.waiters.items())
        )
    return (
        lanes,
        pc.gp is GPState.GENERATE,
        inactivity,
        pc.fault_down,
        pc.stuck_mask,
        waiters,
    )


def _encode_message(
    m: Message, cycle: int, cap: int, period: int, include_engine: bool
) -> Encoded:
    blocked: Optional[int] = None
    if m.blocked_since is not None:
        blocked = _clamp_rel(cycle - m.blocked_since, cap, period)
    inject_age: Optional[int] = None
    if m.inject_cycle is not None:
        inject_age = _clamp_rel(cycle - m.inject_cycle, cap)
    stall_age: Optional[int] = None
    if m.last_source_flit_cycle is not None:
        stall_age = _clamp_rel(cycle - m.last_source_flit_cycle, cap)
    fields: List[Any] = [
        m.id,
        m.status.value,
        m.flits_at_source,
        m.flits_delivered,
        tuple((vc.pc.index, vc.index) for vc in m.spans),
        (
            (m.allocated_vc.pc.index, m.allocated_vc.index)
            if m.allocated_vc is not None
            else None
        ),
        m.first_attempt_done,
        blocked,
        tuple(pc.index for pc in m.feasible_pcs),
        (
            tuple((vc.pc.index, vc.index) for vc in m.feasible_vcs)
            if m.feasible_vcs is not None
            else None
        ),
        inject_age,
        stall_age,
        m.marked_deadlocked,
        m.inject_node,
    ]
    if include_engine:
        fields.extend((m.route_asleep, m.move_asleep, m.wait_registered))
    return tuple(fields)


def _encode_probe_state(inst: Instance, cycle: int) -> Encoded:
    detector = inst.detector
    if not isinstance(detector, ProbeDetection):
        return ()
    # Launch cadence heap in pop order; all live entries are in the
    # future by at most one launch period, stale ones clamp to zero.
    heap = sorted(detector._launch_heap, key=lambda e: (e[0], e[1]))
    launches = tuple(
        (
            max(entry[0] - cycle, 0),
            entry[2].id,
            entry[2].blocked_since == entry[3],  # entry still fresh?
        )
        for entry in heap
    )
    transport = detector.transport
    sessions = []
    for initiator_id, session in transport.sessions.items():
        sessions.append(
            (
                initiator_id,
                session.initiator.blocked_since == session.episode,
                tuple(sorted(session.visited)),
                tuple(sorted(session.digests)),
                tuple(
                    (p.at.id, p.digest, p.hops, p.victim.id)
                    for p in session.probes
                ),
                session.has_returning,
            )
        )
    return (launches, tuple(sessions))


def encode_state(inst: Instance, include_engine: bool = True) -> Encoded:
    """The canonical encoding of ``inst``'s current state.

    ``include_engine=False`` drops the event-engine bookkeeping (park
    flags, wakeup heap) and yields the *behavioural* encoding shared by
    the scan and event engines — the cross-engine replay suite compares
    exactly this part.
    """
    sim = inst.sim
    case = inst.case
    cycle = sim.cycle
    cap = case.counter_cap
    period = case.blocked_period
    channels = tuple(
        _encode_channel(pc, cycle, cap) for pc in sim.channels
    )
    active = tuple(
        _encode_message(m, cycle, cap, period, include_engine)
        for m in sim.active_messages
    )
    queued = tuple(
        tuple(m.id for m in queue) for queue in sim.source_queues
    )
    recovery_queues = tuple(
        sorted(
            (node, tuple(m.id for m in queue))
            for node, queue in sim.recovery_queues.items()
        )
    )
    recovery_heap = tuple(
        (max(entry[0] - cycle, 0), entry[2].id)
        for entry in sorted(
            sim._recovery_deliveries, key=lambda e: (e[0], e[1])
        )
    )
    pending_route = tuple(m.id for m in sim.pending_route)
    parts: List[Any] = [
        cycle % case.time_mod,
        min(cycle, case.horizon),
        tuple(inst.pending),
        channels,
        active,
        queued,
        recovery_queues,
        recovery_heap,
        pending_route,
        _encode_probe_state(inst, cycle),
    ]
    if include_engine:
        # A counter-lag fault pushes inactivity deadlines later by up to
        # the lag, so the clamp must keep those offsets distinguishable.
        deadline_cap = case.counter_cap + case.max_counter_lag + 1
        deadlines = tuple(
            (min(max(entry[0] - cycle, 0), deadline_cap), entry[2].id)
            for entry in sorted(
                sim._route_deadlines, key=lambda e: (e[0], e[1])
            )
        )
        parts.append(deadlines)
    return tuple(parts)


def digest(encoded: Encoded) -> str:
    """Stable short hex digest of an encoded state (hash-seed-free)."""
    return hashlib.sha256(repr(encoded).encode("utf-8")).hexdigest()[:24]


def behavioural_digest(inst: Instance) -> str:
    """Digest of the engine-independent part of the current state."""
    return digest(encode_state(inst, include_engine=False))
