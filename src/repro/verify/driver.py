"""One scripted simulator instance driven cycle-by-cycle by the checker.

:class:`Instance` owns a real :class:`~repro.network.simulator.Simulator`
built from a :class:`~repro.verify.scenario.VerifyCase` — same kernel,
same phases, same detectors as production runs — with two verification
seams installed:

* the simulator RNG is replaced by :class:`ScriptedRNG`, so arbitration
  draws come from the cycle's choice vector;
* scripted messages are enqueued according to injection-window choices
  consumed from the same vector, before the cycle's phases run.

Successor expansion works by **replay**: the checker never snapshots or
copies a simulator (detector hooks close over live channel objects, so a
deep copy would silently keep references into the original network).
Instead each state stores its choice trace and a fresh instance replays
it from cycle zero — which doubles as the counterexample replay path.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.analysis.deadlock import find_deadlocked
from repro.core.detector import DeadlockDetector
from repro.core.probe import ProbeDetection
from repro.core.registry import make_detector
from repro.network.message import Message
from repro.network.simulator import Simulator
from repro.network.types import GPState, MessageStatus
from repro.verify.choices import ChoiceLog, ScriptedRNG
from repro.verify.recording import RecordingNDM, check_gp_writes
from repro.verify.scenario import VerifyCase

#: One cycle's choice vector; a trace is one vector per simulated cycle.
ChoiceVector = Tuple[int, ...]
Trace = Tuple[ChoiceVector, ...]


class StormViolation(AssertionError):
    """The probe transport exceeded its configured outstanding bound."""


class WaiterViolation(AssertionError):
    """Selective-promotion waiter maps diverged from registered headers."""


class Instance:
    """A scripted run of one verification case on one engine."""

    def __init__(self, case: VerifyCase, engine: str = "event") -> None:
        self.case = case
        self.engine = engine
        self.config = case.build_config(engine=engine)
        self.detector: DeadlockDetector
        if case.mechanism == "ndm":
            self.detector = RecordingNDM(
                case.threshold,
                t1=case.t1,
                selective_promotion=case.selective_promotion,
            )
        else:
            self.detector = make_detector(self.config.detector)
        self.sim = Simulator(self.config, detector=self.detector)
        self._rng = ScriptedRNG()
        self.sim.rng = self._rng
        specs = case.scenario.messages
        self.messages: List[Message] = [
            Message(i, s.source, s.dest, s.length, 0)
            for i, s in enumerate(specs)
        ]
        self.sim._next_message_id = len(specs)
        #: Spec indices not yet enqueued at their source.
        self.pending: List[int] = list(range(len(specs)))
        self._faults_on = bool(case.scenario.faults)

    # ------------------------------------------------------------------
    # Cycle driving
    # ------------------------------------------------------------------
    def step_cycle(self, script: Sequence[int] = ()) -> ChoiceLog:
        """Simulate one cycle under the scripted choice vector.

        Choice consumption order (fixed, so domains are a function of
        the state plus earlier choices): one binary inject-now/defer
        draw per open injection window in spec order, then every
        arbitration draw the phases perform, in phase order.
        """
        log = ChoiceLog(script)
        self._rng.log = log
        sim = self.sim
        cycle = sim.cycle
        recorder = (
            self.detector if isinstance(self.detector, RecordingNDM) else None
        )
        gp_pre: Tuple[bool, ...] = ()
        if recorder is not None:
            recorder.events.clear()
            gp_pre = self.gp_vector()
        for index in list(self.pending):
            spec = self.case.scenario.messages[index]
            if spec.earliest > cycle:
                continue
            forced = spec.latest is not None and cycle >= spec.latest
            if forced or log.draw(2) == 1:
                self.pending.remove(index)
                sim.enqueue_source(self.messages[index], spec.source)
        sim.step()
        if recorder is not None:
            check_gp_writes(gp_pre, self.gp_vector(), recorder.events, cycle)
        self._rng.log = None
        return log

    def run_trace(self, trace: Sequence[Sequence[int]]) -> None:
        """Replay a whole choice trace from the instance's current cycle."""
        for vector in trace:
            self.step_cycle(vector)

    # ------------------------------------------------------------------
    # Per-state oracles and structural checks
    # ------------------------------------------------------------------
    def gp_vector(self) -> Tuple[bool, ...]:
        """Per-channel G/P flags (True = GENERATE), by channel index."""
        return tuple(
            pc.gp is GPState.GENERATE for pc in self.sim.channels
        )

    def oracle_deadlocked(self) -> FrozenSet[int]:
        """Message ids in the fault-aware OR-wait knot right now."""
        knot = find_deadlocked(
            self.sim.active_messages.to_list(), honor_faults=self._faults_on
        )
        return frozenset(m.id for m in knot)

    def undetected_deadlocked(self) -> FrozenSet[int]:
        """Oracle-deadlocked message ids no mechanism has marked yet."""
        knot = find_deadlocked(
            self.sim.active_messages.to_list(), honor_faults=self._faults_on
        )
        return frozenset(m.id for m in knot if not m.marked_deadlocked)

    def check_structure(self) -> None:
        """Structural invariants for the current state; raises on failure."""
        self.sim.check_invariants()
        self._check_probe_storm()
        self._check_selective_waiters()

    def _check_probe_storm(self) -> None:
        detector = self.detector
        if not isinstance(detector, ProbeDetection):
            return
        transport = detector.transport
        bound = transport.max_outstanding + 1
        for initiator_id, session in transport.sessions.items():
            if len(session.probes) > bound:
                raise StormViolation(
                    f"session {initiator_id}: {len(session.probes)} probes "
                    f"in flight exceeds max_outstanding+1 = {bound}"
                )

    def _check_selective_waiters(self) -> None:
        """Waiter refcounts must equal the registered blocked headers."""
        if not (self.case.mechanism == "ndm" and self.case.selective_promotion):
            return
        expected: Dict[Tuple[int, int], int] = {}
        for m in self.sim.active_messages:
            if m.status is not MessageStatus.IN_NETWORK:
                continue
            if not m.first_attempt_done:
                continue
            input_pc = m.input_pc
            if input_pc is None:
                continue
            for pc in m.feasible_pcs:
                key = (pc.index, input_pc.index)
                expected[key] = expected.get(key, 0) + 1
        actual: Dict[Tuple[int, int], int] = {}
        for pc in self.sim.channels:
            if pc.waiters:
                for input_pc, count in pc.waiters.items():
                    actual[(pc.index, input_pc.index)] = count
        if expected != actual:
            raise WaiterViolation(
                f"selective waiter maps diverged: expected {sorted(expected.items())}, "
                f"actual {sorted(actual.items())}"
            )

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def active_ids(self) -> Tuple[int, ...]:
        return tuple(m.id for m in self.sim.active_messages)

    def all_delivered(self) -> bool:
        return (
            not self.pending
            and not self.sim.active_messages
            and not self.sim._recovery_deliveries
            and not self.sim.recovery_queues
            and not any(self.sim.source_queues)
        )


def replay(case: VerifyCase, trace: Sequence[Sequence[int]],
           engine: str = "event") -> Instance:
    """Fresh instance with ``trace`` replayed; raises on any violation."""
    inst = Instance(case, engine=engine)
    inst.run_trace(trace)
    return inst
