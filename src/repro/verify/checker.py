"""Bounded model checker: exhaustive enumeration of small configurations.

:func:`explore` runs a breadth-first search over the reachable quotient
state space of one :class:`~repro.verify.scenario.VerifyCase`.  States
are keyed by the canonical time-relative encoding of
:mod:`repro.verify.encode`; successor generation replays the state's
choice trace into a fresh :class:`~repro.verify.driver.Instance` and
enumerates every per-cycle choice vector with the odometer of
:mod:`repro.verify.choices`.

Checked properties, per reachable state:

* **safety** — the simulator's own ``check_invariants`` plus the
  verification-only structural checks (probe-storm bound, selective
  waiter refcounts) and the G/P rule conformance audit of
  :class:`~repro.verify.recording.RecordingNDM`.  Any violation refutes
  immediately with the (BFS-shortest) trace reaching it.
* **0-false-negatives** — formulated as a liveness property on the
  finite quotient: for each message id, restrict the state graph to
  states where the id is oracle-deadlocked yet unmarked; a cycle in that
  subgraph is an infinite run on which the deadlock persists undetected
  forever — a false negative — and is reported as a stem + loop lasso.
  When every such subgraph is acyclic the property is *proved*, and the
  longest path through the subgraphs is the measured worst-case
  detection bound (``max_undetected_span`` cycles).

The static dependency oracle (:mod:`repro.verify.oracle`) provides an
independent second opinion on fault-free scenarios: a reachable deadlock
in a statically-deadlock-free scenario is an internal contradiction and
aborts the run rather than producing a verdict.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.verify.choices import ChoiceError, next_vector
from repro.verify.driver import Instance, Trace
from repro.verify.encode import behavioural_digest, digest, encode_state
from repro.verify.oracle import statically_deadlock_free
from repro.verify.scenario import VerifyCase

ChoiceVector = Tuple[int, ...]


class EncodingUnsound(RuntimeError):
    """Two traces with equal encodings diverged — the quotient is wrong."""


class OracleContradiction(RuntimeError):
    """Enumeration reached a deadlock the static oracle ruled out."""


@dataclass
class Violation:
    """One refuted invariant with a replayable counterexample."""

    #: ``gp-rule`` | ``structure`` | ``probe-storm`` | ``waiter`` |
    #: ``choice`` | ``false-negative``
    kind: str
    detail: str
    #: Choice vectors from cycle 0 up to (and including) the violation.
    trace: Trace
    #: For liveness refutations: the repeatable suffix (lasso loop).
    loop: Optional[Trace] = None
    #: For false negatives: the message that stays undetected.
    message_id: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "trace": [list(v) for v in self.trace],
            "loop": None if self.loop is None else [list(v) for v in self.loop],
            "message_id": self.message_id,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Violation":
        loop = payload.get("loop")
        return cls(
            kind=str(payload["kind"]),
            detail=str(payload.get("detail", "")),
            trace=tuple(tuple(int(c) for c in v) for v in payload["trace"]),
            loop=(
                None
                if loop is None
                else tuple(tuple(int(c) for c in v) for v in loop)
            ),
            message_id=(
                None
                if payload.get("message_id") is None
                else int(payload["message_id"])
            ),
        )


@dataclass
class Verdict:
    """The checker's result for one (scenario, mechanism, promotion) cell."""

    case: VerifyCase
    #: ``proved`` | ``refuted`` | ``inconclusive``
    verdict: str
    states: int
    edges: int
    max_depth: int
    #: Longest consecutive undetected-deadlock run, in cycles (proved only).
    max_undetected_span: int
    statically_deadlock_free: bool
    #: Why an ``inconclusive`` run stopped (cap name), empty otherwise.
    stopped_on: str = ""
    violation: Optional[Violation] = None

    @property
    def proved(self) -> bool:
        return self.verdict == "proved"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.case.label(),
            "scenario": self.case.scenario.name,
            "fault_class": self.case.scenario.fault_class,
            "mechanism": self.case.mechanism,
            "promotion": self.case.promotion,
            "verdict": self.verdict,
            "states": self.states,
            "edges": self.edges,
            "max_depth": self.max_depth,
            "max_undetected_span": self.max_undetected_span,
            "statically_deadlock_free": self.statically_deadlock_free,
            "stopped_on": self.stopped_on,
            "violation": (
                None if self.violation is None else self.violation.to_dict()
            ),
            "case": self.case.to_dict(),
        }


@dataclass
class _StateInfo:
    state_id: int
    parent: int
    vector: ChoiceVector
    depth: int
    bad: FrozenSet[int]
    terminal: bool
    successors: List[Tuple[ChoiceVector, int]] = field(default_factory=list)


class _Explorer:
    def __init__(
        self,
        case: VerifyCase,
        max_states: int,
        max_cycles: int,
        collision_checks: int,
    ) -> None:
        self.case = case
        self.max_states = max_states
        self.max_cycles = max_cycles
        self.collision_budget = collision_checks
        self.states: List[_StateInfo] = []
        self.ids: Dict[str, int] = {}
        self.edges = 0
        self.static_free = statically_deadlock_free(case)

    # ------------------------------------------------------------------
    def trace_to(self, state_id: int) -> Trace:
        vectors: List[ChoiceVector] = []
        info = self.states[state_id]
        while info.parent >= 0:
            vectors.append(info.vector)
            info = self.states[info.parent]
        vectors.reverse()
        return tuple(vectors)

    def _examine(self, inst: Instance, trace: Trace) -> FrozenSet[int]:
        """Structural checks + oracle for a freshly reached state."""
        inst.check_structure()
        knot = inst.oracle_deadlocked()
        if knot and self.static_free and not self.case.scenario.faults:
            raise OracleContradiction(
                f"{self.case.label()}: messages {sorted(knot)} deadlocked "
                "after trace "
                f"{[list(v) for v in trace]} but the channel-dependency "
                "graph is acyclic"
            )
        return inst.undetected_deadlocked()

    def _cross_check(self, stored_id: int, new_trace: Trace) -> None:
        """Re-expand a dedupe hit: equal encodings must behave equally."""
        if self.collision_budget <= 0:
            return
        self.collision_budget -= 1
        a = Instance(self.case)
        a.run_trace(self.trace_to(stored_id))
        b = Instance(self.case)
        b.run_trace(new_trace)
        for probe in range(2):
            log_a = a.step_cycle()
            log_b = b.step_cycle()
            if (
                log_a.domains != log_b.domains
                or behavioural_digest(a) != behavioural_digest(b)
            ):
                raise EncodingUnsound(
                    f"{self.case.label()}: states with equal encodings "
                    f"diverged {probe + 1} cycle(s) after the collision "
                    f"(stored state {stored_id})"
                )

    # ------------------------------------------------------------------
    def run(self) -> Verdict:
        root = Instance(self.case)
        try:
            bad = self._examine(root, ())
        except AssertionError as exc:
            return self._refute(classify_violation(exc), str(exc), ())
        self.ids[digest(encode_state(root))] = 0
        self.states.append(
            _StateInfo(0, -1, (), 0, bad, root.all_delivered())
        )
        queue: deque[int] = deque([0])
        stopped = ""
        while queue:
            sid = queue.popleft()
            info = self.states[sid]
            if info.terminal:
                continue
            if info.depth >= self.max_cycles:
                stopped = "max_cycles"
                continue
            prefix = self.trace_to(sid)
            vector: Optional[List[int]] = []
            while vector is not None:
                taken = tuple(vector)
                inst = Instance(self.case)
                inst.run_trace(prefix)
                try:
                    log = inst.step_cycle(vector)
                except (ChoiceError, AssertionError) as exc:
                    return self._refute(
                        classify_violation(exc), str(exc), prefix + (taken,)
                    )
                try:
                    bad = self._examine(inst, prefix + (taken,))
                except AssertionError as exc:
                    return self._refute(
                        classify_violation(exc), str(exc), prefix + (taken,)
                    )
                taken = tuple(log.vector())
                key = digest(encode_state(inst))
                self.edges += 1
                target = self.ids.get(key)
                if target is None:
                    target = len(self.states)
                    self.ids[key] = target
                    self.states.append(
                        _StateInfo(
                            target,
                            sid,
                            taken,
                            info.depth + 1,
                            bad,
                            inst.all_delivered(),
                        )
                    )
                    if len(self.states) >= self.max_states:
                        stopped = "max_states"
                        queue.clear()
                    else:
                        queue.append(target)
                else:
                    self._cross_check(target, prefix + (taken,))
                info.successors.append((taken, target))
                vector = next_vector(taken, log.domains)
                if stopped == "max_states":
                    break
            if stopped == "max_states":
                break
        if stopped:
            return Verdict(
                case=self.case,
                verdict="inconclusive",
                states=len(self.states),
                edges=self.edges,
                max_depth=max(s.depth for s in self.states),
                max_undetected_span=-1,
                statically_deadlock_free=self.static_free,
                stopped_on=stopped,
            )
        return self._liveness_verdict()

    # ------------------------------------------------------------------
    def _refute(self, kind: str, detail: str, trace: Trace) -> Verdict:
        return Verdict(
            case=self.case,
            verdict="refuted",
            states=len(self.states),
            edges=self.edges,
            max_depth=max((s.depth for s in self.states), default=0),
            max_undetected_span=-1,
            statically_deadlock_free=self.static_free,
            violation=Violation(kind=kind, detail=detail, trace=trace),
        )

    def _liveness_verdict(self) -> Verdict:
        span = 0
        all_bad = sorted({mid for s in self.states if s.bad for mid in s.bad})
        for mid in all_bad:
            members = frozenset(
                s.state_id for s in self.states if mid in s.bad
            )
            lasso = self._find_lasso(members)
            if lasso is not None:
                stem_state, loop = lasso
                detail = (
                    f"message {mid} stays oracle-deadlocked and undetected "
                    f"around a reachable loop of {len(loop)} cycle(s)"
                )
                return Verdict(
                    case=self.case,
                    verdict="refuted",
                    states=len(self.states),
                    edges=self.edges,
                    max_depth=max(s.depth for s in self.states),
                    max_undetected_span=-1,
                    statically_deadlock_free=self.static_free,
                    violation=Violation(
                        kind="false-negative",
                        detail=detail,
                        trace=self.trace_to(stem_state),
                        loop=loop,
                        message_id=mid,
                    ),
                )
            span = max(span, self._longest_path(members))
        return Verdict(
            case=self.case,
            verdict="proved",
            states=len(self.states),
            edges=self.edges,
            max_depth=max(s.depth for s in self.states),
            max_undetected_span=span,
            statically_deadlock_free=self.static_free,
        )

    def _find_lasso(
        self, members: FrozenSet[int]
    ) -> Optional[Tuple[int, Trace]]:
        """A cycle within ``members``: (entry state id, loop vectors)."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {sid: WHITE for sid in members}
        for root in sorted(members):
            if colour[root] != WHITE:
                continue
            # Stack entries: (state, index into its member successors).
            path: List[Tuple[int, int]] = [(root, 0)]
            colour[root] = GREY
            while path:
                sid, next_index = path[-1]
                succ = [
                    (vec, t)
                    for vec, t in self.states[sid].successors
                    if t in members
                ]
                if next_index >= len(succ):
                    path.pop()
                    colour[sid] = BLACK
                    continue
                path[-1] = (sid, next_index + 1)
                vec, target = succ[next_index]
                if colour[target] == GREY:
                    # The grey path from target to sid plus the closing
                    # edge is the loop; each hop's vector is the edge
                    # label recorded on the step that found it.
                    start = next(
                        k for k in range(len(path)) if path[k][0] == target
                    )
                    loop = [
                        self._edge_vector(path[k][0], path[k + 1][0])
                        for k in range(start, len(path) - 1)
                    ]
                    loop.append(vec)
                    return target, tuple(loop)
                if colour[target] == WHITE:
                    colour[target] = GREY
                    path.append((target, 0))
        return None

    def _edge_vector(self, src: int, dst: int) -> ChoiceVector:
        for vec, target in self.states[src].successors:
            if target == dst:
                return vec
        raise RuntimeError(
            f"internal: lasso reconstruction lost edge {src} -> {dst}"
        )

    def _longest_path(self, members: FrozenSet[int]) -> int:
        """Longest path (in states) through the acyclic member subgraph."""
        adjacency: Dict[int, List[int]] = {
            sid: sorted(
                {
                    t
                    for _, t in self.states[sid].successors
                    if t in members
                }
            )
            for sid in members
        }
        indegree = {sid: 0 for sid in members}
        for succ in adjacency.values():
            for t in succ:
                indegree[t] += 1
        order: List[int] = []
        ready = deque(sid for sid in sorted(members) if indegree[sid] == 0)
        while ready:
            sid = ready.popleft()
            order.append(sid)
            for t in adjacency[sid]:
                indegree[t] -= 1
                if indegree[t] == 0:
                    ready.append(t)
        # Callers established acyclicity, so the topo order is complete.
        longest = {sid: 1 for sid in members}
        for sid in reversed(order):
            for t in adjacency[sid]:
                longest[sid] = max(longest[sid], 1 + longest[t])
        return max(longest.values(), default=0)


def classify_violation(exc: BaseException) -> str:
    from repro.verify.driver import StormViolation, WaiterViolation
    from repro.verify.recording import GPViolation

    if isinstance(exc, GPViolation):
        return "gp-rule"
    if isinstance(exc, StormViolation):
        return "probe-storm"
    if isinstance(exc, WaiterViolation):
        return "waiter"
    if isinstance(exc, ChoiceError):
        return "choice"
    return "structure"


def explore(
    case: VerifyCase,
    max_states: int = 200_000,
    max_cycles: int = 10_000,
    collision_checks: int = 32,
) -> Verdict:
    """Exhaustively enumerate ``case`` and return the checker's verdict.

    ``max_states`` / ``max_cycles`` are safety caps; hitting either
    yields an ``inconclusive`` verdict (never a false ``proved``).
    ``collision_checks`` bounds how many dedupe hits are re-expanded to
    empirically validate the canonical encoding.
    """
    return _Explorer(case, max_states, max_cycles, collision_checks).run()
