"""G/P-transition recording and rule conformance for the NDM.

The model checker does not trust the NDM implementation to police
itself: :class:`RecordingNDM` wraps every site that may write a G/P flag,
re-derives the paper's rule from *primitive* channel state (raw
timestamps, occupancy counts — not the helper methods the implementation
itself uses), and records each transition into a per-cycle event log.
After every simulated cycle the driver replays the event log onto the
pre-cycle flag vector and compares with the post-cycle flags: any G/P
write that did not pass through a sanctioned rule site shows up as a
mismatch.

Checked rules (paper, Section 3):

* **first attempt** — ``P`` if the input channel still has a free lane;
  else ``G`` iff some feasible output's inactivity counter is at most
  ``t1``; else ``P``;
* **reset** — routing success at, or a lane release of, an input channel
  resets its flag to ``P``;
* **promotion** — ``P -> G`` happens only during a first-attempt rule
  application or an I-flag reset (a flit crossing a channel whose raw
  inactivity exceeded ``t1``), never anywhere else.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.ndm import NewDetectionMechanism
from repro.network.channel import PhysicalChannel, VirtualChannel
from repro.network.message import Message
from repro.network.types import GPState

_G = GPState.GENERATE
_P = GPState.PROPAGATE

#: One recorded flag write: (channel index, new value is GENERATE).
GPEvent = Tuple[int, bool]


class GPViolation(AssertionError):
    """A G/P transition contradicted the paper's promotion rules."""


def raw_inactivity(pc: PhysicalChannel, cycle: int) -> int:
    """The paper's counter value re-derived from primitive fields.

    Deliberately *not* :meth:`PhysicalChannel.inactivity`: conformance
    checks must not share code with the implementation under test.
    """
    if pc.occupied_count == 0:
        return pc._frozen_inactivity
    start = pc.last_flit_cycle
    if pc.active_since > start:
        start = pc.active_since
    value = cycle - start - pc.counter_lag
    return value if value > 0 else 0


class RecordingNDM(NewDetectionMechanism):
    """NDM subclass that audits every G/P flag write it performs."""

    def __init__(
        self, threshold: int, t1: int = 1, selective_promotion: bool = False
    ) -> None:
        super().__init__(threshold, t1=t1, selective_promotion=selective_promotion)
        #: Flag writes of the cycle currently being simulated.
        self.events: List[GPEvent] = []
        #: Sanctioned promotion context, None outside rule sites.
        self._ctx: Optional[str] = None

    # ------------------------------------------------------------------
    # Rule sites
    # ------------------------------------------------------------------
    def _first_attempt(
        self, message: Message, input_pc: PhysicalChannel, cycle: int
    ) -> None:
        if input_pc.occupied_count < len(input_pc.vcs):
            expected = _P
        else:
            expected = _P
            for pc in message.feasible_pcs:
                if raw_inactivity(pc, cycle) <= self.t1:
                    expected = _G
                    break
        self._ctx = "first-attempt"
        try:
            super()._first_attempt(message, input_pc, cycle)
        finally:
            self._ctx = None
        if input_pc.gp is not expected:
            raise GPViolation(
                f"first-attempt rule: message {message.id} at input channel "
                f"{input_pc.index} should set {expected.value}, "
                f"implementation set {input_pc.gp.value} (cycle {cycle})"
            )
        self.events.append((input_pc.index, expected is _G))

    def on_message_routed(self, message: Message, cycle: int) -> None:
        input_pc = message.input_pc
        super().on_message_routed(message, cycle)
        if input_pc is not None:
            if input_pc.gp is not _P:
                raise GPViolation(
                    f"routed-reset rule: input channel {input_pc.index} not "
                    f"reset to P after message {message.id} routed"
                )
            self.events.append((input_pc.index, False))

    def on_vc_released(self, vc: VirtualChannel, cycle: int) -> None:
        super().on_vc_released(vc, cycle)
        if vc.pc.gp is not _P:
            raise GPViolation(
                f"release-reset rule: input channel {vc.pc.index} not reset "
                f"to P after lane {vc.index} freed"
            )
        self.events.append((vc.pc.index, False))

    # ------------------------------------------------------------------
    # Promotion sites
    # ------------------------------------------------------------------
    def _promote(self, input_pc: PhysicalChannel) -> None:  # type: ignore[override]
        if self._ctx is None:
            raise GPViolation(
                f"promotion of input channel {input_pc.index} outside any "
                "sanctioned rule site"
            )
        was = input_pc.gp
        NewDetectionMechanism._promote(input_pc)
        if was is not _G:
            self.events.append((input_pc.index, True))

    def _on_i_reset(self, pc: PhysicalChannel, cycle: int) -> None:
        self._check_i_reset(pc, cycle)
        self._ctx = "i-reset"
        try:
            super()._on_i_reset(pc, cycle)
        finally:
            self._ctx = None

    def _simple_reset_hook(
        self, targets: Tuple[PhysicalChannel, ...]
    ) -> Callable[[PhysicalChannel, int], None]:
        inner = super()._simple_reset_hook(targets)

        def hook(pc: PhysicalChannel, cycle: int) -> None:
            self._check_i_reset(pc, cycle)
            self._ctx = "i-reset"
            try:
                inner(pc, cycle)
            finally:
                self._ctx = None

        return hook

    def _check_i_reset(self, pc: PhysicalChannel, cycle: int) -> None:
        """An I-reset promotion requires the I flag to have been set."""
        if pc.occupied_count == 0:
            raise GPViolation(
                f"I-reset fired on unoccupied channel {pc.index} (cycle {cycle})"
            )
        start = pc.last_flit_cycle
        if pc.active_since > start:
            start = pc.active_since
        if cycle - start - pc.counter_lag <= self.t1:
            raise GPViolation(
                f"I-reset fired on channel {pc.index} whose raw inactivity "
                f"{cycle - start - pc.counter_lag} never exceeded t1={self.t1} "
                f"(cycle {cycle})"
            )


def apply_events(
    pre: Tuple[bool, ...], events: List[GPEvent]
) -> Tuple[bool, ...]:
    """Replay a cycle's recorded flag writes onto the pre-cycle vector."""
    flags = list(pre)
    for index, is_g in events:
        flags[index] = is_g
    return tuple(flags)


def check_gp_writes(
    pre: Tuple[bool, ...],
    post: Tuple[bool, ...],
    events: List[GPEvent],
    cycle: int,
) -> None:
    """Raise unless every G/P delta of the cycle was recorded at a rule site."""
    expected = apply_events(pre, events)
    if expected != post:
        diffs = [
            f"channel {i}: expected {'G' if e else 'P'}, actual {'G' if a else 'P'}"
            for i, (e, a) in enumerate(zip(expected, post))
            if e != a
        ]
        raise GPViolation(
            f"unrecorded G/P writes in cycle {cycle}: " + "; ".join(diffs)
        )
